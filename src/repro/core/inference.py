"""Inference procedures for a trained GCON model (Section IV-C6 / Algorithm 4).

Two modes are supported:

* **private** (Eq. 16): the querying node only uses its own direct edges; the
  propagation operator is the single-hop ``R̂ = (1 - α_I) Ã + α_I I`` for
  every branch with m_i > 0, so no other node's private edges are revealed.
* **public**: the test graph's edges are considered public, Z is computed with
  the full PPR/APPR propagation (Eq. 11) and predictions are ``Z Θ_priv``.

The module is split into a *feature* step and a *score* step so the serving
data plane (:mod:`repro.serving`) can reuse it: :func:`inference_features`
builds the aggregated matrix ``F`` once per (model, graph, mode) — the
expensive, query-independent part — and :func:`batched_inference_scores`
turns any pre-stacked selection of its rows into class scores with a single
matmul.  Selecting rows of ``F`` and multiplying is bitwise identical to
computing the full score matrix and selecting rows, so a served batch pins
exactly to the offline :func:`private_inference_scores` /
:func:`public_inference_scores` numbers.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.core.propagation import Propagator

INFERENCE_MODES = ("private", "public")


def inference_features(propagator: Propagator, features: np.ndarray, steps_list,
                       mode: str = "private",
                       inference_alpha: float | None = None) -> np.ndarray:
    """The aggregated feature matrix ``F`` with ``scores = F @ theta``.

    ``mode="private"`` applies the single-hop operator of Eq. (16) (and
    requires ``inference_alpha``); ``mode="public"`` applies the full PPR/APPR
    propagation of Eq. (11).  Everything here is query-independent, which is
    what makes ``F`` cacheable per (model, graph, mode) in the serving layer.
    """
    if mode == "private":
        if inference_alpha is None:
            raise ConfigurationError("private inference requires inference_alpha")
        return propagator.inference_concat(features, steps_list, inference_alpha)
    if mode == "public":
        return propagator.propagate_concat(features, steps_list)
    raise ConfigurationError(f"mode must be 'private' or 'public', got {mode!r}")


def private_inference_scores(propagator: Propagator, features: np.ndarray, theta: np.ndarray,
                             steps_list, inference_alpha: float) -> np.ndarray:
    """Class scores under the privacy-preserving inference rule of Eq. (16)."""
    aggregated = inference_features(propagator, features, steps_list,
                                    mode="private", inference_alpha=inference_alpha)
    return _scores(aggregated, theta)


def public_inference_scores(propagator: Propagator, features: np.ndarray, theta: np.ndarray,
                            steps_list) -> np.ndarray:
    """Class scores when the test graph's edges are public (full propagation)."""
    aggregated = inference_features(propagator, features, steps_list, mode="public")
    return _scores(aggregated, theta)


def batched_inference_scores(aggregated: np.ndarray, theta: np.ndarray) -> np.ndarray:
    """Class scores for pre-stacked aggregated query rows (the serving path).

    ``aggregated`` is any stack of rows of the matrix built by
    :func:`inference_features` — one micro-batch of queries — and the result
    is one ``aggregated @ theta`` matmul.  Because the release Θ_priv is
    post-processing-free data, no privacy accounting happens here.
    """
    return _scores(np.atleast_2d(np.asarray(aggregated, dtype=np.float64)), theta)


def _scores(aggregated: np.ndarray, theta: np.ndarray) -> np.ndarray:
    aggregated = np.asarray(aggregated, dtype=np.float64)
    theta = np.asarray(theta, dtype=np.float64)
    if aggregated.shape[1] != theta.shape[0]:
        raise ConfigurationError(
            f"feature dimension {aggregated.shape[1]} does not match theta rows {theta.shape[0]}"
        )
    return aggregated @ theta
