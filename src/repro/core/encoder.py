"""MLP feature encoder (Section IV-C1 / Algorithm 3).

The encoder reduces the raw feature dimension d0 to d1 before propagation,
addressing the dimensionality issue of objective perturbation: the noise
magnitude grows with d, so a compact representation preserves utility.  It is
trained only on the (public) node features and labels of the training set and
therefore consumes no privacy budget.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError
from repro.nn import Adam, Dropout, Linear, ReLU, Sequential, Tensor, softmax_cross_entropy
from repro.nn.module import Module
from repro.utils.random import as_rng


class _EncoderNetwork(Module):
    """Two-stage network: feature transform (W1) followed by a classifier head (W2)."""

    def __init__(self, in_dim: int, hidden_dim: int, out_dim: int, num_classes: int,
                 dropout: float, rng):
        super().__init__()
        self.body = Sequential(
            Linear(in_dim, hidden_dim, rng=rng),
            ReLU(),
            Dropout(dropout, rng=rng),
            Linear(hidden_dim, out_dim, rng=rng),
            ReLU(),
        )
        self.head = Linear(out_dim, num_classes, rng=rng)

    def encode(self, x: Tensor) -> Tensor:
        return self.body(x)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.encode(x))


class MLPEncoder:
    """Trainable MLP encoder with a scikit-learn-like fit/encode interface."""

    def __init__(self, output_dim: int = 16, hidden_dim: int = 64, epochs: int = 200,
                 learning_rate: float = 0.01, weight_decay: float = 1e-5,
                 dropout: float = 0.1, seed=None):
        if output_dim < 1 or hidden_dim < 1:
            raise ConfigurationError("output_dim and hidden_dim must be >= 1")
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        self.output_dim = output_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.dropout = dropout
        self.seed = seed
        self._network: _EncoderNetwork | None = None
        self.history_: list[float] = []

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(self, features: np.ndarray, labels: np.ndarray, train_idx: np.ndarray,
            num_classes: int | None = None) -> "MLPEncoder":
        """Train the encoder on the labelled nodes only (public information)."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        train_idx = np.asarray(train_idx, dtype=np.int64)
        if train_idx.size == 0:
            raise ConfigurationError("train_idx must not be empty")
        num_classes = int(labels.max()) + 1 if num_classes is None else int(num_classes)
        rng = as_rng(self.seed)
        self._network = _EncoderNetwork(
            in_dim=features.shape[1],
            hidden_dim=self.hidden_dim,
            out_dim=self.output_dim,
            num_classes=num_classes,
            dropout=self.dropout,
            rng=rng,
        )
        optimizer = Adam(self._network.parameters(), lr=self.learning_rate,
                         weight_decay=self.weight_decay)
        x_train = Tensor(features[train_idx])
        y_train = labels[train_idx]
        self.history_ = []
        self._network.train()
        for _ in range(self.epochs):
            optimizer.zero_grad()
            logits = self._network(x_train)
            loss = softmax_cross_entropy(logits, y_train)
            loss.backward()
            optimizer.step()
            self.history_.append(float(loss.data))
        self._network.eval()
        return self

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def encode(self, features: np.ndarray) -> np.ndarray:
        """Map raw features to the learned d1-dimensional representation."""
        network = self._require_fitted()
        return network.encode(Tensor(np.asarray(features, dtype=np.float64))).data.copy()

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities from the encoder's classification head."""
        network = self._require_fitted()
        logits = network(Tensor(np.asarray(features, dtype=np.float64))).data
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard label predictions (used for pseudo-labelling unlabeled nodes)."""
        return np.argmax(self.predict_proba(features), axis=1)

    def _require_fitted(self) -> _EncoderNetwork:
        if self._network is None:
            raise NotFittedError("MLPEncoder.fit must be called before encoding")
        return self._network
