"""The GCON estimator: Algorithm 1 (training) and Algorithm 4 (inference).

Training pipeline (Algorithm 1):

1. train the public MLP feature encoder and map all node features to d1
   dimensions (Line 1);
2. L2-normalise each encoded feature row (Line 2);
3. build the row-stochastic propagation and the aggregate features
   Z = (1/s)(Z_{m_1} ⊕ ... ⊕ Z_{m_s}) (Lines 4-7);
4. evaluate the Theorem-1 parameter chain and sample the Erlang-radius
   spherical noise B (Lines 8-9);
5. minimise the perturbed, strongly convex objective (Lines 10-11).

The released parameters Θ_priv satisfy (ε, δ) edge-DP; inference follows
Algorithm 4 in either the private (Eq. 16) or public mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError
from repro.core.config import GCONConfig
from repro.core.encoder import MLPEncoder
from repro.core.inference import batched_inference_scores, inference_features
from repro.core.losses import get_loss
from repro.core.objective import PerturbedObjective
from repro.core.perturbation import (
    PerturbationParameters,
    compute_perturbation_parameters,
    sample_noise_matrix,
)
from repro.core.propagation import cached_propagator, graph_fingerprint
from repro.core.sensitivity import concatenated_sensitivity
from repro.core.solver import SolverResult, minimize_objective
from repro.graphs.graph import GraphDataset
from repro.utils.math import one_hot, row_normalize_l2
from repro.utils.random import as_rng, spawn_rngs


@dataclass
class PreparedInputs:
    """The epsilon-independent outputs of Algorithm 1's preparation phase.

    Lines 1-7 of Algorithm 1 (encoder training, L2 normalisation, PPR/APPR
    propagation and the optional pseudo-label expansion) do not depend on the
    privacy budget -- only the Theorem-1 calibration, the noise draw and the
    convex solve do.  The sweep engine therefore computes these once per
    ``(graph, seed, preparation_key)`` and replays them across an epsilon
    sweep; :meth:`GCON.fit` accepts the bundle via its ``prepared`` argument
    and produces bitwise-identical parameters to an unprepared fit.

    ``preparation_key``, ``graph_key`` and ``seed_token`` record what the
    bundle was built from; :meth:`GCON.fit` rejects a bundle whose
    configuration, graph content or integer seed does not match its own,
    because reusing features prepared under different
    ``(alpha, steps, encoder, graph, seed)`` settings would silently
    miscalibrate the Theorem-1 noise or produce irreproducible results.
    """

    encoder: MLPEncoder
    aggregated: np.ndarray
    train_idx: np.ndarray
    labels: np.ndarray
    preparation_key: tuple | None = None
    graph_key: str | None = None
    seed_token: int | None = None


def validate_prepared_inputs(config: GCONConfig, graph: GraphDataset,
                             seed, prepared: PreparedInputs) -> PreparedInputs:
    """Reject a :class:`PreparedInputs` bundle that does not belong to
    ``(config, graph, seed)``.

    Shared by :meth:`GCON.fit` and the epsilon-sweep fast path: reusing
    features prepared under different ``(alpha, steps, encoder, graph, seed)``
    settings would silently miscalibrate the Theorem-1 noise or produce
    irreproducible results.
    """
    if prepared.aggregated.shape[0] != graph.num_nodes:
        raise ConfigurationError(
            f"prepared inputs cover {prepared.aggregated.shape[0]} nodes but the "
            f"graph has {graph.num_nodes}"
        )
    if prepared.preparation_key is not None \
            and prepared.preparation_key != config.preparation_key():
        raise ConfigurationError(
            "prepared inputs were built under a different preparation "
            "configuration (alpha/steps/encoder/pseudo-label settings); "
            "refusing to miscalibrate the Theorem-1 noise"
        )
    if prepared.graph_key is not None \
            and prepared.graph_key != graph_fingerprint(graph.adjacency):
        raise ConfigurationError(
            "prepared inputs were built from a different graph; "
            "refusing to reuse features across graphs"
        )
    if prepared.seed_token is not None and isinstance(seed, (int, np.integer)) \
            and prepared.seed_token != int(seed):
        raise ConfigurationError(
            f"prepared inputs were built with seed {prepared.seed_token} "
            f"but fit was called with seed {int(seed)}"
        )
    return prepared


def resolve_delta(config: GCONConfig, graph: GraphDataset) -> float:
    """The effective delta: the configured value or the paper's ``1/|E|`` default."""
    return config.delta if config.delta is not None else 1.0 / max(graph.num_edges, 1)


def calibrate_perturbation(config: GCONConfig, *, delta: float, num_labeled: int,
                           num_classes: int, dimension: int):
    """Line 8 of Algorithm 1: the Theorem-1 calibration for one privacy budget.

    Returns ``(loss, perturbation)``.  Shared by :meth:`GCON.fit` and the
    epsilon-sweep fast path (:class:`repro.core.sweep.SweepSolver`) so the two
    paths cannot drift apart.
    """
    loss = get_loss(config.loss, num_classes, config.huber_delta)
    if config.non_private:
        perturbation = compute_perturbation_parameters(
            epsilon=config.epsilon, delta=max(delta, 1e-12), omega=config.omega,
            loss=loss, sensitivity=0.0, num_labeled=num_labeled,
            num_classes=num_classes, dimension=dimension,
            lambda_reg=config.lambda_reg, xi=config.xi,
        )
    else:
        sensitivity = concatenated_sensitivity(config.alpha, config.normalized_steps)
        perturbation = compute_perturbation_parameters(
            epsilon=config.epsilon, delta=delta, omega=config.omega,
            loss=loss, sensitivity=sensitivity, num_labeled=num_labeled,
            num_classes=num_classes, dimension=dimension,
            lambda_reg=config.lambda_reg, xi=config.xi,
        )
    return loss, perturbation


class GCON:
    """Differentially private graph convolutional network via objective perturbation.

    Parameters
    ----------
    config:
        A :class:`GCONConfig`; if omitted the defaults are used and keyword
        overrides may be supplied directly (``GCON(epsilon=2.0, alpha=0.8)``).

    Attributes (after :meth:`fit`)
    ------------------------------
    theta_:
        The released model parameters Θ_priv of shape ``(s * d1, c)``.
    perturbation_:
        The :class:`PerturbationParameters` evaluated by Theorem 1.
    solver_result_:
        Convergence diagnostics of the convex solve.
    encoder_:
        The fitted public feature encoder.
    """

    def __init__(self, config: GCONConfig | None = None, **overrides):
        if config is None:
            config = GCONConfig(**overrides)
        elif overrides:
            raise ConfigurationError("pass either a config object or keyword overrides, not both")
        self.config = config
        self.theta_: np.ndarray | None = None
        self.perturbation_: PerturbationParameters | None = None
        self.solver_result_: SolverResult | None = None
        self.encoder_: MLPEncoder | None = None
        self.num_classes_: int | None = None
        self._train_graph: GraphDataset | None = None

    # ------------------------------------------------------------------ #
    # training (Algorithm 1)
    # ------------------------------------------------------------------ #
    def fit(self, graph: GraphDataset, seed: int | np.random.Generator | None = None,
            prepared: PreparedInputs | None = None) -> "GCON":
        """Train GCON on ``graph`` under the configured (ε, δ) edge-DP budget.

        ``prepared`` optionally supplies the epsilon-independent preparation
        phase computed earlier by :meth:`prepare` with the same graph, seed
        and preparation-relevant configuration; the resulting parameters are
        bitwise identical to an unprepared fit because the noise generator is
        spawned from ``seed`` the same way on both paths.
        """
        config = self.config
        rng = as_rng(seed)
        encoder_rng, noise_rng, pseudo_rng = spawn_rngs(rng, 3)

        if graph.train_idx.size == 0:
            raise ConfigurationError("the training graph must provide a non-empty train_idx")
        num_classes = graph.num_classes
        delta = resolve_delta(config, graph)

        if prepared is None:
            prepared = self._prepare(graph, num_classes, encoder_rng, pseudo_rng)
        else:
            validate_prepared_inputs(config, graph, seed, prepared)
        encoder = prepared.encoder
        aggregated = prepared.aggregated
        train_idx = prepared.train_idx
        labels = prepared.labels
        labels_one_hot = one_hot(labels[train_idx], num_classes)
        features_train = aggregated[train_idx]
        num_labeled = train_idx.size

        # Lines 8-9: Theorem-1 calibration and noise sampling.
        loss, perturbation = calibrate_perturbation(
            config, delta=delta, num_labeled=num_labeled,
            num_classes=num_classes, dimension=aggregated.shape[1],
        )
        noise = sample_noise_matrix(perturbation, rng=noise_rng)

        # Lines 10-11: minimise the perturbed strongly convex objective.
        objective = PerturbedObjective(
            features=features_train,
            labels_one_hot=labels_one_hot,
            loss=loss,
            quadratic_coefficient=perturbation.total_quadratic_coefficient,
            noise=noise,
        )
        result = minimize_objective(
            objective,
            max_iterations=config.max_iterations,
            gtol=config.gtol,
        )

        self.theta_ = result.theta
        self.perturbation_ = perturbation
        self.solver_result_ = result
        self.encoder_ = encoder
        self.num_classes_ = num_classes
        self._train_graph = graph
        return self

    def prepare(self, graph: GraphDataset,
                seed: int | np.random.Generator | None = None) -> PreparedInputs:
        """Run Lines 1-7 of Algorithm 1 (the epsilon-independent preparation).

        Spawns the same generator triple as :meth:`fit` so that
        ``fit(graph, seed, prepared=prepare(graph, seed))`` is bitwise
        equivalent to ``fit(graph, seed)``.
        """
        if graph.train_idx.size == 0:
            raise ConfigurationError("the training graph must provide a non-empty train_idx")
        rng = as_rng(seed)
        encoder_rng, _noise_rng, pseudo_rng = spawn_rngs(rng, 3)
        prepared = self._prepare(graph, graph.num_classes, encoder_rng, pseudo_rng)
        prepared.graph_key = graph_fingerprint(graph.adjacency)
        prepared.seed_token = int(seed) if isinstance(seed, (int, np.integer)) else None
        return prepared

    def adopt_solution(self, *, theta: np.ndarray, perturbation: PerturbationParameters,
                       solver_result: SolverResult, encoder: MLPEncoder,
                       num_classes: int, graph: GraphDataset | None = None) -> "GCON":
        """Install a convex solve produced outside :meth:`fit`.

        Used by the epsilon-sweep fast path (:class:`repro.core.sweep.SweepSolver`),
        which runs the Theorem-1 calibration and the solve for many budgets
        against one shared preparation and then hands each per-epsilon result
        to its estimator.  After this call the model behaves exactly like a
        freshly fitted one (inference, scoring, persistence).
        """
        self.theta_ = np.asarray(theta, dtype=np.float64)
        self.perturbation_ = perturbation
        self.solver_result_ = solver_result
        self.encoder_ = encoder
        self.num_classes_ = int(num_classes)
        self._train_graph = graph
        return self

    def _prepare(self, graph: GraphDataset, num_classes: int,
                 encoder_rng: np.random.Generator,
                 pseudo_rng: np.random.Generator) -> PreparedInputs:
        config = self.config

        # Line 1: public feature encoder.
        encoder = MLPEncoder(
            output_dim=config.encoder_dim,
            hidden_dim=config.encoder_hidden,
            epochs=config.encoder_epochs,
            learning_rate=config.encoder_lr,
            weight_decay=config.encoder_weight_decay,
            dropout=config.encoder_dropout,
            seed=encoder_rng,
        )
        encoder.fit(graph.features, graph.labels, graph.train_idx, num_classes=num_classes)
        encoded = encoder.encode(graph.features)

        # Line 2: row-wise L2 normalisation so that max_i ||x_i||_2 <= 1.
        encoded = row_normalize_l2(encoded)

        # Lines 4-7: propagation and concatenation (through the shared cache,
        # so repeats/epsilon sweeps reuse the normalised transition and the
        # PPR factorisation of the same graph).
        propagator = cached_propagator(graph.adjacency, config.alpha)
        aggregated = propagator.propagate_concat(encoded, config.normalized_steps)

        # Training set: labelled nodes, optionally expanded with pseudo-labels.
        # The paper tunes n1 in {n0, n} (Appendix Q); when expanding we keep a
        # class-balanced, confidence-ranked subset because the per-class
        # one-vs-rest losses have no bias term and an imbalanced pseudo-label
        # pool would bias the arg-max towards frequent classes.
        train_idx = graph.train_idx
        labels = graph.labels.copy()
        if config.use_pseudo_labels:
            train_idx, labels = self._pseudo_label_selection(
                graph, encoder, num_classes, mode=config.pseudo_label_mode,
            )
            _ = pseudo_rng  # reserved for stochastic pseudo-label selection strategies
        return PreparedInputs(encoder=encoder, aggregated=aggregated,
                              train_idx=train_idx, labels=labels,
                              preparation_key=config.preparation_key())

    @staticmethod
    def _pseudo_label_selection(graph: GraphDataset, encoder: MLPEncoder,
                                num_classes: int, mode: str = "balanced",
                                ) -> tuple[np.ndarray, np.ndarray]:
        """Expand the training set with encoder pseudo-labels (the paper's n1 = n knob).

        ``mode="all"`` uses every node; ``mode="balanced"`` keeps a
        class-balanced, confidence-ranked subset, which trades a smaller n1
        (hence relatively more objective noise) for class balance.
        """
        probabilities = encoder.predict_proba(graph.features)
        labels = np.argmax(probabilities, axis=1)
        confidence = probabilities.max(axis=1)
        labels[graph.train_idx] = graph.labels[graph.train_idx]
        confidence[graph.train_idx] = np.inf  # true-labelled nodes are always kept
        if mode == "all":
            return np.arange(graph.num_nodes, dtype=np.int64), labels
        counts = np.bincount(labels, minlength=num_classes)
        positive = counts[counts > 0]
        per_class = int(positive.min()) if positive.size else 0
        selected: list[np.ndarray] = []
        for cls in range(num_classes):
            members = np.flatnonzero(labels == cls)
            if members.size == 0:
                continue
            ranked = members[np.argsort(-confidence[members])]
            selected.append(ranked[:per_class] if per_class else ranked)
        train_idx = np.sort(np.concatenate(selected)) if selected else graph.train_idx
        return train_idx, labels

    # ------------------------------------------------------------------ #
    # inference (Algorithm 4)
    # ------------------------------------------------------------------ #
    def inference_features(self, graph: GraphDataset | None = None,
                           mode: str = "private") -> np.ndarray:
        """The aggregated matrix ``F`` with ``decision_scores == F @ theta_``.

        This is the query-independent half of Algorithm 4: encoder forward
        pass, L2 normalisation and (private or public) propagation.  The
        serving layer (:mod:`repro.serving`) computes it once per
        (model, graph, mode) and answers every query batch with one
        row-selected matmul, bitwise identical to :meth:`decision_scores`.
        """
        _theta, encoder = self._require_fitted()
        graph = self._train_graph if graph is None else graph
        if graph is None:  # pragma: no cover - defensive
            raise NotFittedError("no graph available for inference")
        encoded = row_normalize_l2(encoder.encode(graph.features))
        propagator = cached_propagator(graph.adjacency, self.config.alpha)
        return inference_features(
            propagator, encoded, self.config.normalized_steps, mode=mode,
            inference_alpha=self.config.effective_inference_alpha,
        )

    def decision_scores(self, graph: GraphDataset | None = None,
                        mode: str = "private") -> np.ndarray:
        """Raw class scores ``Ŷ`` for every node of ``graph`` (default: training graph)."""
        theta, _encoder = self._require_fitted()
        return batched_inference_scores(self.inference_features(graph, mode=mode), theta)

    def predict(self, graph: GraphDataset | None = None, mode: str = "private") -> np.ndarray:
        """Predicted class labels for every node of ``graph``."""
        return np.argmax(self.decision_scores(graph, mode=mode), axis=1)

    def score(self, graph: GraphDataset | None = None, idx: np.ndarray | None = None,
              mode: str = "private") -> float:
        """Micro-F1 score on ``idx`` (default: the graph's test split)."""
        from repro.evaluation.metrics import micro_f1

        graph = self._train_graph if graph is None else graph
        if graph is None:  # pragma: no cover - defensive
            raise NotFittedError("no graph available for scoring")
        idx = graph.test_idx if idx is None else np.asarray(idx, dtype=np.int64)
        predictions = self.predict(graph, mode=mode)
        return micro_f1(graph.labels[idx], predictions[idx])

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def privacy_spent(self) -> tuple[float, float]:
        """The (ε, δ) budget guaranteed by Theorem 1 for the released Θ_priv."""
        if self.perturbation_ is None:
            raise NotFittedError("GCON.fit must be called before querying the privacy budget")
        if not self.perturbation_.requires_noise and self.config.non_private:
            return (0.0, 0.0)
        return (self.perturbation_.epsilon, self.perturbation_.delta)

    def _require_fitted(self) -> tuple[np.ndarray, MLPEncoder]:
        if self.theta_ is None or self.encoder_ is None:
            raise NotFittedError("GCON.fit must be called before inference")
        return self.theta_, self.encoder_

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        fitted = self.theta_ is not None
        return f"GCON(epsilon={self.config.epsilon}, alpha={self.config.alpha}, fitted={fitted})"
