"""Strongly convex per-coordinate losses with bounded derivatives (Section IV-C4).

GCON requires the scalar loss ``l(x; y)`` applied to each class coordinate to
be convex in ``x`` with bounded first, second and third derivatives (the
supremum bounds c1, c2, c3 feed Theorem 1).  The paper proposes two choices:

* the MultiLabel Soft Margin loss (Eq. 27), the per-class binary logistic
  loss scaled by ``1/c``;
* the pseudo-Huber loss (Eq. 28) with weight ``delta_l``.

Both classes expose vectorised ``value`` / ``derivative`` / ``second_derivative``
/ ``third_derivative`` methods and the closed-form bounds from Appendix F.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.math import log1pexp, sigmoid


class ConvexPointwiseLoss:
    """Interface of a convex scalar loss ``l(x; y)`` with derivative bounds."""

    #: number of classes c (the losses are scaled by 1/c as in the paper).
    num_classes: int

    def value(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def second_derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def third_derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def c1(self) -> float:
        """Supremum of ``|l'|`` over all x, y."""
        raise NotImplementedError

    @property
    def c2(self) -> float:
        """Supremum of ``|l''|`` over all x, y."""
        raise NotImplementedError

    @property
    def c3(self) -> float:
        """Supremum of ``|l'''|``; also a Lipschitz constant of ``l''``."""
        raise NotImplementedError


class MultiLabelSoftMarginLoss(ConvexPointwiseLoss):
    """MultiLabel Soft Margin loss (Eq. 27): per-class logistic loss scaled by 1/c.

    ``l(x; y) = -(1/c) [ y log sigmoid(x) + (1 - y) log(1 - sigmoid(x)) ]``
    with ``y`` in ``{0, 1}``.
    """

    def __init__(self, num_classes: int):
        if num_classes < 1:
            raise ConfigurationError(f"num_classes must be >= 1, got {num_classes}")
        self.num_classes = int(num_classes)

    def value(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        # -[y log σ(x) + (1-y) log(1-σ(x))] = log(1+e^x) - y x  (stable form)
        return (log1pexp(x) - y * x) / self.num_classes

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return (sigmoid(np.asarray(x, dtype=np.float64)) - np.asarray(y, dtype=np.float64)) \
            / self.num_classes

    def second_derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        s = sigmoid(np.asarray(x, dtype=np.float64))
        return s * (1.0 - s) / self.num_classes + 0.0 * np.asarray(y, dtype=np.float64)

    def third_derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        s = sigmoid(np.asarray(x, dtype=np.float64))
        return s * (1.0 - s) * (1.0 - 2.0 * s) / self.num_classes \
            + 0.0 * np.asarray(y, dtype=np.float64)

    @property
    def c1(self) -> float:
        return 1.0 / self.num_classes

    @property
    def c2(self) -> float:
        return 1.0 / (4.0 * self.num_classes)

    @property
    def c3(self) -> float:
        return 1.0 / (6.0 * np.sqrt(3.0) * self.num_classes)


class PseudoHuberLoss(ConvexPointwiseLoss):
    """Pseudo-Huber loss (Eq. 28) with weight ``delta_l``, scaled by 1/c.

    ``l(x; y) = (delta_l^2 / c) * ( sqrt(1 + (x - y)^2 / delta_l^2) - 1 )``.
    """

    def __init__(self, num_classes: int, huber_delta: float = 0.2):
        if num_classes < 1:
            raise ConfigurationError(f"num_classes must be >= 1, got {num_classes}")
        if huber_delta <= 0:
            raise ConfigurationError(f"huber_delta must be > 0, got {huber_delta}")
        self.num_classes = int(num_classes)
        self.huber_delta = float(huber_delta)

    def _ratio(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        diff = np.asarray(x, dtype=np.float64) - np.asarray(y, dtype=np.float64)
        return diff, (diff / self.huber_delta) ** 2 + 1.0

    def value(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        _, ratio = self._ratio(x, y)
        return self.huber_delta ** 2 / self.num_classes * (np.sqrt(ratio) - 1.0)

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        diff, ratio = self._ratio(x, y)
        return diff / (self.num_classes * np.sqrt(ratio))

    def second_derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        _, ratio = self._ratio(x, y)
        return 1.0 / (self.num_classes * ratio ** 1.5)

    def third_derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        diff, ratio = self._ratio(x, y)
        return -3.0 * diff / (self.num_classes * self.huber_delta ** 2 * ratio ** 2.5)

    @property
    def c1(self) -> float:
        return self.huber_delta / self.num_classes

    @property
    def c2(self) -> float:
        return 1.0 / self.num_classes

    @property
    def c3(self) -> float:
        return 48.0 * np.sqrt(5.0) / (125.0 * self.num_classes * self.huber_delta)


def get_loss(name: str, num_classes: int, huber_delta: float = 0.2) -> ConvexPointwiseLoss:
    """Factory mapping the config's loss name to a loss instance."""
    if name == "soft_margin":
        return MultiLabelSoftMarginLoss(num_classes)
    if name == "pseudo_huber":
        return PseudoHuberLoss(num_classes, huber_delta)
    raise ConfigurationError(f"unknown loss {name!r}; expected 'soft_margin' or 'pseudo_huber'")
