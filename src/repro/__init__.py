"""repro: reproduction of GCON (ICDE 2025), differentially private GCNs via objective perturbation.

The package is organised around the paper's structure:

* :mod:`repro.core` -- the GCON algorithm itself (feature encoder, PPR/APPR
  propagation, sensitivity bounds, Theorem-1 calibration, objective
  perturbation, convex solver, private/public inference).
* :mod:`repro.graphs` -- graph dataset container, synthetic citation-graph
  generators calibrated to the paper's Table II, homophily/split utilities.
* :mod:`repro.nn` -- a small numpy autograd / neural-network substrate used by
  the feature encoder and by the non-convex baselines.
* :mod:`repro.privacy` -- differential-privacy primitives (mechanisms,
  accountants, Erlang-radius sphere noise).
* :mod:`repro.baselines` -- the seven competitors evaluated in the paper.
* :mod:`repro.attacks` -- edge-inference attacks motivating edge DP.
* :mod:`repro.evaluation` -- metrics and the experiment runner used by the
  benchmark harness.
* :mod:`repro.runtime` -- the parallel sweep engine (cells, process pool,
  resumable JSONL stores, shard merging).
* :mod:`repro.distributed` -- multi-machine sweep sharding over a shared
  filesystem (work queue, leases, workers, coordinator).
* :mod:`repro.serving` -- the serving data plane: content-addressed model
  registry, micro-batched inference, HTTP JSON API.
"""

from repro.version import __version__
from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.graphs.datasets import load_dataset, list_datasets
from repro.graphs.graph import GraphDataset
from repro.evaluation.metrics import micro_f1, macro_f1, accuracy

__all__ = [
    "__version__",
    "GCON",
    "GCONConfig",
    "GraphDataset",
    "load_dataset",
    "list_datasets",
    "micro_f1",
    "macro_f1",
    "accuracy",
]
