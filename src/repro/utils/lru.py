"""A tiny bounded least-recently-used mapping.

Shared by the propagation cache layers (:mod:`repro.core.propagation`) and
the per-process worker memos (:mod:`repro.runtime.workers`): both need a
dict whose size stays flat over an arbitrarily long sweep.
"""

from __future__ import annotations

from collections import OrderedDict

_MISSING = object()  # distinguishes "absent" from a legitimately cached None


class LRUDict(OrderedDict):
    """An ``OrderedDict`` that evicts its least-recently-used entries."""

    def __init__(self, max_entries: int):
        super().__init__()
        self.max_entries = max_entries

    def get_or_none(self, key):
        """Return the cached value (refreshing its recency), or ``None``."""
        if key in self:
            self.move_to_end(key)
            return self[key]
        return None

    def put(self, key, value) -> None:
        """Insert ``value`` as most recent, evicting the oldest past the cap."""
        self[key] = value
        self.move_to_end(key)
        while len(self) > self.max_entries:
            self.popitem(last=False)

    def get_or_compute(self, key, compute):
        """Return the cached value or ``compute()``, caching the result.

        Absence is tracked with a sentinel, not ``None``, so a computation
        that legitimately returns ``None`` is cached like any other value
        instead of being recomputed on every call.
        """
        value = super().get(key, _MISSING)
        if value is _MISSING:
            value = compute()
            self.put(key, value)
        else:
            self.move_to_end(key)
        return value
