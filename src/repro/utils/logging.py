"""Lightweight logging configuration for the repro package.

The library never configures the root logger; it only exposes a helper to get
namespaced loggers so applications keep full control of handlers/levels.
"""

from __future__ import annotations

import logging


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
