"""Structured logging for the repro package, trace-correlated.

The library still never touches the *root* logger — applications keep full
control of their own handlers.  What it does own is the ``repro`` namespace
logger: :func:`configure_logging` installs exactly one stream handler on it
(tagged so repeated calls — every ``get_logger`` invokes it — never stack
duplicates), with a formatter that carries the active trace id so a log line
emitted anywhere under a traced request or worker group can be joined
against ``/debug/traces/<id>`` output.

* Level comes from ``REPRO_LOG_LEVEL`` (name or number; default ``INFO``)
  unless the caller passes one explicitly.
* ``record.trace_id`` is injected by a filter from the context-local
  current span (:func:`repro.obs.trace.current_trace_id`), ``-`` when no
  trace is active, so the format string never KeyErrors.
* ``force=True`` replaces the existing handler — tests use it to redirect
  ``stream``.
"""

from __future__ import annotations

import logging
import os
import sys

_HANDLER_TAG = "_repro_structured_handler"
_FORMAT = ("%(asctime)s %(levelname)s %(name)s "
           "trace=%(trace_id)s :: %(message)s")


class _TraceContextFilter(logging.Filter):
    """Stamp every record with the context's active trace id (or ``-``)."""

    def filter(self, record: logging.LogRecord) -> bool:
        try:
            # Imported lazily: logging must stay importable even while
            # repro.obs is mid-import (or absent in a trimmed install).
            from repro.obs.trace import current_trace_id
            record.trace_id = current_trace_id() or "-"
        except Exception:
            record.trace_id = "-"
        return True


def _resolve_level(level) -> int:
    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL", "INFO")
    if isinstance(level, int):
        return level
    text = str(level).strip().upper()
    if text.isdigit():
        return int(text)
    resolved = logging.getLevelName(text)
    return resolved if isinstance(resolved, int) else logging.INFO


def configure_logging(level=None, stream=None, *,
                      force: bool = False) -> logging.Logger:
    """Configure the ``repro`` namespace logger; idempotent by default.

    Returns the namespace logger.  Safe to call from every module import
    path: an already-installed handler is kept (only its level follows the
    requested/env level) unless ``force=True`` swaps it out.
    """
    logger = logging.getLogger("repro")
    existing = [handler for handler in logger.handlers
                if getattr(handler, _HANDLER_TAG, False)]
    # An idempotent re-entry (every get_logger call) must not clobber a
    # level someone set explicitly: only (re)apply on first install, on
    # force, or when a level was actually passed.
    if level is not None or not existing or force:
        logger.setLevel(_resolve_level(level))
    if existing and not force:
        return logger
    for handler in existing:
        logger.removeHandler(handler)
        handler.close()
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler.addFilter(_TraceContextFilter())
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    # The namespace logger is the boundary: nothing propagates up to the
    # root logger, so embedding applications never see duplicate lines.
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """Return a configured logger under the ``repro`` namespace."""
    configure_logging()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
