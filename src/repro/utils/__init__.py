"""Shared utilities: RNG handling, validation helpers and stable math."""

from repro.utils.random import as_rng, spawn_rngs
from repro.utils.validation import (
    check_positive,
    check_probability,
    check_in_range,
    check_array_2d,
)
from repro.utils.math import log1pexp, sigmoid, softmax, row_normalize_l2

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_array_2d",
    "log1pexp",
    "sigmoid",
    "softmax",
    "row_normalize_l2",
]
