"""Atomic filesystem publication, shared by every durability-sensitive writer.

The repo's crash-safety story (queue task files, lease heartbeats, merged
stores) rests on one primitive: write the full content to a uniquely named
temporary file in the destination directory, then ``os.replace`` it into
place.  Readers therefore observe either the old file or the complete new
one, never a torn write — on local disks and on the rename-atomic network
filesystems the distributed queue targets.  Keeping the primitive in one
place means a future durability upgrade (e.g. fsync-before-rename) lands
everywhere at once.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path


def atomic_write_text(path: str | os.PathLike, text: str) -> Path:
    """Atomically publish ``text`` at ``path`` (temp file + rename)."""
    path = Path(path)
    temporary = path.with_name(f".tmp-{path.name}-{os.getpid()}-{uuid.uuid4().hex[:8]}")
    try:
        temporary.write_text(text, encoding="utf-8")
        os.replace(temporary, path)
    finally:
        if temporary.exists():  # pragma: no cover - only on a failed write
            temporary.unlink()
    return path
