"""Numerically stable math helpers used across the package."""

from __future__ import annotations

import numpy as np


def log1pexp(x: np.ndarray) -> np.ndarray:
    """Compute ``log(1 + exp(x))`` element-wise without overflow.

    Uses the standard branching identity ``log1p(exp(x))`` for negative values
    and ``x + log1p(exp(-x))`` for positive ones.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x > 0
    out[pos] = x[pos] + np.log1p(np.exp(-x[pos]))
    out[~pos] = np.log1p(np.exp(x[~pos]))
    return out


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def row_normalize_l2(matrix: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Normalise each row of ``matrix`` to unit L2 norm.

    Rows whose norm is (numerically) zero are left as zero rows rather than
    being divided by ``eps``-sized values, matching the paper's requirement
    that ``max_i ||x_i||_2 <= 1`` (Section IV-C3).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    safe = np.where(norms > eps, norms, 1.0)
    return matrix / safe


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``labels`` as a one-hot matrix of shape ``(n, num_classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must be in [0, {num_classes - 1}], got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded
