"""Argument validation helpers shared across the package.

These helpers raise :class:`repro.exceptions.ConfigurationError` with a
descriptive message so that user-facing estimators fail fast on invalid
hyperparameters instead of producing silently wrong privacy guarantees.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.exceptions import ConfigurationError


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite number."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not np.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    if strict and value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: float, name: str, *, inclusive_low: bool = True,
                      inclusive_high: bool = True) -> float:
    """Validate that ``value`` lies in the unit interval."""
    return check_in_range(
        value,
        name,
        low=0.0,
        high=1.0,
        inclusive_low=inclusive_low,
        inclusive_high=inclusive_high,
    )


def check_in_range(value: float, name: str, *, low: float, high: float,
                   inclusive_low: bool = True, inclusive_high: bool = True) -> float:
    """Validate that ``value`` lies in ``[low, high]`` (bound inclusivity configurable)."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    low_ok = value >= low if inclusive_low else value > low
    high_ok = value <= high if inclusive_high else value < high
    if not (low_ok and high_ok):
        lo_b = "[" if inclusive_low else "("
        hi_b = "]" if inclusive_high else ")"
        raise ConfigurationError(f"{name} must be in {lo_b}{low}, {high}{hi_b}, got {value}")
    return value


def check_array_2d(array: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``array`` is a finite 2-D float array and return it as float64."""
    arr = np.asarray(array, dtype=np.float64)
    if arr.ndim != 2:
        raise ConfigurationError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(f"{name} must contain only finite values")
    return arr
