"""Random-number-generator plumbing.

Every stochastic component of the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and normalises it through
:func:`as_rng`.  This keeps experiments reproducible end to end while still
allowing callers to share a single generator across components.
"""

from __future__ import annotations

import numpy as np


def as_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like argument.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Children are derived via the SeedSequence spawning protocol so that they
    are statistically independent of each other and of the parent.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = as_rng(seed)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
