"""Reverse-mode automatic differentiation on numpy arrays.

The :class:`Tensor` class wraps a ``numpy.ndarray`` and records the operations
applied to it in a dynamic computation graph.  Calling :meth:`Tensor.backward`
on a scalar result accumulates gradients into every ``requires_grad`` leaf.

Only the operations required by the models in this repository are implemented
(dense matmul, element-wise arithmetic, relu/tanh/sigmoid/exp/log, reductions,
indexing, concatenation), which keeps the engine small and auditable.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data, requires_grad=any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = self._ensure(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.data.shape))
            other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._ensure(other))

    def __rsub__(self, other) -> "Tensor":
        return self._ensure(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._ensure(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._ensure(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data ** 2), other.data.shape)
            )

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._ensure(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._ensure(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad @ other.data.T)
            other._accumulate(self.data.T @ grad)

        return self._make(data, (self, other), backward)

    def matmul_sparse(self, sparse_matrix) -> "Tensor":
        """Compute ``sparse_matrix @ self`` where ``sparse_matrix`` is a constant.

        The sparse propagation matrix is treated as data (it never requires a
        gradient), which is exactly the situation in GCN-style message
        passing: gradients flow through the dense feature operand only.
        """
        data = sparse_matrix @ self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(sparse_matrix.T @ grad)

        return self._make(np.asarray(data), (self,), backward)

    # ------------------------------------------------------------------ #
    # element-wise non-linearities
    # ------------------------------------------------------------------ #
    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        pos = self.data >= 0
        data = np.empty_like(self.data)
        data[pos] = 1.0 / (1.0 + np.exp(-self.data[pos]))
        exp_x = np.exp(self.data[~pos])
        data[~pos] = exp_x / (1.0 + exp_x)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return self._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions and shape ops
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            if axis is None:
                expanded = np.broadcast_to(grad, self.data.shape)
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis)
                expanded = np.broadcast_to(grad, self.data.shape)
            self._accumulate(expanded.copy())

        return self._make(data, (self,), backward)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return self._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return self._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(data, (self,), backward)

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 1) -> "Tensor":
        tensors = [Tensor._ensure(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

        out = Tensor(data, requires_grad=any(t.requires_grad for t in tensors))
        if out.requires_grad:
            out._parents = tuple(tensors)
            out._backward = backward
        return out

    # ------------------------------------------------------------------ #
    # stable composite ops used by losses
    # ------------------------------------------------------------------ #
    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - logsumexp
        softmax = np.exp(data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to 1 for scalar outputs; supplying it explicitly is
        required for non-scalar roots.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological ordering of the graph reachable from this tensor.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
