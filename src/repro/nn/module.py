"""Module / Parameter abstractions mirroring the familiar torch.nn API surface."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable model parameter."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network modules.

    Sub-modules and parameters assigned as attributes are discovered
    automatically by :meth:`parameters`, in a stable order, so optimizers see
    a deterministic parameter list.
    """

    def __init__(self) -> None:
        self._training = True

    # ------------------------------------------------------------------ #
    # parameter / submodule discovery
    # ------------------------------------------------------------------ #
    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters of this module and its children."""
        params: list[Parameter] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            if isinstance(value, Parameter) and id(value) not in seen:
                params.append(value)
                seen.add(id(value))
            elif isinstance(value, Module):
                for param in value.parameters():
                    if id(param) not in seen:
                        params.append(param)
                        seen.add(id(param))
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        for param in item.parameters():
                            if id(param) not in seen:
                                params.append(param)
                                seen.add(id(param))
                    elif isinstance(item, Parameter) and id(item) not in seen:
                        params.append(item)
                        seen.add(id(item))
        return params

    def named_parameters(self) -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs; names are made unique by position."""
        for index, param in enumerate(self.parameters()):
            base = param.name or "param"
            yield (f"{base}_{index}", param)

    def zero_grad(self) -> None:
        """Clear gradients on all parameters."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # train / eval mode
    # ------------------------------------------------------------------ #
    def train(self) -> "Module":
        """Put the module (and children) in training mode (enables dropout)."""
        self._set_training(True)
        return self

    def eval(self) -> "Module":
        """Put the module (and children) in evaluation mode (disables dropout)."""
        self._set_training(False)
        return self

    @property
    def training(self) -> bool:
        return self._training

    def _set_training(self, mode: bool) -> None:
        self._training = mode
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_training(mode)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_training(mode)

    # ------------------------------------------------------------------ #
    # state dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a copy of all parameter arrays keyed by name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays previously produced by :meth:`state_dict`."""
        for name, param in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
