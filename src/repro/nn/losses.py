"""Training losses for the neural-network substrate.

These are the losses used by the MLP encoder and by the non-convex baselines;
GCON's strongly convex losses with closed-form derivative bounds live in
:mod:`repro.core.losses`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy between ``logits`` and integer ``labels``.

    Parameters
    ----------
    logits:
        Tensor of shape ``(n, c)``.
    labels:
        Integer array of shape ``(n,)`` with values in ``[0, c)``.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if labels.shape[0] != logits.shape[0]:
        raise ValueError("labels and logits disagree on the number of examples")
    n, c = logits.shape
    one_hot = np.zeros((n, c), dtype=np.float64)
    one_hot[np.arange(n), labels] = 1.0
    log_probs = logits.log_softmax(axis=1)
    return -(log_probs * Tensor(one_hot)).sum() * (1.0 / n)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean element-wise binary cross-entropy on raw logits.

    Computed as ``softplus(x) - x * y`` averaged over all elements, which is
    numerically stable for large-magnitude logits.
    """
    targets = np.asarray(targets, dtype=np.float64)
    if targets.shape != logits.shape:
        raise ValueError("targets must have the same shape as logits")
    # softplus(x) = max(x, 0) + log1p(exp(-|x|)) computed with autograd-safe ops:
    # use the identity softplus(x) = log(1 + exp(x)) via sigmoid: log(sigmoid(x)) = -softplus(-x).
    probs_log = logits.sigmoid().log()
    neg_probs_log = (Tensor(np.ones_like(targets)) - logits.sigmoid() + 1e-12).log()
    loss = -(Tensor(targets) * probs_log + Tensor(1.0 - targets) * neg_probs_log)
    return loss.mean()


def mean_squared_error(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error between ``predictions`` and a constant target array."""
    targets = np.asarray(targets, dtype=np.float64)
    if targets.shape != predictions.shape:
        raise ValueError("targets must have the same shape as predictions")
    diff = predictions - Tensor(targets)
    return (diff * diff).mean()
