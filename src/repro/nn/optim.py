"""Gradient-based optimizers for the neural-network substrate."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class: holds a parameter list and implements ``zero_grad``."""

    def __init__(self, parameters: list[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with decoupled-style weight decay."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.001,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_gradients(parameters: list[Parameter], max_norm: float) -> float:
    """Clip the global L2 norm of all parameter gradients to ``max_norm``.

    Returns the pre-clipping global norm.  Parameters whose gradient is
    ``None`` are ignored.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be > 0, got {max_norm}")
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(np.sum(g ** 2) for g in grads)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for param in parameters:
            if param.grad is not None:
                param.grad = param.grad * scale
    return total
