"""Parameter initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.random import as_rng


def glorot_uniform(shape: tuple[int, int], rng=None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a dense weight matrix.

    Samples uniformly from ``[-a, a]`` with ``a = sqrt(6 / (fan_in + fan_out))``,
    the standard initialisation for GCN/MLP layers.
    """
    rng = as_rng(rng)
    fan_in, fan_out = shape
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros_init(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialisation (used for biases)."""
    return np.zeros(shape, dtype=np.float64)
