"""A small reverse-mode autograd / neural-network substrate built on numpy.

The paper's reference implementation relies on PyTorch; this subpackage
provides the minimal equivalent needed by the GCON feature encoder and by the
non-convex baselines (MLP, GCN, DP-SGD, GAP, ProGAP, LPGNet): a ``Tensor``
with reverse-mode autodiff, ``Module``-style layers, common losses, Glorot
initialisation, and SGD/Adam optimizers.
"""

from repro.nn.tensor import Tensor
from repro.nn.module import Module, Parameter
from repro.nn.layers import Linear, ReLU, Tanh, Sigmoid, Dropout, Sequential
from repro.nn.losses import (
    softmax_cross_entropy,
    binary_cross_entropy_with_logits,
    mean_squared_error,
)
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.init import glorot_uniform, zeros_init
from repro.nn.schedulers import StepLR, ExponentialLR, CosineAnnealingLR, LinearWarmupLR
from repro.nn.training import EarlyStopping, TrainingHistory, fit_full_batch

__all__ = [
    "Tensor",
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "Sequential",
    "softmax_cross_entropy",
    "binary_cross_entropy_with_logits",
    "mean_squared_error",
    "SGD",
    "Adam",
    "Optimizer",
    "glorot_uniform",
    "zeros_init",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "LinearWarmupLR",
    "EarlyStopping",
    "TrainingHistory",
    "fit_full_batch",
]
