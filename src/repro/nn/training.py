"""Training-loop helpers: early stopping and a generic full-batch fit loop.

The baselines repeat the same pattern (forward, loss, backward, step, track
validation accuracy); :func:`fit_full_batch` factors that loop out and adds
optional early stopping and learning-rate scheduling, mirroring the protocol
the paper's competitors use (train with Adam, monitor validation accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.nn.schedulers import LRScheduler
from repro.nn.tensor import Tensor


class EarlyStopping:
    """Stop training when a monitored metric has not improved for ``patience`` epochs.

    ``mode="max"`` treats larger metric values as better (e.g. validation
    accuracy); ``mode="min"`` treats smaller values as better (e.g. loss).
    The best parameter state is snapshotted and can be restored afterwards.
    """

    def __init__(self, patience: int = 20, min_delta: float = 0.0, mode: str = "max"):
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise ConfigurationError(f"min_delta must be >= 0, got {min_delta}")
        if mode not in ("max", "min"):
            raise ConfigurationError(f"mode must be 'max' or 'min', got {mode!r}")
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self.best_value: float | None = None
        self.best_state: dict[str, np.ndarray] | None = None
        self.best_epoch: int = -1
        self.counter = 0
        self.stopped = False

    def _improved(self, value: float) -> bool:
        if self.best_value is None:
            return True
        if self.mode == "max":
            return value > self.best_value + self.min_delta
        return value < self.best_value - self.min_delta

    def update(self, value: float, model: Module | None = None, epoch: int = -1) -> bool:
        """Record a metric value; returns True when training should stop."""
        if self._improved(value):
            self.best_value = float(value)
            self.best_epoch = epoch
            self.counter = 0
            if model is not None:
                self.best_state = {k: v.copy() for k, v in model.state_dict().items()}
        else:
            self.counter += 1
            if self.counter >= self.patience:
                self.stopped = True
        return self.stopped

    def restore(self, model: Module) -> None:
        """Load the best snapshotted parameters back into ``model`` (if any)."""
        if self.best_state is not None:
            model.load_state_dict(self.best_state)


@dataclass
class TrainingHistory:
    """Per-epoch record of the fit loop."""

    train_loss: list[float] = field(default_factory=list)
    val_metric: list[float] = field(default_factory=list)
    learning_rate: list[float] = field(default_factory=list)
    stopped_epoch: int | None = None

    @property
    def num_epochs(self) -> int:
        return len(self.train_loss)

    @property
    def best_val_metric(self) -> float | None:
        return max(self.val_metric) if self.val_metric else None


def fit_full_batch(model: Module, optimizer: Optimizer,
                   loss_fn: Callable[[Module], Tensor],
                   epochs: int,
                   val_fn: Callable[[Module], float] | None = None,
                   early_stopping: EarlyStopping | None = None,
                   scheduler: LRScheduler | None = None,
                   grad_clip: float | None = None) -> TrainingHistory:
    """Generic full-batch training loop.

    Parameters
    ----------
    loss_fn:
        Callable receiving the model (in training mode) and returning the
        scalar loss :class:`Tensor` for the current epoch.
    val_fn:
        Optional callable receiving the model (in eval mode) and returning a
        scalar validation metric; required when ``early_stopping`` is given.
    grad_clip:
        Optional global gradient-norm clip applied before each step.
    """
    if epochs < 1:
        raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
    if early_stopping is not None and val_fn is None:
        raise ConfigurationError("early_stopping requires a val_fn")
    from repro.nn.optim import clip_gradients

    history = TrainingHistory()
    for epoch in range(epochs):
        model.train()
        optimizer.zero_grad()
        loss = loss_fn(model)
        loss.backward()
        if grad_clip is not None:
            clip_gradients(model.parameters(), grad_clip)
        optimizer.step()
        history.train_loss.append(float(loss.numpy()))
        history.learning_rate.append(float(getattr(optimizer, "lr", np.nan)))

        if val_fn is not None:
            model.eval()
            metric = float(val_fn(model))
            history.val_metric.append(metric)
            if early_stopping is not None and early_stopping.update(metric, model, epoch):
                history.stopped_epoch = epoch
                break
        if scheduler is not None:
            scheduler.step()

    if early_stopping is not None:
        early_stopping.restore(model)
    model.eval()
    return history
