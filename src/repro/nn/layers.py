"""Standard dense layers built on the autograd Tensor."""

from __future__ import annotations

import numpy as np

from repro.nn.init import glorot_uniform, zeros_init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.random import as_rng


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = as_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(zeros_init((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = as_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)
