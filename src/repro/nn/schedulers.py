"""Learning-rate schedulers for the numpy optimizers.

The reference implementations of several baselines anneal their learning
rate; these schedulers mirror the PyTorch API at the scale this library
needs: construct with an optimizer, call :meth:`step` once per epoch.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError
from repro.nn.optim import Optimizer


class LRScheduler:
    """Base class: tracks the epoch count and rescales ``optimizer.lr``."""

    def __init__(self, optimizer: Optimizer):
        if not hasattr(optimizer, "lr"):
            raise ConfigurationError("optimizer must expose a mutable 'lr' attribute")
        self.optimizer = optimizer
        self.base_lr = float(optimizer.lr)
        self.epoch = 0

    def get_lr(self) -> float:
        """Learning rate to use at the current epoch (override in subclasses)."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        new_lr = float(self.get_lr())
        self.optimizer.lr = new_lr
        return new_lr

    @property
    def current_lr(self) -> float:
        return float(self.optimizer.lr)


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 50, gamma: float = 0.5):
        if step_size < 1:
            raise ConfigurationError(f"step_size must be >= 1, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError(f"gamma must be in (0, 1], got {gamma}")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class ExponentialLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.99):
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError(f"gamma must be in (0, 1], got {gamma}")
        super().__init__(optimizer)
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** self.epoch


class CosineAnnealingLR(LRScheduler):
    """Cosine annealing from the base learning rate down to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int = 200, min_lr: float = 0.0):
        if total_epochs < 1:
            raise ConfigurationError(f"total_epochs must be >= 1, got {total_epochs}")
        if min_lr < 0:
            raise ConfigurationError(f"min_lr must be >= 0, got {min_lr}")
        super().__init__(optimizer)
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self) -> float:
        progress = min(self.epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + math.cos(math.pi * progress))


class LinearWarmupLR(LRScheduler):
    """Ramp the learning rate linearly from 0 over ``warmup_epochs``, then hold it."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int = 10):
        if warmup_epochs < 1:
            raise ConfigurationError(f"warmup_epochs must be >= 1, got {warmup_epochs}")
        super().__init__(optimizer)
        self.warmup_epochs = warmup_epochs

    def get_lr(self) -> float:
        if self.epoch >= self.warmup_epochs:
            return self.base_lr
        return self.base_lr * self.epoch / self.warmup_epochs
