"""Shared fixtures for the test suite: small synthetic graphs and RNGs."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs.adjacency import build_adjacency
from repro.graphs.generators import CitationGraphSpec, generate_citation_graph
from repro.graphs.graph import GraphDataset


@pytest.fixture(scope="session")
def tiny_spec() -> CitationGraphSpec:
    """A very small homophilous citation-graph spec used across tests."""
    return CitationGraphSpec(
        name="tiny",
        num_nodes=150,
        num_edges=450,
        num_features=64,
        num_classes=4,
        homophily=0.8,
        feature_active=8,
        feature_signal=0.6,
        train_per_class=10,
        num_val=20,
        num_test=50,
    )


@pytest.fixture(scope="session")
def tiny_graph(tiny_spec) -> GraphDataset:
    """A deterministic small homophilous graph with splits."""
    return generate_citation_graph(tiny_spec, seed=7)


@pytest.fixture(scope="session")
def heterophilous_graph() -> GraphDataset:
    """A small heterophilous graph (low homophily ratio)."""
    spec = CitationGraphSpec(
        name="tiny_hetero",
        num_nodes=150,
        num_edges=450,
        num_features=64,
        num_classes=4,
        homophily=0.2,
        feature_active=8,
        feature_signal=0.6,
        train_per_class=10,
        num_val=20,
        num_test=50,
    )
    return generate_citation_graph(spec, seed=3)


@pytest.fixture()
def path_graph() -> GraphDataset:
    """A deterministic 6-node path graph with trivial features and labels."""
    edges = np.array([[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]])
    adjacency = build_adjacency(edges, 6)
    features = np.eye(6)
    labels = np.array([0, 0, 0, 1, 1, 1])
    return GraphDataset(
        adjacency=adjacency,
        features=features,
        labels=labels,
        train_idx=np.array([0, 3]),
        val_idx=np.array([1, 4]),
        test_idx=np.array([2, 5]),
        name="path6",
    )


@pytest.fixture()
def triangle_adjacency() -> sp.csr_matrix:
    """Adjacency of a triangle plus one pendant node."""
    edges = np.array([[0, 1], [1, 2], [0, 2], [2, 3]])
    return build_adjacency(edges, 4)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
