"""Integration tests for the GCON estimator (Algorithm 1 + Algorithm 4)."""

import numpy as np
import pytest

from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.exceptions import ConfigurationError, NotFittedError


def fast_config(**overrides):
    params = dict(
        epsilon=4.0,
        alpha=0.8,
        propagation_steps=(2,),
        encoder_dim=8,
        encoder_hidden=24,
        encoder_epochs=60,
        lambda_reg=0.2,
        max_iterations=300,
    )
    params.update(overrides)
    return GCONConfig(**params)


class TestFitPredict:
    def test_end_to_end_shapes(self, tiny_graph):
        model = GCON(fast_config()).fit(tiny_graph, seed=0)
        assert model.theta_.shape == (8, tiny_graph.num_classes)
        scores = model.decision_scores(tiny_graph, mode="private")
        assert scores.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)
        predictions = model.predict(tiny_graph)
        assert predictions.shape == (tiny_graph.num_nodes,)
        assert predictions.min() >= 0 and predictions.max() < tiny_graph.num_classes

    def test_beats_majority_class_on_homophilous_graph(self, tiny_graph):
        model = GCON(fast_config(epsilon=8.0, use_pseudo_labels=True)).fit(tiny_graph, seed=0)
        score = model.score(tiny_graph)
        majority = np.bincount(tiny_graph.labels[tiny_graph.test_idx]).max() \
            / tiny_graph.test_idx.size
        assert score > majority

    def test_non_private_mode_has_no_noise(self, tiny_graph):
        model = GCON(fast_config(non_private=True)).fit(tiny_graph, seed=0)
        assert not model.perturbation_.requires_noise
        assert model.perturbation_.lambda_prime == 0.0

    def test_non_private_usually_beats_private_at_tight_budget(self, tiny_graph):
        non_private = GCON(fast_config(non_private=True)).fit(tiny_graph, seed=1)
        private = GCON(fast_config(epsilon=0.5)).fit(tiny_graph, seed=1)
        assert non_private.score(tiny_graph) >= private.score(tiny_graph) - 0.05

    def test_concatenated_steps_dimension(self, tiny_graph):
        model = GCON(fast_config(propagation_steps=(0, 2))).fit(tiny_graph, seed=0)
        assert model.theta_.shape == (16, tiny_graph.num_classes)

    def test_delta_defaults_to_inverse_edge_count(self, tiny_graph):
        model = GCON(fast_config(delta=None)).fit(tiny_graph, seed=0)
        assert model.perturbation_.delta == pytest.approx(1.0 / tiny_graph.num_edges)

    def test_explicit_delta_respected(self, tiny_graph):
        model = GCON(fast_config(delta=1e-3)).fit(tiny_graph, seed=0)
        assert model.perturbation_.delta == 1e-3

    def test_privacy_spent_property(self, tiny_graph):
        model = GCON(fast_config(epsilon=2.0)).fit(tiny_graph, seed=0)
        epsilon, delta = model.privacy_spent
        assert epsilon == 2.0 and 0 < delta < 1

    def test_pseudo_labels_expand_training_set(self, tiny_graph):
        without = GCON(fast_config()).fit(tiny_graph, seed=0)
        with_pseudo = GCON(fast_config(use_pseudo_labels=True)).fit(tiny_graph, seed=0)
        assert with_pseudo.perturbation_.num_labeled > without.perturbation_.num_labeled

    def test_pseudo_label_selection_is_class_balanced(self, tiny_graph):
        model = GCON(fast_config(use_pseudo_labels=True))
        model.fit(tiny_graph, seed=0)
        # Re-run the selection to inspect the label histogram.
        train_idx, labels = model._pseudo_label_selection(
            tiny_graph, model.encoder_, tiny_graph.num_classes
        )
        counts = np.bincount(labels[train_idx], minlength=tiny_graph.num_classes)
        assert counts.max() - counts.min() <= 0


class TestInferenceModes:
    def test_private_and_public_modes_differ_in_general(self, tiny_graph):
        model = GCON(fast_config(propagation_steps=(5,), non_private=True)).fit(tiny_graph, seed=0)
        private = model.decision_scores(tiny_graph, mode="private")
        public = model.decision_scores(tiny_graph, mode="public")
        assert not np.allclose(private, public)

    def test_invalid_mode_raises(self, tiny_graph):
        model = GCON(fast_config()).fit(tiny_graph, seed=0)
        with pytest.raises(ConfigurationError):
            model.decision_scores(tiny_graph, mode="leaky")

    def test_default_graph_is_training_graph(self, tiny_graph):
        model = GCON(fast_config()).fit(tiny_graph, seed=0)
        np.testing.assert_allclose(model.decision_scores(),
                                   model.decision_scores(tiny_graph))

    def test_score_on_explicit_index(self, tiny_graph):
        model = GCON(fast_config()).fit(tiny_graph, seed=0)
        value = model.score(tiny_graph, idx=tiny_graph.val_idx)
        assert 0.0 <= value <= 1.0


class TestGuards:
    def test_unfitted_model_raises(self, tiny_graph):
        model = GCON(fast_config())
        with pytest.raises(NotFittedError):
            model.predict(tiny_graph)
        with pytest.raises(NotFittedError):
            _ = model.privacy_spent

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(ConfigurationError):
            GCON(fast_config(), epsilon=2.0)

    def test_keyword_construction(self):
        model = GCON(epsilon=2.0, alpha=0.5)
        assert model.config.epsilon == 2.0
        assert model.config.alpha == 0.5

    def test_requires_train_split(self, tiny_graph):
        from dataclasses import replace

        graph = replace(tiny_graph, train_idx=np.array([], dtype=np.int64))
        with pytest.raises(ConfigurationError):
            GCON(fast_config()).fit(graph, seed=0)


class TestReproducibility:
    def test_same_seed_same_model(self, tiny_graph):
        first = GCON(fast_config()).fit(tiny_graph, seed=11)
        second = GCON(fast_config()).fit(tiny_graph, seed=11)
        np.testing.assert_allclose(first.theta_, second.theta_)

    def test_different_seed_different_noise(self, tiny_graph):
        first = GCON(fast_config(epsilon=1.0)).fit(tiny_graph, seed=1)
        second = GCON(fast_config(epsilon=1.0)).fit(tiny_graph, seed=2)
        assert not np.allclose(first.theta_, second.theta_)


class TestPseudoLabelModes:
    """The paper's n1 = n knob: 'all' uses every node, 'balanced' a class-balanced subset."""

    def test_all_mode_uses_every_node(self, tiny_graph):
        model = GCON(fast_config(use_pseudo_labels=True, pseudo_label_mode="all"))
        model.fit(tiny_graph, seed=0)
        assert model.perturbation_.num_labeled == tiny_graph.num_nodes

    def test_balanced_mode_uses_fewer_nodes_than_all(self, tiny_graph):
        balanced = GCON(fast_config(use_pseudo_labels=True, pseudo_label_mode="balanced"))
        balanced.fit(tiny_graph, seed=0)
        assert balanced.perturbation_.num_labeled <= tiny_graph.num_nodes
        assert balanced.perturbation_.num_labeled >= tiny_graph.train_idx.size

    def test_all_mode_keeps_true_labels_on_training_nodes(self, tiny_graph):
        model = GCON(fast_config(use_pseudo_labels=True, pseudo_label_mode="all"))
        model.fit(tiny_graph, seed=0)
        train_idx, labels = model._pseudo_label_selection(
            tiny_graph, model.encoder_, tiny_graph.num_classes, mode="all"
        )
        assert np.array_equal(train_idx, np.arange(tiny_graph.num_nodes))
        assert np.array_equal(labels[tiny_graph.train_idx],
                              tiny_graph.labels[tiny_graph.train_idx])

    def test_invalid_mode_rejected_by_config(self):
        with pytest.raises(ConfigurationError):
            fast_config(pseudo_label_mode="everything")


class TestPreparedFit:
    """The prepare/fit split behind the sweep engine's epsilon-axis reuse."""

    def test_prepared_fit_is_bitwise_identical(self, tiny_graph):
        config = fast_config(use_pseudo_labels=True)
        plain = GCON(config).fit(tiny_graph, seed=13)
        model = GCON(config)
        prepared = model.prepare(tiny_graph, seed=13)
        replayed = GCON(config).fit(tiny_graph, seed=13, prepared=prepared)
        assert np.array_equal(plain.theta_, replayed.theta_)

    def test_preparation_is_epsilon_independent(self, tiny_graph):
        prepared = GCON(fast_config(epsilon=0.5)).prepare(tiny_graph, seed=7)
        for epsilon in (0.5, 4.0):
            direct = GCON(fast_config(epsilon=epsilon)).fit(tiny_graph, seed=7)
            reused = GCON(fast_config(epsilon=epsilon)).fit(tiny_graph, seed=7,
                                                            prepared=prepared)
            assert np.array_equal(direct.theta_, reused.theta_)

    def test_mismatched_preparation_rejected(self, tiny_graph, path_graph):
        prepared = GCON(fast_config()).prepare(path_graph, seed=0)
        with pytest.raises(ConfigurationError):
            GCON(fast_config()).fit(tiny_graph, seed=0, prepared=prepared)

    def test_prepare_requires_train_split(self, tiny_graph):
        from dataclasses import replace

        empty = replace(tiny_graph, train_idx=np.array([], dtype=np.int64))
        with pytest.raises(ConfigurationError):
            GCON(fast_config()).prepare(empty, seed=0)

    def test_preparation_key_ignores_privacy_budget(self):
        lhs = fast_config(epsilon=0.5).preparation_key()
        rhs = fast_config(epsilon=4.0).preparation_key()
        assert lhs == rhs
        assert fast_config(alpha=0.3).preparation_key() != lhs

    def test_mismatched_preparation_config_rejected(self, tiny_graph):
        prepared = GCON(fast_config(alpha=0.8)).prepare(tiny_graph, seed=0)
        with pytest.raises(ConfigurationError, match="different preparation"):
            GCON(fast_config(alpha=0.3)).fit(tiny_graph, seed=0, prepared=prepared)

    def test_preparation_from_different_graph_rejected(self, tiny_graph, heterophilous_graph):
        # Same node count and config, different graph content.
        prepared = GCON(fast_config()).prepare(heterophilous_graph, seed=0)
        with pytest.raises(ConfigurationError, match="different graph"):
            GCON(fast_config()).fit(tiny_graph, seed=0, prepared=prepared)

    def test_preparation_with_different_seed_rejected(self, tiny_graph):
        prepared = GCON(fast_config()).prepare(tiny_graph, seed=1)
        with pytest.raises(ConfigurationError, match="seed"):
            GCON(fast_config()).fit(tiny_graph, seed=2, prepared=prepared)
