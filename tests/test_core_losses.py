"""Tests for the strongly convex losses: derivatives, bounds, convexity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.losses import MultiLabelSoftMarginLoss, PseudoHuberLoss, get_loss
from repro.exceptions import ConfigurationError


def finite_difference(function, x, eps=1e-6):
    return (function(x + eps) - function(x - eps)) / (2 * eps)


LOSSES = [
    MultiLabelSoftMarginLoss(num_classes=5),
    PseudoHuberLoss(num_classes=5, huber_delta=0.2),
    PseudoHuberLoss(num_classes=3, huber_delta=0.5),
]


@pytest.mark.parametrize("loss", LOSSES, ids=lambda l: type(l).__name__ + str(l.num_classes))
class TestDerivativeConsistency:
    def test_first_derivative_matches_finite_difference(self, loss):
        xs = np.linspace(-4, 4, 33)
        for y in (0.0, 1.0):
            numeric = finite_difference(lambda x: loss.value(x, np.full_like(x, y)), xs)
            np.testing.assert_allclose(loss.derivative(xs, np.full_like(xs, y)), numeric,
                                       rtol=1e-5, atol=1e-7)

    def test_second_derivative_matches_finite_difference(self, loss):
        xs = np.linspace(-4, 4, 33)
        for y in (0.0, 1.0):
            numeric = finite_difference(lambda x: loss.derivative(x, np.full_like(x, y)), xs)
            np.testing.assert_allclose(loss.second_derivative(xs, np.full_like(xs, y)), numeric,
                                       rtol=1e-5, atol=1e-7)

    def test_third_derivative_matches_finite_difference(self, loss):
        xs = np.linspace(-4, 4, 33)
        for y in (0.0, 1.0):
            numeric = finite_difference(lambda x: loss.second_derivative(x, np.full_like(x, y)), xs)
            np.testing.assert_allclose(loss.third_derivative(xs, np.full_like(xs, y)), numeric,
                                       rtol=1e-4, atol=1e-6)

    def test_convexity_second_derivative_nonnegative(self, loss):
        xs = np.linspace(-30, 30, 301)
        for y in (0.0, 1.0):
            assert np.all(loss.second_derivative(xs, np.full_like(xs, y)) >= 0.0)

    def test_loss_is_nonnegative(self, loss):
        xs = np.linspace(-30, 30, 301)
        for y in (0.0, 1.0):
            assert np.all(loss.value(xs, np.full_like(xs, y)) >= -1e-12)


@pytest.mark.parametrize("loss", LOSSES, ids=lambda l: type(l).__name__ + str(l.num_classes))
class TestSupremumBounds:
    @given(x=st.floats(min_value=-50, max_value=50), y=st.sampled_from([0.0, 1.0]))
    @settings(max_examples=80, deadline=None)
    def test_bounds_hold_everywhere(self, loss, x, y):
        xs = np.array([x])
        ys = np.array([y])
        assert abs(loss.derivative(xs, ys)[0]) <= loss.c1 + 1e-12
        assert abs(loss.second_derivative(xs, ys)[0]) <= loss.c2 + 1e-12
        assert abs(loss.third_derivative(xs, ys)[0]) <= loss.c3 + 1e-12

    def test_bounds_are_achievable(self, loss):
        """The supremum bounds should be tight (approached somewhere)."""
        xs = np.linspace(-60, 60, 20001)
        for y in (0.0, 1.0):
            ys = np.full_like(xs, y)
            assert np.max(np.abs(loss.derivative(xs, ys))) >= 0.95 * loss.c1
            assert np.max(np.abs(loss.second_derivative(xs, ys))) >= 0.95 * loss.c2
            assert np.max(np.abs(loss.third_derivative(xs, ys))) >= 0.95 * loss.c3


class TestClosedFormBounds:
    def test_soft_margin_bounds_match_appendix_f(self):
        loss = MultiLabelSoftMarginLoss(num_classes=7)
        assert loss.c1 == pytest.approx(1 / 7)
        assert loss.c2 == pytest.approx(1 / 28)
        assert loss.c3 == pytest.approx(1 / (6 * np.sqrt(3) * 7))

    def test_pseudo_huber_bounds_match_appendix_f(self):
        loss = PseudoHuberLoss(num_classes=4, huber_delta=0.3)
        assert loss.c1 == pytest.approx(0.3 / 4)
        assert loss.c2 == pytest.approx(1 / 4)
        assert loss.c3 == pytest.approx(48 * np.sqrt(5) / (125 * 4 * 0.3))

    def test_lipschitz_constant_of_second_derivative(self):
        """c3 bounds the Lipschitz constant of l'' (used in Lemma 7)."""
        loss = MultiLabelSoftMarginLoss(num_classes=3)
        xs = np.linspace(-10, 10, 2001)
        ys = np.zeros_like(xs)
        second = loss.second_derivative(xs, ys)
        slopes = np.abs(np.diff(second) / np.diff(xs))
        assert slopes.max() <= loss.c3 + 1e-6


class TestFactory:
    def test_get_loss_soft_margin(self):
        assert isinstance(get_loss("soft_margin", 4), MultiLabelSoftMarginLoss)

    def test_get_loss_pseudo_huber_passes_delta(self):
        loss = get_loss("pseudo_huber", 4, huber_delta=0.7)
        assert isinstance(loss, PseudoHuberLoss)
        assert loss.huber_delta == 0.7

    def test_unknown_loss(self):
        with pytest.raises(ConfigurationError):
            get_loss("cross_entropy", 4)

    def test_invalid_num_classes(self):
        with pytest.raises(ConfigurationError):
            MultiLabelSoftMarginLoss(0)
        with pytest.raises(ConfigurationError):
            PseudoHuberLoss(3, huber_delta=-1.0)
