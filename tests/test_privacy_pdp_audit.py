"""Tests for probabilistic-DP helpers and the empirical privacy auditor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, PrivacyBudgetError
from repro.privacy.audit import (
    AuditResult,
    PrivacyAuditor,
    audit_laplace_mechanism,
    clopper_pearson_interval,
    epsilon_lower_bound,
)
from repro.privacy.pdp import (
    check_pdp,
    empirical_pdp_epsilon,
    log_ratio_violation_fraction,
    pdp_implies_dp,
)


class TestPdpHelpers:
    def test_pdp_implies_dp_is_identity(self):
        assert pdp_implies_dp(1.5, 1e-5) == (1.5, 1e-5)

    def test_pdp_implies_dp_validates(self):
        with pytest.raises(PrivacyBudgetError):
            pdp_implies_dp(-1.0, 0.0)
        with pytest.raises(PrivacyBudgetError):
            pdp_implies_dp(1.0, 2.0)

    def test_violation_fraction_counts_exceedances(self):
        ratios = np.array([0.1, -0.2, 3.0, -4.0])
        assert log_ratio_violation_fraction(ratios, epsilon=1.0) == pytest.approx(0.5)

    def test_violation_fraction_zero_when_all_within(self):
        assert log_ratio_violation_fraction(np.array([0.2, -0.3]), epsilon=1.0) == 0.0

    def test_violation_fraction_rejects_empty(self):
        with pytest.raises(PrivacyBudgetError):
            log_ratio_violation_fraction(np.array([]), epsilon=1.0)

    def test_empirical_epsilon_is_quantile(self):
        ratios = np.linspace(-2.0, 2.0, 101)
        assert empirical_pdp_epsilon(ratios, delta=0.0) == pytest.approx(2.0)
        assert empirical_pdp_epsilon(ratios, delta=0.5) <= 2.0

    def test_check_pdp_accepts_and_rejects(self):
        ratios = np.array([0.1, 0.2, 5.0])
        assert check_pdp(ratios, epsilon=1.0, delta=0.5)
        assert not check_pdp(ratios, epsilon=1.0, delta=0.0)

    def test_check_pdp_with_slack(self):
        ratios = np.array([0.1, 0.2, 5.0])
        assert check_pdp(ratios, epsilon=1.0, delta=0.3, slack=0.05)


class TestClopperPearson:
    def test_contains_true_proportion(self):
        lower, upper = clopper_pearson_interval(50, 100)
        assert lower < 0.5 < upper

    def test_degenerate_cases(self):
        lower, upper = clopper_pearson_interval(0, 20)
        assert lower == 0.0 and upper < 0.3
        lower, upper = clopper_pearson_interval(20, 20)
        assert upper == 1.0 and lower > 0.7

    def test_interval_narrows_with_more_trials(self):
        lower_small, upper_small = clopper_pearson_interval(5, 10)
        lower_large, upper_large = clopper_pearson_interval(500, 1000)
        assert (upper_large - lower_large) < (upper_small - lower_small)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            clopper_pearson_interval(5, 0)
        with pytest.raises(ConfigurationError):
            clopper_pearson_interval(11, 10)
        with pytest.raises(ConfigurationError):
            clopper_pearson_interval(1, 10, confidence=1.5)


class TestEpsilonLowerBound:
    def test_zero_when_no_signal(self):
        assert epsilon_lower_bound(0.4, 0.5, delta=0.0) == 0.0

    def test_positive_when_attack_works(self):
        assert epsilon_lower_bound(0.9, 0.1, delta=0.0) == pytest.approx(np.log(9.0))

    def test_delta_discounts_true_positives(self):
        with_delta = epsilon_lower_bound(0.9, 0.1, delta=0.05)
        without = epsilon_lower_bound(0.9, 0.1, delta=0.0)
        assert with_delta < without

    def test_validates_delta(self):
        with pytest.raises(PrivacyBudgetError):
            epsilon_lower_bound(0.9, 0.1, delta=1.5)


class TestLaplaceAudit:
    def test_correct_mechanism_is_consistent(self):
        result = audit_laplace_mechanism(epsilon=1.0, trials=800, seed=0)
        assert isinstance(result, AuditResult)
        assert result.consistent
        assert result.empirical_epsilon <= 1.0 + 1e-9

    def test_result_fields_are_populated(self):
        result = audit_laplace_mechanism(epsilon=2.0, trials=300, seed=1)
        assert result.trials == 300
        assert 0.0 <= result.false_positive_rate <= 1.0
        assert 0.0 <= result.true_positive_rate <= 1.0

    def test_broken_mechanism_is_flagged(self):
        """Noise calibrated for epsilon=8 but claimed as epsilon=0.05 must be exposed."""
        from repro.privacy.mechanisms import laplace_mechanism

        def leaky(value, rng):
            return laplace_mechanism(np.array([value]), sensitivity=1.0, epsilon=8.0, rng=rng)

        auditor = PrivacyAuditor(leaky, score_fn=lambda output: float(output[0]))
        result = auditor.run(1.0, 0.0, claimed_epsilon=0.05, delta=0.0, trials=1500, seed=0)
        assert result.empirical_epsilon > 0.05
        assert not result.consistent

    def test_auditor_validates_inputs(self):
        auditor = PrivacyAuditor(lambda value, rng: value, score_fn=float)
        with pytest.raises(ConfigurationError):
            auditor.run(1.0, 0.0, claimed_epsilon=1.0, delta=0.0, trials=1)
        with pytest.raises(PrivacyBudgetError):
            auditor.run(1.0, 0.0, claimed_epsilon=0.0, delta=0.0, trials=10)
