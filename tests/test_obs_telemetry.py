"""End-to-end telemetry retention and alerting: the collector thread over a
live server, ``GET /alerts``, the collector-on/off bitwise pin, the fault
injection knob, the ``repro alerts`` one-shot and the fleet dashboard."""

from __future__ import annotations

import json
import threading
import time
import types
import urllib.request

import numpy as np
import pytest

from repro.cli.main import main
from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.graphs.datasets import load_dataset
from repro.obs.alerts import BAD_METRIC, GOOD_METRIC, AlertEngine, default_rules
from repro.obs.collector import TelemetryCollector
from repro.obs.dashboard import render_dashboard
from repro.obs.prometheus import render_server_metrics
from repro.obs.tsdb import TelemetryStore
from repro.serving import (
    FleetMember,
    FleetRouter,
    InferenceService,
    ModelRegistry,
    serve_http,
)
from repro.serving.service import FAULT_DELAY_FILE_ENV


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora_ml", scale=0.06, seed=0)


@pytest.fixture(scope="module")
def model(graph):
    config = GCONConfig(epsilon=2.0, alpha=0.8, encoder_epochs=20,
                        encoder_dim=8, encoder_hidden=16)
    return GCON(config).fit(graph, seed=7)


@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory, model):
    root = tmp_path_factory.mktemp("telemetry-registry")
    registry = ModelRegistry(root / "reg")
    registry.publish(model, "demo", inference_mode="private",
                     training={"dataset": "cora_ml", "scale": 0.06,
                               "graph_seed": 0})
    return root / "reg"


class _Server:
    """One in-process server, optionally with a telemetry collector wired
    exactly as ``repro serve --telemetry-dir`` wires it."""

    def __init__(self, registry_dir, graph, *, telemetry_dir=None,
                 fleet_dir=None, rid=None, rules=None, slo=False):
        self.service = InferenceService(ModelRegistry(registry_dir),
                                        graph=graph)
        self.service.prewarm("demo@latest")
        self.controller = None
        if slo:
            from repro.serving import SloController

            # Not started: the tests drive tick() deterministically.
            self.controller = SloController(self.service.batcher,
                                            target_p99=0.05)
            self.service.attach_slo(self.controller)
        self.server = serve_http(self.service, port=0, trace=True)
        self.port = self.server.server_address[1]
        self.member = None
        if fleet_dir is not None:
            self.member = FleetMember(fleet_dir, rid, "127.0.0.1", self.port,
                                      ttl=5.0)
            self.member.join(self.service.loaded_digests())
            self.member.start()
            self.server.fleet = FleetRouter(self.member, cache_ttl=0.0)
        self.store = self.engine = self.collector = None
        if telemetry_dir is not None:
            self.store = TelemetryStore(telemetry_dir)
            self.engine = AlertEngine(
                rules if rules is not None else default_rules(),
                self.store,
                history_path=telemetry_dir / "alerts.jsonl")
            self.server.alerts = self.engine
            self.collector = TelemetryCollector(
                self.store,
                lambda: render_server_metrics(self.service,
                                              server=self.server,
                                              tracer=self.server.tracer),
                interval=0.05, replica="r1", engine=self.engine)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def close(self):
        if self.collector is not None:
            self.collector.close()
        if self.member is not None:
            self.member.leave()
        self.server.shutdown()
        self.server.server_close()
        self.service.close()


def _predict(port, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/predict",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.status, json.loads(response.read())


def _get_json(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=10.0) as response:
        return response.status, json.loads(response.read())


class TestCollectorEndToEnd:
    def test_alerts_endpoint_disabled_without_collector(self, registry_dir,
                                                        graph):
        server = _Server(registry_dir, graph)
        try:
            status, payload = _get_json(server.port, "/alerts")
            assert status == 200
            assert payload == {"enabled": False, "alerts": []}
        finally:
            server.close()

    def test_collect_once_feeds_store_and_alerts_endpoint(self, registry_dir,
                                                          graph, tmp_path):
        server = _Server(registry_dir, graph, telemetry_dir=tmp_path / "tsdb",
                         slo=True)
        try:
            _predict(server.port, {"model": "demo", "nodes": [0, 3]})
            server.controller.tick()  # publish the SLO budget series
            appended = server.collector.collect_once()
            assert appended > 1
            assert server.store.scrape_times()
            names = server.store.series_names()
            assert names.get("repro_requests_total") == "counter"
            assert names.get("repro_uptime_seconds") == "gauge"
            assert (names.get("repro_process_resident_memory_bytes")
                    in (None, "gauge"))  # absent only without /proc
            assert names.get("repro_request_latency_seconds") == "histogram"
            assert names.get(GOOD_METRIC) == "counter"

            status, payload = _get_json(server.port, "/alerts")
            assert status == 200
            assert payload["enabled"] is True
            assert payload["firing"] == 0
            rule_names = {alert["rule"] for alert in payload["alerts"]}
            assert "slo-burn-rate" in rule_names
        finally:
            server.close()

    def test_collector_thread_scrapes_on_its_own(self, registry_dir, graph,
                                                 tmp_path):
        server = _Server(registry_dir, graph, telemetry_dir=tmp_path / "tsdb")
        try:
            server.collector.start()
            deadline = time.time() + 5.0
            while server.collector.scrapes == 0 and time.time() < deadline:
                time.sleep(0.02)
            assert server.collector.scrapes >= 1
            assert server.collector.errors == 0
            assert server.collector.stats()["last_error"] is None
        finally:
            server.close()
        # Segments survive the close: a restarted replica reopens the store.
        reopened = TelemetryStore(tmp_path / "tsdb")
        assert reopened.scrape_times()

    def test_collector_on_off_scores_bitwise_identical(self, registry_dir,
                                                       graph, model,
                                                       tmp_path):
        nodes = [0, 4, 2, 9]
        plain = _Server(registry_dir, graph)
        collected = _Server(registry_dir, graph,
                            telemetry_dir=tmp_path / "tsdb")
        collected.collector.start()
        try:
            _status, with_collector = _predict(
                collected.port, {"model": "demo", "nodes": nodes})
            _status, without = _predict(
                plain.port, {"model": "demo", "nodes": nodes})
            offline = model.decision_scores(graph, mode="private")[nodes]
            assert np.array_equal(np.asarray(with_collector["scores"]),
                                  offline)
            assert with_collector["scores"] == without["scores"]
        finally:
            collected.close()
            plain.close()


class TestFaultInjection:
    def test_delay_slows_requests_but_scores_are_untouched(
            self, registry_dir, graph, model, tmp_path, monkeypatch):
        nodes = [1, 5, 8]
        fault_file = tmp_path / "delay_ms"
        monkeypatch.setenv(FAULT_DELAY_FILE_ENV, str(fault_file))
        server = _Server(registry_dir, graph)
        try:
            _status, clean = _predict(server.port,
                                      {"model": "demo", "nodes": nodes})
            fault_file.write_text("80")
            start = time.perf_counter()
            _status, delayed = _predict(server.port,
                                        {"model": "demo", "nodes": nodes})
            elapsed = time.perf_counter() - start
            assert elapsed >= 0.08
            offline = model.decision_scores(graph, mode="private")[nodes]
            assert np.array_equal(np.asarray(delayed["scores"]), offline)
            assert delayed["scores"] == clean["scores"]
            fault_file.unlink()  # recovery: the knob is fully dynamic
            start = time.perf_counter()
            _predict(server.port, {"model": "demo", "nodes": nodes})
            assert time.perf_counter() - start < 0.08
        finally:
            server.close()

    def test_garbage_or_missing_delay_file_is_inert(self, registry_dir, graph,
                                                    tmp_path, monkeypatch):
        fault_file = tmp_path / "delay_ms"
        fault_file.write_text("not-a-number")
        monkeypatch.setenv(FAULT_DELAY_FILE_ENV, str(fault_file))
        server = _Server(registry_dir, graph)
        try:
            status, _body = _predict(server.port,
                                     {"model": "demo", "nodes": [0]})
            assert status == 200
        finally:
            server.close()


def _seed_breaching_store(root, *, now, objective=0.99):
    """Three scrapes a minute apart with a 10% bad-request ratio: burn
    10x the 1% budget in both the fast and slow windows."""
    store = TelemetryStore(root)
    for offset, (good, bad) in zip((120.0, 60.0, 0.0),
                                   ((0.0, 0.0), (90.0, 10.0), (180.0, 20.0))):
        store.append_scrape(
            [(GOOD_METRIC, {"model": "demo"}, good),
             (BAD_METRIC, {"model": "demo"}, bad)],
            {GOOD_METRIC: "counter", BAD_METRIC: "counter"},
            replica="r1", at=now - offset)
    return store


class TestAlertsCLI:
    def test_firing_store_exits_nonzero(self, tmp_path, capsys):
        _seed_breaching_store(tmp_path / "tsdb", now=time.time())
        assert main(["alerts", "--telemetry-dir", str(tmp_path / "tsdb")]) == 1
        output = capsys.readouterr().out
        assert "slo-burn-rate" in output
        assert "firing" in output

    def test_healthy_store_exits_zero(self, tmp_path, capsys):
        store = TelemetryStore(tmp_path / "tsdb")
        now = time.time()
        for offset, good in ((120.0, 0.0), (60.0, 100.0), (0.0, 200.0)):
            store.append_scrape([(GOOD_METRIC, {"model": "demo"}, good)],
                                {GOOD_METRIC: "counter"},
                                replica="r1", at=now - offset)
        assert main(["alerts", "--telemetry-dir", str(tmp_path / "tsdb")]) == 0
        assert "firing" not in capsys.readouterr().out.replace("0 firing", "")

    def test_missing_dir_is_a_config_error(self, tmp_path, capsys):
        assert main(["alerts", "--telemetry-dir",
                     str(tmp_path / "absent")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_json_payload(self, tmp_path, capsys):
        _seed_breaching_store(tmp_path / "tsdb", now=time.time())
        assert main(["alerts", "--telemetry-dir", str(tmp_path / "tsdb"),
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["firing"] >= 1
        firing = {alert["rule"] for alert in payload["alerts"]
                  if alert["state"] == "firing"}
        assert "slo-burn-rate" in firing

    def test_bad_rules_file_is_a_config_error(self, tmp_path, capsys):
        (tmp_path / "tsdb").mkdir()
        rules = tmp_path / "rules.json"
        rules.write_text("{\"rules\": [{\"kind\": \"nope\"}]}")
        assert main(["alerts", "--telemetry-dir", str(tmp_path / "tsdb"),
                     "--rules", str(rules)]) == 2
        assert "alerts failed" in capsys.readouterr().err


class TestServeTelemetryFlags:
    def test_bad_scrape_interval_fails_before_binding(self, tmp_path, capsys):
        exit_code = main(["serve", "--registry", str(tmp_path / "reg"),
                          "--model", "demo@latest",
                          "--telemetry-dir", str(tmp_path / "tsdb"),
                          "--scrape-interval", "0"])
        assert exit_code == 2
        assert "--scrape-interval" in capsys.readouterr().err

    def test_bad_rules_file_fails_before_binding(self, tmp_path, capsys):
        rules = tmp_path / "rules.json"
        rules.write_text("not json")
        exit_code = main(["serve", "--registry", str(tmp_path / "reg"),
                          "--model", "demo@latest",
                          "--telemetry-dir", str(tmp_path / "tsdb"),
                          "--alert-rules", str(rules)])
        assert exit_code == 2
        assert "serve failed" in capsys.readouterr().err


class TestDashboard:
    @staticmethod
    def _latency_samples(count):
        name = "repro_request_latency_seconds"
        labels = {"model": "demo"}
        return [
            (f"{name}_bucket", {**labels, "le": "0.05"}, count),
            (f"{name}_bucket", {**labels, "le": "+Inf"}, count),
            (f"{name}_sum", labels, 0.01 * count),
            (f"{name}_count", labels, count),
        ]

    def test_render_dashboard_reads_the_store(self):
        store = TelemetryStore()
        now = time.time()
        for offset, requests in ((30.0, 0.0), (15.0, 30.0), (0.0, 60.0)):
            store.append_scrape(
                [("repro_requests_total", {}, requests),
                 *self._latency_samples(requests),
                 ("repro_uptime_seconds", {}, 600.0 - offset),
                 ("repro_slo_error_budget_remaining_ratio",
                  {"model": "demo"}, 0.75),
                 ("repro_slo_burn_rate", {"model": "demo"}, 2.0),
                 ("repro_slo_target_p99_seconds", {}, 0.05)],
                {"repro_requests_total": "counter",
                 "repro_request_latency_seconds": "histogram",
                 "repro_uptime_seconds": "gauge",
                 "repro_slo_error_budget_remaining_ratio": "gauge",
                 "repro_slo_burn_rate": "gauge",
                 "repro_slo_target_p99_seconds": "gauge"},
                replica="r1", at=now - offset)
        replica = types.SimpleNamespace(replica_id="r1", expired=False)
        status = types.SimpleNamespace(replicas=[replica], live=[replica])
        frame = render_dashboard(status, store, None, now=now, window=60.0)
        assert "1 live / 1 replica(s)" in frame
        assert "r1" in frame and "live" in frame
        # 60 requests over a 60 s window → 1.00 req/s.
        assert "1.00" in frame
        assert "demo" in frame
        assert "0.75" in frame  # budget remaining
        assert "2.00" in frame  # burn rate
        assert "50" in frame    # target ms

    def test_expired_and_unreachable_states(self):
        store = TelemetryStore()
        dead = types.SimpleNamespace(replica_id="dead", expired=True)
        mute = types.SimpleNamespace(replica_id="mute", expired=False)
        status = types.SimpleNamespace(replicas=[dead, mute], live=[mute])
        frame = render_dashboard(status, store, None, now=time.time(),
                                 unreachable=["mute"])
        assert "expired" in frame
        assert "unreachable" in frame

    def test_fleet_watch_cli_one_shot(self, registry_dir, graph, tmp_path,
                                      capsys):
        fleet_dir = tmp_path / "fleet"
        server = _Server(registry_dir, graph, fleet_dir=fleet_dir, rid="w1")
        try:
            _predict(server.port, {"model": "demo", "nodes": [0, 1]})
            exit_code = main(["fleet", "watch", "--fleet-dir", str(fleet_dir),
                              "--iterations", "1", "--no-clear"])
        finally:
            server.close()
        assert exit_code == 0
        frame = capsys.readouterr().out
        assert "fleet watch" in frame
        assert "w1" in frame
        assert "demo" in frame       # the model table found the scrape
        assert "alert" in frame      # the engine section rendered

    def test_fleet_watch_rejects_bad_interval(self, tmp_path, capsys):
        assert main(["fleet", "watch", "--fleet-dir", str(tmp_path),
                     "--interval", "0"]) == 2
        assert "--interval" in capsys.readouterr().err


class TestTraceNotFound:
    def test_unknown_trace_id_message_and_exit_code(self, registry_dir, graph,
                                                    capsys):
        server = _Server(registry_dir, graph)
        try:
            exit_code = main(["trace", "f" * 32, "--url", server.url])
        finally:
            server.close()
        assert exit_code == 1
        assert "not found on any replica" in capsys.readouterr().err
