"""Tests for structured, trace-correlated logging."""

from __future__ import annotations

import io
import logging

from repro.obs.trace import Tracer
from repro.utils.logging import configure_logging, get_logger


def _fresh(stream=None, **kwargs):
    return configure_logging(stream=stream or io.StringIO(), force=True,
                             **kwargs)


class TestConfigureLogging:
    def test_single_tagged_handler_no_duplicates(self):
        logger = _fresh()
        for _ in range(3):
            configure_logging()  # every get_logger call re-enters this
        tagged = [handler for handler in logger.handlers
                  if getattr(handler, "_repro_structured_handler", False)]
        assert len(tagged) == 1
        assert logger.propagate is False

    def test_log_line_carries_level_name_and_dash_without_trace(self):
        stream = io.StringIO()
        _fresh(stream)
        get_logger("tuning").info("trial done")
        line = stream.getvalue().strip()
        assert "INFO" in line
        assert "repro.tuning" in line
        assert "trace=-" in line
        assert "trial done" in line

    def test_log_line_carries_the_active_trace_id(self):
        stream = io.StringIO()
        _fresh(stream)
        tracer = Tracer()
        with tracer.span("predict") as span:
            get_logger("serving").info("inside the request")
        line = stream.getvalue().strip()
        assert f"trace={span.trace_id}" in line

    def test_level_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "warning")
        stream = io.StringIO()
        _fresh(stream)
        logger = get_logger("x")
        logger.info("hidden")
        logger.warning("shown")
        assert "hidden" not in stream.getvalue()
        assert "shown" in stream.getvalue()

    def test_explicit_level_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "ERROR")
        stream = io.StringIO()
        _fresh(stream, level="DEBUG")
        get_logger("y").debug("visible")
        assert "visible" in stream.getvalue()

    def test_numeric_and_garbage_levels(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        assert _fresh(level="15").level == 15
        assert _fresh(level=logging.DEBUG).level == logging.DEBUG
        assert _fresh(level="NOT_A_LEVEL").level == logging.INFO

    def test_get_logger_namespaces_and_configures(self):
        _fresh()
        assert get_logger("tuning").name == "repro.tuning"
        assert get_logger("repro.serving").name == "repro.serving"
        tagged = [handler
                  for handler in logging.getLogger("repro").handlers
                  if getattr(handler, "_repro_structured_handler", False)]
        assert len(tagged) == 1
