"""Tests for the ``gcon-repro`` command-line interface.

The CLI is exercised end-to-end through ``main(argv)`` with scaled-down
settings so every sub-command runs in seconds; output is captured via capsys.
"""

from __future__ import annotations

import pytest

from repro.cli.main import build_parser, main


SMALL = ["--scale", "0.06", "--seed", "0"]


class TestParser:
    def test_help_lists_all_subcommands(self, capsys):
        parser = build_parser()
        help_text = parser.format_help()
        for command in ("datasets", "train", "baselines", "figure", "tune",
                        "sensitivity", "attack"):
            assert command in help_text

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "gcon-repro" in capsys.readouterr().out

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_figure_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "figure9"])

    def test_step_parser_accepts_inf(self):
        parser = build_parser()
        args = parser.parse_args(["train", "--steps", "1,2,inf"])
        assert args.steps == (1, 2, float("inf"))

    def test_step_parser_rejects_empty(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["train", "--steps", ","])


class TestDatasetsCommand:
    def test_prints_all_presets_with_reference(self, capsys):
        assert main(["datasets", "--scale", "0.05"]) == 0
        output = capsys.readouterr().out
        for name in ("cora_ml", "citeseer", "pubmed", "actor"):
            assert name in output
        assert "paper nodes" in output


class TestSensitivityCommand:
    def test_prints_lemma2_table(self, capsys):
        assert main(["sensitivity", "--alphas", "0.5", "--m-values", "1,inf"]) == 0
        output = capsys.readouterr().out
        # Psi(Z_1) = 2*(0.5)/0.5*(1-0.5) = 1.0, Psi(Z_inf) = 2.0
        assert "1.0000" in output
        assert "2.0000" in output

    def test_sensitivity_decreases_with_alpha(self, capsys):
        main(["sensitivity", "--alphas", "0.2,0.8", "--m-values", "inf"])
        lines = [line for line in capsys.readouterr().out.splitlines() if "|" in line]
        low_alpha = float(lines[-2].split("|")[1])
        high_alpha = float(lines[-1].split("|")[1])
        assert low_alpha > high_alpha


class TestTrainCommand:
    def test_trains_and_reports_scores(self, capsys):
        exit_code = main([
            "train", *SMALL, "--dataset", "cora_ml", "--epsilon", "4",
            "--alpha", "0.8", "--steps", "1",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "privacy: epsilon=4" in output
        assert "test micro-F1" in output

    def test_public_inference_mode(self, capsys):
        exit_code = main([
            "train", *SMALL, "--epsilon", "2", "--steps", "1",
            "--inference-mode", "public",
        ])
        assert exit_code == 0
        assert "public inference" in capsys.readouterr().out


class TestTuneCommand:
    def test_random_search_reports_leaderboard(self, capsys):
        exit_code = main([
            "tune", *SMALL, "--epsilon", "4", "--trials", "2", "--strategy", "random",
            "--encoder-epochs", "15",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Validation leaderboard" in output
        assert "best params" in output


class TestFigureCommand:
    def test_table2_writes_text_file(self, capsys, tmp_path):
        exit_code = main([
            "figure", "table2", "--scale", "0.05", "--output-dir", str(tmp_path),
        ])
        assert exit_code == 0
        assert (tmp_path / "table2.txt").exists()
        assert "Table II" in capsys.readouterr().out

    def test_attack_figure_exports_text_csv_json(self, capsys, tmp_path):
        exit_code = main([
            "figure", "attack", "--scale", "0.06", "--repeats", "1",
            "--datasets", "cora_ml", "--output-dir", str(tmp_path),
        ])
        assert exit_code == 0
        for suffix in (".txt", ".csv", ".json"):
            assert (tmp_path / f"attack{suffix}").exists()
        output = capsys.readouterr().out
        assert "GCON" in output
        assert "GCN (non-DP)" in output


class TestPublishServeCommands:
    GRID = ["--datasets", "cora_ml", "--methods", "GCON,MLP",
            "--epsilons", "0.5,2", "--repeats", "1", "--scale", "0.06",
            "--epochs", "15", "--encoder-epochs", "20"]

    @pytest.fixture()
    def sweep_store(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("publish") / "sweep.jsonl"
        assert main(["sweep", *self.GRID, "--output", str(path), "--quiet"]) == 0
        return path

    def test_publish_selects_refits_and_registers(self, sweep_store, tmp_path,
                                                  capsys):
        registry_dir = tmp_path / "registry"
        exit_code = main([
            "publish", "--store", str(sweep_store), "--registry",
            str(registry_dir), "--name", "cora-gcon", *self.GRID,
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "published cora-gcon@" in output
        assert "privacy: epsilon=" in output
        from repro.serving import ModelRegistry

        record = ModelRegistry(registry_dir).verify("cora-gcon@latest")
        assert record.manifest["training"]["dataset"] == "cora_ml"
        assert record.manifest["training"]["sweep_context"] is not None
        # The refit is the per-cell reference path, so its score must equal
        # the store's record for this cell (GCON groups of 2 epsilons ran
        # through the sweep fast path whose scores match the reference on
        # this grid).
        assert record.manifest["privacy"]["epsilon"] in (0.5, 2.0)

    def test_publish_rejects_mismatched_grid_context(self, sweep_store,
                                                     tmp_path, capsys):
        grid = list(self.GRID)
        grid[grid.index("20")] = "21"  # encoder-epochs drift
        exit_code = main([
            "publish", "--store", str(sweep_store), "--registry",
            str(tmp_path / "registry"), "--name", "x", *grid,
        ])
        assert exit_code == 2
        assert "sweep context" in capsys.readouterr().err

    def test_publish_rejects_non_gcon_winner(self, sweep_store, tmp_path,
                                             capsys):
        exit_code = main([
            "publish", "--store", str(sweep_store), "--registry",
            str(tmp_path / "registry"), "--name", "x", "--method", "MLP",
            *self.GRID,
        ])
        assert exit_code == 2
        assert "only" in capsys.readouterr().err

    def test_publish_missing_store_errors(self, tmp_path, capsys):
        exit_code = main([
            "publish", "--store", str(tmp_path / "absent.jsonl"),
            "--registry", str(tmp_path / "registry"), "--name", "x",
            *self.GRID,
        ])
        assert exit_code == 2
        assert "no records" in capsys.readouterr().err

    def test_serve_refuses_unknown_model(self, tmp_path, capsys):
        exit_code = main([
            "serve", "--registry", str(tmp_path / "registry"),
            "--model", "ghost@latest", "--port", "0",
        ])
        assert exit_code == 2
        assert "serve failed" in capsys.readouterr().err

    def test_parser_wires_serve_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--registry", "r", "--model", "m"])
        assert args.port == 8151
        assert args.batch_size == 64
        assert args.max_latency_ms == 5.0

    def test_help_lists_publish_and_serve(self):
        help_text = build_parser().format_help()
        assert "publish" in help_text
        assert "serve" in help_text
