"""Tests for Module/Linear/Dropout/Sequential and parameter management."""

import numpy as np
import pytest

from repro.nn import Dropout, Linear, ReLU, Sequential, Sigmoid, Tanh, Tensor
from repro.nn.init import glorot_uniform


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3, rng=0)
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_bias_optional(self):
        layer = Linear(5, 3, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestActivations:
    def test_relu_clamps_negative(self):
        out = ReLU()(Tensor(np.array([[-1.0, 2.0]])))
        np.testing.assert_array_equal(out.data, [[0.0, 2.0]])

    def test_sigmoid_range(self):
        out = Sigmoid()(Tensor(np.linspace(-5, 5, 11)))
        assert np.all((out.data > 0) & (out.data < 1))

    def test_tanh_range(self):
        out = Tanh()(Tensor(np.linspace(-5, 5, 11)))
        assert np.all(np.abs(out.data) < 1)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, rng=0)
        layer.eval()
        data = np.random.default_rng(0).normal(size=(10, 10))
        np.testing.assert_array_equal(layer(Tensor(data)).data, data)

    def test_train_mode_zeroes_some_entries(self):
        layer = Dropout(0.5, rng=0)
        layer.train()
        out = layer(Tensor(np.ones((50, 50))))
        dropped = np.mean(out.data == 0.0)
        assert 0.3 < dropped < 0.7

    def test_inverted_scaling_preserves_mean(self):
        layer = Dropout(0.3, rng=0)
        layer.train()
        out = layer(Tensor(np.ones((200, 200))))
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestSequentialAndModule:
    def _network(self):
        return Sequential(Linear(4, 8, rng=0), ReLU(), Dropout(0.2, rng=0), Linear(8, 3, rng=1))

    def test_parameter_discovery(self):
        network = self._network()
        assert len(network.parameters()) == 4  # two weights + two biases

    def test_train_eval_propagates(self):
        network = self._network()
        network.eval()
        assert all(not m.training for m in network if isinstance(m, Dropout))
        network.train()
        assert all(m.training for m in network if isinstance(m, Dropout))

    def test_state_dict_round_trip(self):
        network = self._network()
        state = network.state_dict()
        for param in network.parameters():
            param.data = param.data + 1.0
        network.load_state_dict(state)
        for name, param in network.named_parameters():
            np.testing.assert_array_equal(param.data, state[name])

    def test_load_state_dict_shape_mismatch(self):
        network = self._network()
        state = network.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            network.load_state_dict(state)

    def test_zero_grad_clears_gradients(self):
        network = self._network()
        out = network(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in network.parameters())
        network.zero_grad()
        assert all(p.grad is None for p in network.parameters())


class TestInit:
    def test_glorot_limit(self):
        weights = glorot_uniform((100, 50), rng=0)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(weights) <= limit)
        assert weights.std() > 0
