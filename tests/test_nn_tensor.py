"""Tests for the autograd engine: gradients are checked against finite differences."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import Tensor


def numerical_gradient(function, value, eps=1e-6):
    """Central finite-difference gradient of a scalar-valued ``function``."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    it = np.nditer(value, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        plus = value.copy()
        plus[index] += eps
        minus = value.copy()
        minus[index] -= eps
        grad[index] = (function(plus) - function(minus)) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(build, value, rtol=1e-5, atol=1e-7):
    """Compare autograd and numerical gradients for a scalar graph output."""
    tensor = Tensor(value, requires_grad=True)
    output = build(tensor)
    output.backward()
    numeric = numerical_gradient(lambda v: float(build(Tensor(v, requires_grad=True)).data), value)
    np.testing.assert_allclose(tensor.grad, numeric, rtol=rtol, atol=atol)


class TestElementwiseOps:
    def test_add_mul_grad(self):
        value = np.random.default_rng(0).normal(size=(3, 4))
        check_gradient(lambda t: ((t * 2.0 + 1.0) * t).sum(), value)

    def test_sub_div_grad(self):
        value = np.random.default_rng(1).normal(size=(3, 3)) + 3.0
        check_gradient(lambda t: ((t - 0.5) / (t + 2.0)).sum(), value)

    def test_pow_grad(self):
        value = np.abs(np.random.default_rng(2).normal(size=(4,))) + 0.1
        check_gradient(lambda t: (t ** 3).sum(), value)

    def test_relu_grad(self):
        value = np.random.default_rng(3).normal(size=(5, 2)) + 0.05
        check_gradient(lambda t: t.relu().sum(), value)

    def test_sigmoid_tanh_exp_log_grad(self):
        value = np.abs(np.random.default_rng(4).normal(size=(3, 3))) + 0.5
        check_gradient(lambda t: (t.sigmoid() + t.tanh() + t.exp() * 0.01 + t.log()).sum(), value)


class TestMatmulAndShape:
    def test_matmul_grad(self):
        rng = np.random.default_rng(5)
        other = rng.normal(size=(4, 2))
        value = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t @ Tensor(other)).sum(), value)

    def test_matmul_grad_right_operand(self):
        rng = np.random.default_rng(6)
        left = rng.normal(size=(3, 4))
        value = rng.normal(size=(4, 2))
        check_gradient(lambda t: (Tensor(left) @ t).sum(), value)

    def test_sparse_matmul_grad(self):
        rng = np.random.default_rng(7)
        sparse = sp.random(5, 5, density=0.4, random_state=0, format="csr")
        value = rng.normal(size=(5, 3))
        check_gradient(lambda t: t.matmul_sparse(sparse).sum(), value)

    def test_transpose_reshape_grad(self):
        value = np.random.default_rng(8).normal(size=(2, 6))
        check_gradient(lambda t: (t.T.reshape(3, 4) * 2.0).sum(), value)

    def test_getitem_grad(self):
        value = np.random.default_rng(9).normal(size=(6, 3))
        index = np.array([0, 2, 4])
        check_gradient(lambda t: (t[index] ** 2).sum(), value)

    def test_concatenate_grad(self):
        rng = np.random.default_rng(10)
        other = rng.normal(size=(3, 2))
        value = rng.normal(size=(3, 4))
        check_gradient(
            lambda t: (Tensor.concatenate([t, Tensor(other, requires_grad=False)], axis=1) ** 2).sum(),
            value,
        )


class TestReductionsAndSoftmax:
    def test_mean_axis_grad(self):
        value = np.random.default_rng(11).normal(size=(4, 5))
        check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(), value)

    def test_sum_keepdims_grad(self):
        value = np.random.default_rng(12).normal(size=(4, 5))
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) * t).sum(), value)

    def test_log_softmax_grad(self):
        value = np.random.default_rng(13).normal(size=(4, 6))
        target = np.zeros((4, 6))
        target[np.arange(4), [0, 1, 2, 3]] = 1.0
        check_gradient(lambda t: -(t.log_softmax(axis=1) * Tensor(target)).sum(), value)

    def test_broadcast_add_bias_grad(self):
        rng = np.random.default_rng(14)
        data = rng.normal(size=(5, 3))
        value = rng.normal(size=(3,))
        check_gradient(lambda t: ((Tensor(data) + t) ** 2).sum(), value)


class TestBackwardSemantics:
    def test_backward_on_non_scalar_requires_grad_argument(self):
        tensor = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (tensor * 2).backward()

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_gradient_accumulates_across_uses(self):
        tensor = Tensor(np.array([2.0]), requires_grad=True)
        out = tensor * 3.0 + tensor * 4.0
        out.backward()
        assert tensor.grad[0] == pytest.approx(7.0)

    def test_detach_stops_gradients(self):
        tensor = Tensor(np.array([2.0]), requires_grad=True)
        out = (tensor.detach() * 3.0).sum()
        assert not out.requires_grad

    def test_diamond_graph_gradient(self):
        tensor = Tensor(np.array([3.0]), requires_grad=True)
        a = tensor * 2.0
        b = tensor * 5.0
        out = (a * b).sum()  # d/dx (10 x^2) = 20 x
        out.backward()
        assert tensor.grad[0] == pytest.approx(60.0)
