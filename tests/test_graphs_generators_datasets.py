"""Tests for synthetic generators, named dataset presets, splits, homophily and IO."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.graphs.datasets import (
    dataset_statistics,
    get_spec,
    list_datasets,
    load_dataset,
    reference_statistics,
)
from repro.graphs.generators import CitationGraphSpec, generate_citation_graph
from repro.graphs.homophily import edge_homophily_ratio, homophily_ratio
from repro.graphs.io import load_graph, save_graph
from repro.graphs.splits import fractional_split, per_class_split


class TestCitationGraphSpec:
    def test_invalid_homophily(self):
        with pytest.raises(ConfigurationError):
            CitationGraphSpec(name="x", num_nodes=50, num_edges=100, num_features=10,
                              num_classes=3, homophily=1.5)

    def test_scaled_preserves_classes_and_ratio(self):
        spec = get_spec("cora_ml")
        scaled = spec.scaled(0.2)
        assert scaled.num_classes == spec.num_classes
        assert scaled.homophily == spec.homophily
        assert scaled.num_nodes < spec.num_nodes

    def test_scale_one_is_identity(self):
        spec = get_spec("citeseer")
        assert spec.scaled(1.0) is spec

    def test_scale_out_of_range(self):
        with pytest.raises(ConfigurationError):
            get_spec("cora_ml").scaled(0.0)


class TestGenerator:
    def test_shapes_and_counts(self, tiny_spec, tiny_graph):
        assert tiny_graph.num_nodes == tiny_spec.num_nodes
        assert tiny_graph.num_features == tiny_spec.num_features
        assert tiny_graph.num_classes == tiny_spec.num_classes
        # Edge count is approximate (rejection sampling) but close.
        assert tiny_graph.num_edges >= 0.8 * tiny_spec.num_edges

    def test_homophily_close_to_target(self, tiny_spec, tiny_graph):
        assert abs(edge_homophily_ratio(tiny_graph) - tiny_spec.homophily) < 0.12

    def test_heterophilous_target(self, heterophilous_graph):
        assert edge_homophily_ratio(heterophilous_graph) < 0.4

    def test_deterministic_given_seed(self, tiny_spec):
        first = generate_citation_graph(tiny_spec, seed=5)
        second = generate_citation_graph(tiny_spec, seed=5)
        np.testing.assert_array_equal(first.labels, second.labels)
        np.testing.assert_array_equal(first.adjacency.toarray(), second.adjacency.toarray())

    def test_different_seeds_differ(self, tiny_spec):
        first = generate_citation_graph(tiny_spec, seed=1)
        second = generate_citation_graph(tiny_spec, seed=2)
        assert not np.array_equal(first.adjacency.toarray(), second.adjacency.toarray())

    def test_features_are_binary_and_nonempty(self, tiny_graph):
        values = np.unique(tiny_graph.features)
        assert set(values) <= {0.0, 1.0}
        assert tiny_graph.features.sum(axis=1).min() >= 1

    def test_every_class_has_enough_training_nodes(self, tiny_spec, tiny_graph):
        for cls in range(tiny_spec.num_classes):
            members = np.count_nonzero(tiny_graph.labels[tiny_graph.train_idx] == cls)
            assert members == tiny_spec.train_per_class


class TestDatasetRegistry:
    def test_list_datasets(self):
        assert set(list_datasets()) == {"cora_ml", "citeseer", "pubmed", "actor"}

    def test_unknown_dataset_raises(self):
        with pytest.raises(ConfigurationError):
            load_dataset("not-a-dataset")

    def test_name_normalisation(self):
        assert get_spec("Cora-ML").name == "cora_ml"

    def test_scaled_load_has_expected_size(self):
        graph = load_dataset("citeseer", scale=0.1, seed=0)
        spec = get_spec("citeseer")
        assert graph.num_nodes == pytest.approx(spec.num_nodes * 0.1, rel=0.2)

    def test_reference_statistics_match_table2(self):
        reference = reference_statistics()
        assert reference["cora_ml"]["nodes"] == 2995
        assert reference["pubmed"]["features"] == 500
        assert reference["actor"]["classes"] == 5
        assert reference["citeseer"]["homophily"] == pytest.approx(0.71)

    def test_dataset_statistics_contains_all(self):
        stats = dataset_statistics(["cora_ml", "actor"], scale=0.05, seed=0)
        assert [s["name"] for s in stats] == ["cora_ml", "actor"]


class TestHomophily:
    def test_path_graph_homophily(self, path_graph):
        # path 0-0-0-1-1-1: only the middle edge (2,3) crosses classes.
        assert homophily_ratio(path_graph) == pytest.approx(1.0 - (0.5 + 0.5) / 6)
        assert edge_homophily_ratio(path_graph) == pytest.approx(4 / 5)

    def test_bounds(self, tiny_graph):
        value = homophily_ratio(tiny_graph)
        assert 0.0 <= value <= 1.0


class TestSplits:
    def test_per_class_split_counts(self):
        labels = np.repeat(np.arange(4), 50)
        train, val, test = per_class_split(labels, train_per_class=5, num_val=20, num_test=30,
                                           rng=0)
        assert train.size == 20
        assert val.size == 20 and test.size == 30
        assert len(np.intersect1d(train, val)) == 0
        assert len(np.intersect1d(train, test)) == 0
        assert len(np.intersect1d(val, test)) == 0

    def test_per_class_split_small_graph_degrades_gracefully(self):
        labels = np.repeat(np.arange(2), 10)
        train, val, test = per_class_split(labels, train_per_class=3, num_val=500, num_test=1000,
                                           rng=0)
        assert train.size == 6
        assert val.size + test.size == 14

    def test_fractional_split_partitions_everything(self):
        train, val, test = fractional_split(100, rng=0)
        together = np.concatenate([train, val, test])
        assert np.array_equal(np.sort(together), np.arange(100))

    def test_fractional_split_rejects_bad_fractions(self):
        with pytest.raises(ConfigurationError):
            fractional_split(10, fractions=(0.5, 0.2, 0.2))


class TestGraphIO:
    def test_round_trip(self, tiny_graph, tmp_path):
        path = save_graph(tiny_graph, tmp_path / "graph.npz")
        loaded = load_graph(path)
        np.testing.assert_array_equal(loaded.adjacency.toarray(), tiny_graph.adjacency.toarray())
        np.testing.assert_array_equal(loaded.features, tiny_graph.features)
        np.testing.assert_array_equal(loaded.labels, tiny_graph.labels)
        np.testing.assert_array_equal(loaded.train_idx, tiny_graph.train_idx)
        assert loaded.name == tiny_graph.name

    def test_creates_parent_directories(self, path_graph, tmp_path):
        target = tmp_path / "nested" / "dir" / "graph.npz"
        save_graph(path_graph, target)
        assert target.exists()
