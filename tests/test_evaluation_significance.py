"""Tests for bootstrap intervals, paired permutation tests and win matrices."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.significance import (
    BootstrapInterval,
    bootstrap_mean_interval,
    paired_permutation_test,
    summarize_comparison,
    win_matrix,
)
from repro.exceptions import ConfigurationError


class TestBootstrapInterval:
    def test_interval_contains_sample_mean(self):
        scores = [0.70, 0.72, 0.71, 0.69, 0.73, 0.70, 0.74, 0.68, 0.71, 0.72]
        interval = bootstrap_mean_interval(scores, rng=0)
        assert isinstance(interval, BootstrapInterval)
        assert interval.lower <= interval.mean <= interval.upper
        assert interval.contains(np.mean(scores))

    def test_higher_confidence_widens_interval(self):
        scores = np.random.default_rng(0).normal(0.7, 0.05, size=10)
        narrow = bootstrap_mean_interval(scores, confidence=0.80, rng=1)
        wide = bootstrap_mean_interval(scores, confidence=0.99, rng=1)
        assert wide.width >= narrow.width

    def test_low_variance_gives_tight_interval(self):
        tight = bootstrap_mean_interval([0.7, 0.7001, 0.6999, 0.7], rng=0)
        loose = bootstrap_mean_interval([0.4, 0.9, 0.5, 0.95], rng=0)
        assert tight.width < loose.width

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_mean_interval([0.5])
        with pytest.raises(ConfigurationError):
            bootstrap_mean_interval([0.5, np.nan])
        with pytest.raises(ConfigurationError):
            bootstrap_mean_interval([0.5, 0.6], confidence=1.5)
        with pytest.raises(ConfigurationError):
            bootstrap_mean_interval([0.5, 0.6], num_resamples=10)

    @given(st.lists(st.floats(0.0, 1.0), min_size=3, max_size=12))
    @settings(max_examples=20, deadline=None)
    def test_interval_always_ordered(self, scores):
        interval = bootstrap_mean_interval(scores, num_resamples=200, rng=0)
        assert interval.lower <= interval.upper


class TestPairedPermutationTest:
    def test_clear_difference_is_significant(self):
        rng = np.random.default_rng(0)
        strong = 0.80 + 0.01 * rng.normal(size=10)
        weak = 0.60 + 0.01 * rng.normal(size=10)
        comparison = paired_permutation_test(strong, weak, rng=0)
        assert comparison.mean_difference > 0.15
        assert comparison.significant(alpha=0.05)

    def test_identical_distributions_not_significant(self):
        rng = np.random.default_rng(1)
        base = 0.7 + 0.02 * rng.normal(size=10)
        other = base + 0.001 * rng.normal(size=10)
        comparison = paired_permutation_test(base, other, rng=0)
        assert not comparison.significant(alpha=0.01)

    def test_p_value_in_unit_interval(self):
        comparison = paired_permutation_test([0.5, 0.6, 0.7], [0.4, 0.5, 0.6],
                                             num_permutations=500, rng=0)
        assert 0.0 < comparison.p_value <= 1.0

    def test_symmetry_of_mean_difference(self):
        first = [0.8, 0.82, 0.81]
        second = [0.7, 0.71, 0.72]
        forward = paired_permutation_test(first, second, rng=0)
        backward = paired_permutation_test(second, first, rng=0)
        assert forward.mean_difference == pytest.approx(-backward.mean_difference)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            paired_permutation_test([0.5, 0.6], [0.5])
        with pytest.raises(ConfigurationError):
            paired_permutation_test([0.5, 0.6], [0.5, 0.6], num_permutations=10)


class TestWinMatrix:
    def test_dominant_method_wins_everywhere(self):
        rng = np.random.default_rng(0)
        results = {
            "GCON": list(0.80 + 0.01 * rng.normal(size=8)),
            "GAP": list(0.60 + 0.01 * rng.normal(size=8)),
            "DPGCN": list(0.30 + 0.01 * rng.normal(size=8)),
        }
        names, matrix = win_matrix(results, rng=0)
        gcon = names.index("GCON")
        assert np.all(matrix[gcon, [i for i in range(3) if i != gcon]] == 1)
        assert np.all(np.diag(matrix) == 0)

    def test_matrix_is_antisymmetric(self):
        rng = np.random.default_rng(1)
        results = {name: list(rng.normal(0.7, 0.05, size=6)) for name in "abc"}
        _, matrix = win_matrix(results, rng=0)
        assert np.array_equal(matrix, -matrix.T)

    def test_requires_two_methods(self):
        with pytest.raises(ConfigurationError):
            win_matrix({"only": [0.5, 0.6]})

    def test_summary_line_mentions_significance(self):
        line = summarize_comparison("GCON", [0.8, 0.81, 0.82, 0.8],
                                    "GAP", [0.6, 0.61, 0.6, 0.62])
        assert "GCON" in line and "GAP" in line
        assert "p =" in line
