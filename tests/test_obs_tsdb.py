"""Tests for the on-disk telemetry time-series store (repro.obs.tsdb)."""

import json

import pytest

from repro.obs.prometheus import MetricsRenderer
from repro.obs.tsdb import (
    TelemetryStore,
    counter_increase,
    infer_metric_types,
    parse_metric_types,
    vector_increase,
)


def _store(tmp_path, **kwargs):
    kwargs.setdefault("segment_seconds", 60.0)
    kwargs.setdefault("retention", 600.0)
    return TelemetryStore(tmp_path / "tsdb", **kwargs)


def _counter(name, value, labels=None):
    return (name, dict(labels or {}), float(value))


def _histogram_samples(name, labels, cumulative, bounds=(0.1, 0.2),
                       total=None, sum_value=0.0):
    """Build exposition-parsed samples for one histogram series."""
    samples = []
    for edge, count in zip(list(bounds) + ["+Inf"], cumulative):
        le = "+Inf" if edge == "+Inf" else repr(float(edge))
        samples.append((f"{name}_bucket", {**labels, "le": le}, float(count)))
    samples.append((f"{name}_sum", dict(labels), float(sum_value)))
    samples.append((f"{name}_count", dict(labels),
                    float(cumulative[-1] if total is None else total)))
    return samples


class TestIncreaseHelpers:
    def test_counter_increase_monotone(self):
        total, resets = counter_increase([(0, 10.0), (1, 15.0), (2, 21.0)])
        assert total == 11.0
        assert resets == 0

    def test_counter_increase_detects_reset(self):
        # A replica restart drops the counter to near zero; the post-restart
        # value is the increase since the reset.
        total, resets = counter_increase([(0, 100.0), (1, 110.0), (2, 4.0)])
        assert total == 14.0  # 10 before the restart + 4 after
        assert resets == 1

    def test_vector_increase_reset_resets_whole_vector(self):
        vectors = [(0, [5.0, 5.0]), (1, [6.0, 7.0]), (2, [1.0, 0.0])]
        total, resets = vector_increase(vectors)
        assert total == [2.0, 2.0]  # [1,2] pre-reset + [1,0] post
        assert resets == 1

    def test_single_point_has_no_increase(self):
        assert counter_increase([(0, 42.0)]) == (0.0, 0)


class TestTypeClassification:
    def test_parse_metric_types_reads_type_comments(self):
        out = MetricsRenderer()
        out.counter("x_total", 1, "a counter")
        out.gauge("y", 2.0, "a gauge")
        types = parse_metric_types(out.render())
        assert types == {"x_total": "counter", "y": "gauge"}

    def test_infer_metric_types_by_convention(self):
        samples = [
            _counter("repro_requests_total", 5),
            ("repro_sessions_loaded", {}, 2.0),
            ("lat_bucket", {"le": "+Inf"}, 3.0),
            ("lat_sum", {}, 0.5),
            ("lat_count", {}, 3.0),
        ]
        types = infer_metric_types(samples)
        assert types["repro_requests_total"] == "counter"
        assert types["repro_sessions_loaded"] == "gauge"
        assert types["lat"] == "histogram"
        assert "lat_bucket" not in types


class TestWindowQueries:
    def test_window_sum_counts_all_in_window_deltas(self, tmp_path):
        store = _store(tmp_path)
        for t, value in [(100, 10), (110, 14), (120, 20), (130, 21)]:
            store.append_scrape([_counter("req_total", value)],
                                {"req_total": "counter"}, at=t)
        # Window (100, 130]: the t=100 sample anchors the first delta.
        assert store.window_sum("req_total", window=30, at=130) == 11.0
        assert store.rate("req_total", window=30, at=130) == \
            pytest.approx(11.0 / 30.0)

    def test_window_sum_reset_across_replica_restart(self, tmp_path):
        store = _store(tmp_path)
        for t, value in [(100, 50), (110, 60), (120, 5), (130, 8)]:
            store.append_scrape([_counter("req_total", value)],
                                {"req_total": "counter"}, at=t)
        # 10 before the restart, 5 at restart, 3 after = 18.
        assert store.window_sum("req_total", window=30, at=130) == 18.0
        assert store.counter_resets("req_total", window=30, at=130) == 1

    def test_window_sum_sums_across_replicas_and_groups_by(self, tmp_path):
        store = _store(tmp_path)
        for t, a_value, b_value in [(100, 0, 0), (110, 4, 6)]:
            store.append_scrape([_counter("req_total", a_value)],
                                {"req_total": "counter"}, replica="a", at=t)
            store.append_scrape([_counter("req_total", b_value)],
                                {"req_total": "counter"}, replica="b", at=t)
        assert store.window_sum("req_total", window=20, at=110) == 10.0
        per_replica = store.window_sum("req_total", window=20, at=110,
                                       by="replica")
        assert per_replica == {"a": 4.0, "b": 6.0}

    def test_window_sum_groups_by_label(self, tmp_path):
        store = _store(tmp_path)
        for t, x_value, y_value in [(100, 0, 0), (110, 3, 9)]:
            store.append_scrape(
                [_counter("good_total", x_value, {"model": "x"}),
                 _counter("good_total", y_value, {"model": "y"})],
                {"good_total": "counter"}, at=t)
        assert store.window_sum("good_total", window=20, at=110,
                                by="model") == {"x": 3.0, "y": 9.0}
        assert store.window_sum("good_total", window=20, at=110,
                                labels={"model": "y"}) == 9.0

    def test_latest_gauge_and_scrape_times(self, tmp_path):
        store = _store(tmp_path)
        store.append_scrape([("rss", {}, 100.0)], {"rss": "gauge"},
                            replica="a", at=100)
        store.append_scrape([("rss", {}, 200.0)], {"rss": "gauge"},
                            replica="a", at=110)
        store.append_scrape([("rss", {}, 50.0)], {"rss": "gauge"},
                            replica="b", at=110)
        assert store.latest("rss", at=120) == 250.0  # fleet total
        assert store.latest("rss", at=120, by="replica") == \
            {"a": 200.0, "b": 50.0}
        assert store.scrape_times(start=0, end=200) == [100.0, 110.0]
        assert store.scrape_times(start=0, end=200, replica="b") == [110.0]

    def test_quantile_over_time_merges_bucket_deltas(self, tmp_path):
        store = _store(tmp_path)
        types = {"lat": "histogram"}
        # Scrape 1: 1 obs <=0.1; scrape 2 adds 2 obs in (0.1, 0.2].
        store.append_scrape(
            _histogram_samples("lat", {"model": "m"}, [1, 1, 1]),
            types, at=100)
        store.append_scrape(
            _histogram_samples("lat", {"model": "m"}, [1, 3, 3]),
            types, at=110)
        merged = store.histogram_window("lat", window=20, at=110)
        assert merged["counts"] == [0.0, 2.0, 0.0]
        q50 = store.quantile_over_time("lat", 0.5, window=20, at=110)
        assert 0.1 < q50 <= 0.2
        by_model = store.quantile_over_time("lat", 0.5, window=20, at=110,
                                            by="model")
        assert set(by_model) == {"m"}
        # No histogram data at all -> None, not a crash.
        assert store.quantile_over_time("other", 0.99, window=20,
                                        at=110) is None

    def test_histogram_window_reset_across_restart(self, tmp_path):
        store = _store(tmp_path)
        types = {"lat": "histogram"}
        store.append_scrape(
            _histogram_samples("lat", {"model": "m"}, [5, 9, 9]),
            types, at=100)
        # Restart: cumulative counts fall back below the previous scrape.
        store.append_scrape(
            _histogram_samples("lat", {"model": "m"}, [1, 1, 2]),
            types, at=110)
        merged = store.histogram_window("lat", window=20, at=110)
        assert merged["counts"] == [1.0, 0.0, 1.0]


class TestSegmentsAndRetention:
    def test_records_land_in_time_bucketed_segments(self, tmp_path):
        store = _store(tmp_path)  # 60 s segments
        store.append_scrape([_counter("c_total", 1)], at=30)
        store.append_scrape([_counter("c_total", 2)], at=90)
        names = [path.name for path in store.segments()]
        assert names == ["seg-000000000000000.jsonl",
                         "seg-000000000000060.jsonl"]

    def test_sweep_retention_unlinks_old_segments(self, tmp_path):
        store = _store(tmp_path)  # retention 600 s
        store.append_scrape([_counter("c_total", 1)], at=0)
        store.append_scrape([_counter("c_total", 2)], at=1000)
        assert len(store.segments()) == 2
        removed = store.sweep_retention(now=1000)
        assert removed == 1
        assert store.window_sum("c_total", window=1000, at=1000) == 0.0

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        store = _store(tmp_path)
        for t, value in [(100, 10), (110, 14), (120, 20)]:
            store.append_scrape([_counter("req_total", value)],
                                {"req_total": "counter"}, at=t)
        segment = store.segments()[-1]
        with segment.open("a", encoding="utf-8") as handle:
            handle.write('{"t": 130, "r": "local", "k": "c", "n": "req_t')
        # A fresh store reads through the torn line without losing the
        # intact records, like JsonlResultStore.load(on_corrupt="skip").
        reopened = TelemetryStore(store.root, segment_seconds=60.0,
                                  retention=600.0)
        assert reopened.window_sum("req_total", window=30, at=130) == 10.0
        assert reopened.corrupt_lines == 1

    def test_garbage_interior_line_is_counted_and_skipped(self, tmp_path):
        store = _store(tmp_path)
        store.append_scrape([_counter("req_total", 1)], at=100)
        segment = store.segments()[-1]
        lines = segment.read_text().splitlines()
        lines.insert(1, "not json at all")
        lines.insert(2, json.dumps({"v": 1.0}))  # missing required keys
        segment.write_text("\n".join(lines) + "\n")
        reopened = TelemetryStore(store.root, segment_seconds=60.0,
                                  retention=600.0)
        assert reopened.scrape_times(start=0, end=200) == [100.0]
        assert reopened.corrupt_lines == 2

    def test_append_survives_store_reopen(self, tmp_path):
        """Raw cumulative storage means a collector restart mid-window
        changes nothing about derived increases."""
        root = tmp_path / "tsdb"
        first = TelemetryStore(root, segment_seconds=60.0, retention=600.0)
        first.append_scrape([_counter("req_total", 10)], at=100)
        second = TelemetryStore(root, segment_seconds=60.0, retention=600.0)
        second.append_scrape([_counter("req_total", 25)], at=110)
        assert second.window_sum("req_total", window=20, at=110) == 15.0


class TestInMemoryStore:
    def test_in_memory_mode_has_same_query_api(self):
        store = TelemetryStore(None, segment_seconds=60.0, retention=600.0)
        store.append_scrape([_counter("req_total", 0)], at=100)
        store.append_scrape([_counter("req_total", 7)], at=110)
        assert store.segments() == []
        assert store.window_sum("req_total", window=20, at=110) == 7.0
        assert store.sweep_retention() == 0

    def test_in_memory_mode_trims_to_retention(self):
        store = TelemetryStore(None, segment_seconds=60.0, retention=600.0)
        store.append_scrape([_counter("req_total", 1)], at=0)
        store.append_scrape([_counter("req_total", 2)], at=1000)
        assert store.scrape_times(start=0, end=2000) == [1000.0]


class TestAppendPage:
    def test_append_page_round_trips_rendered_metrics(self, tmp_path):
        store = _store(tmp_path)
        out = MetricsRenderer()
        out.counter("repro_requests_total", 5, "requests")
        out.gauge("repro_sessions_loaded", 2, "sessions")
        store.append_page(out.render(), replica="r1", at=100)
        out = MetricsRenderer()
        out.counter("repro_requests_total", 9, "requests")
        out.gauge("repro_sessions_loaded", 3, "sessions")
        store.append_page(out.render(), replica="r1", at=110)
        assert store.window_sum("repro_requests_total",
                                window=20, at=110) == 4.0
        assert store.latest("repro_sessions_loaded", at=110) == 3.0
        assert store.series_names(at=110)["repro_requests_total"] == "counter"

    def test_append_page_is_strict(self, tmp_path):
        store = _store(tmp_path)
        with pytest.raises(ValueError):
            store.append_page("this is not exposition text {{{", at=100)

    def test_bad_constructor_args(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryStore(tmp_path, segment_seconds=0)
        with pytest.raises(ValueError):
            TelemetryStore(tmp_path, segment_seconds=60, retention=30)
