"""Tests for the experiment runner, aggregation and text reporting."""

import numpy as np
import pytest

from repro.evaluation.metrics import micro_f1
from repro.evaluation.reporting import render_series, render_table
from repro.evaluation.runner import (
    ExperimentResult,
    ExperimentRunner,
    aggregate_results,
    series_from_results,
)
from repro.exceptions import ConfigurationError


class _ConstantEstimator:
    """A stub estimator predicting a constant class; records fit calls."""

    def __init__(self, constant: int = 0):
        self.constant = constant
        self.fitted_with_seed = None

    def fit(self, graph, seed=None):
        self.fitted_with_seed = seed
        return self

    def predict(self, graph, mode=None):
        return np.full(graph.num_nodes, self.constant, dtype=np.int64)


class _OracleEstimator:
    """A stub estimator that predicts the true labels."""

    def fit(self, graph, seed=None):
        self._labels = graph.labels
        return self

    def predict(self, graph):  # no ``mode`` argument on purpose
        return self._labels


class TestRunner:
    def test_runs_all_combinations(self, tiny_graph):
        runner = ExperimentRunner(repeats=2, seed=0)
        runner.register("constant", lambda eps, delta, seed: _ConstantEstimator())
        runner.register("oracle", lambda eps, delta, seed: _OracleEstimator())
        results = runner.run({"tiny": tiny_graph}, epsilons=[0.5, 1.0])
        assert len(results) == 2 * 2 * 2  # methods x epsilons x repeats

    def test_oracle_scores_one(self, tiny_graph):
        runner = ExperimentRunner(repeats=1, seed=0)
        runner.register("oracle", lambda eps, delta, seed: _OracleEstimator())
        results = runner.run({"tiny": tiny_graph}, epsilons=[1.0])
        assert results[0].micro_f1 == 1.0

    def test_constant_estimator_matches_majority_rate(self, tiny_graph):
        majority_class = np.bincount(tiny_graph.labels[tiny_graph.test_idx]).argmax()
        runner = ExperimentRunner(repeats=1, seed=0)
        runner.register("constant", lambda eps, delta, seed: _ConstantEstimator(majority_class))
        results = runner.run({"tiny": tiny_graph}, epsilons=[1.0])
        expected = micro_f1(tiny_graph.labels[tiny_graph.test_idx],
                            np.full(tiny_graph.test_idx.size, majority_class))
        assert results[0].micro_f1 == pytest.approx(expected)

    def test_duplicate_registration_rejected(self):
        runner = ExperimentRunner()
        runner.register("a", lambda e, d, s: _ConstantEstimator())
        with pytest.raises(ConfigurationError):
            runner.register("a", lambda e, d, s: _ConstantEstimator())

    def test_empty_inputs_rejected(self, tiny_graph):
        runner = ExperimentRunner()
        with pytest.raises(ConfigurationError):
            runner.run({"tiny": tiny_graph}, epsilons=[1.0])
        runner.register("a", lambda e, d, s: _ConstantEstimator())
        with pytest.raises(ConfigurationError):
            runner.run({}, epsilons=[1.0])
        with pytest.raises(ConfigurationError):
            runner.run({"tiny": tiny_graph}, epsilons=[])

    def test_invalid_constructor(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(repeats=0)
        with pytest.raises(ConfigurationError):
            ExperimentRunner(inference_mode="hybrid")


class TestAggregation:
    def _results(self):
        return [
            ExperimentResult("m", "d", 1.0, 0, 0.5),
            ExperimentResult("m", "d", 1.0, 1, 0.7),
            ExperimentResult("m", "d", 2.0, 0, 0.9),
        ]

    def test_aggregate_mean_std(self):
        aggregated = aggregate_results(self._results())
        stats = aggregated[("m", "d", 1.0)]
        assert stats["mean"] == pytest.approx(0.6)
        # Sample standard deviation (ddof=1), the paper's error-bar convention.
        assert stats["std"] == pytest.approx(np.std([0.5, 0.7], ddof=1))
        assert stats["min"] == pytest.approx(0.5)
        assert stats["max"] == pytest.approx(0.7)
        assert stats["count"] == 2

    def test_aggregate_single_repeat_has_zero_std(self):
        aggregated = aggregate_results(self._results())
        stats = aggregated[("m", "d", 2.0)]
        assert stats["std"] == 0.0
        assert stats["min"] == stats["max"] == pytest.approx(0.9)
        assert stats["count"] == 1

    def test_series_reshaping(self):
        series = series_from_results(self._results())
        assert series["d"]["m"][1.0] == pytest.approx(0.6)
        assert series["d"]["m"][2.0] == pytest.approx(0.9)


class TestReporting:
    def test_render_table_contains_cells(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        assert "T" in text and "2.5000" in text and "x" in text

    def test_render_series_layout(self):
        series = {"cora": {"GCON": {0.5: 0.7, 1.0: 0.8}, "MLP": {0.5: 0.6, 1.0: 0.6}}}
        text = render_series(series, title="Figure 1")
        assert "Figure 1" in text
        assert "[cora]" in text
        assert "GCON" in text and "MLP" in text
        assert "0.8000" in text

    def test_render_series_handles_infinite_x(self):
        series = {"cora": {"GCON": {float("inf"): 0.7, 1.0: 0.8}}}
        assert "inf" in render_series(series)
