"""Tests for the bounded LRU mapping."""

from __future__ import annotations

from repro.utils.lru import LRUDict


class TestEviction:
    def test_oldest_entry_is_evicted_past_the_cap(self):
        lru = LRUDict(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("c", 3)
        assert "a" not in lru
        assert lru.get_or_none("b") == 2
        assert lru.get_or_none("c") == 3

    def test_get_refreshes_recency(self):
        lru = LRUDict(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get_or_none("a")  # a is now most recent
        lru.put("c", 3)
        assert "a" in lru
        assert "b" not in lru


class TestGetOrCompute:
    def test_computes_once_then_caches(self):
        calls = []
        lru = LRUDict(max_entries=4)

        def compute():
            calls.append(1)
            return 42

        assert lru.get_or_compute("k", compute) == 42
        assert lru.get_or_compute("k", compute) == 42
        assert len(calls) == 1

    def test_cached_none_is_not_recomputed(self):
        """A legitimately cached None must be a hit, not a permanent miss."""
        calls = []
        lru = LRUDict(max_entries=4)

        def compute():
            calls.append(1)
            return None

        assert lru.get_or_compute("k", compute) is None
        assert lru.get_or_compute("k", compute) is None
        assert lru.get_or_compute("k", compute) is None
        assert len(calls) == 1

    def test_get_or_compute_refreshes_recency(self):
        lru = LRUDict(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get_or_compute("a", lambda: 99)  # hit: refresh, don't recompute
        lru.put("c", 3)
        assert lru.get_or_none("a") == 1
        assert "b" not in lru
