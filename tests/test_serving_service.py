"""Tests for the inference service and its HTTP JSON API.

The acceptance bar of the serving subsystem: served predictions — batched,
cache-hit and cache-miss, coalesced and singleton — are **bitwise identical**
to offline :meth:`GCON.decision_scores` on the same bundle and graph.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.exceptions import ConfigurationError
from repro.graphs.datasets import load_dataset
from repro.serving import InferenceService, ModelRegistry, serve_http


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora_ml", scale=0.06, seed=0)


@pytest.fixture(scope="module")
def model(graph):
    config = GCONConfig(epsilon=2.0, alpha=0.8, encoder_epochs=20,
                        encoder_dim=8, encoder_hidden=16)
    return GCON(config).fit(graph, seed=7)


@pytest.fixture()
def registry(tmp_path, model):
    registry = ModelRegistry(tmp_path / "reg")
    registry.publish(model, "demo", inference_mode="private",
                     training={"dataset": "cora_ml", "scale": 0.06,
                               "graph_seed": 0})
    return registry


@pytest.fixture()
def service(registry, graph):
    return InferenceService(registry, graph=graph)


class TestOfflineEquivalence:
    """Served == offline, bit for bit, miss and hit, private and public."""

    @pytest.mark.parametrize("mode", ["private", "public"])
    def test_cache_miss_then_hit_are_bitwise_offline(self, service, model,
                                                     graph, mode):
        offline = model.decision_scores(graph, mode=mode)
        nodes = [0, 9, 3, 14, 3]
        miss = service.predict_scores("demo@latest", nodes, mode=mode)
        assert np.array_equal(miss, offline[nodes])
        hit = service.predict_scores("demo@latest", nodes, mode=mode)
        assert np.array_equal(hit, offline[nodes])
        stats = service.stats()["feature_cache"]
        assert stats["feature_misses"] == 1
        assert stats["feature_hits"] == 1

    def test_singleton_request_is_bitwise_offline(self, service, model, graph):
        offline = model.decision_scores(graph, mode="private")
        for node in (0, 5, graph.num_nodes - 1):
            served = service.predict_scores("demo", [node])
            assert np.array_equal(served, offline[[node]])

    def test_predict_labels_match_offline_argmax(self, service, model, graph):
        nodes = list(range(12))
        offline = np.argmax(model.decision_scores(graph, mode="private")[nodes],
                            axis=1)
        assert np.array_equal(service.predict("demo", nodes), offline)

    def test_coalesced_batch_is_bitwise_offline(self, service, model, graph):
        """Many requests flushed as one stacked matmul score identically."""
        offline = model.decision_scores(graph, mode="private")
        tickets = [service.batcher.submit(
            service._session("demo", None)[0], [i, i + 1]) for i in range(8)]
        assert service.batcher.run_once() == 8
        assert service.batcher.stats.matmuls == 1
        for i, ticket in enumerate(tickets):
            assert np.array_equal(ticket.result(1.0), offline[[i, i + 1]])

    def test_default_mode_comes_from_the_manifest(self, service, model, graph):
        # Published with inference_mode="private": no explicit mode must
        # serve Eq. 16 scores.
        offline = model.decision_scores(graph, mode="private")
        assert np.array_equal(service.predict_scores("demo", [1, 2]),
                              offline[[1, 2]])


class TestServiceApi:
    def test_predict_proba_rows_are_distributions(self, service):
        proba = service.predict_proba("demo", [0, 1, 2])
        assert proba.shape[0] == 3
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-12)
        assert (proba >= 0).all()

    def test_top_k_is_sorted_and_bounded(self, service, model):
        top = service.top_k("demo", [0, 1], k=3)
        assert len(top) == 2
        for per_node in top:
            assert len(per_node) == min(3, model.num_classes_)
            scores = [entry["score"] for entry in per_node]
            assert scores == sorted(scores, reverse=True)

    def test_bad_request_never_reaches_a_shared_batch(self, service, graph):
        """Node validation runs before submit, so one caller's bad index can
        never fail strangers coalesced into the same micro-batch."""
        with pytest.raises(ConfigurationError, match="node indices"):
            service.predict_batch("demo", [graph.num_nodes + 1])
        assert service.batcher.stats.requests == 0  # nothing was enqueued

    def test_predict_batch_names_the_scoring_version(self, service):
        scores, record, mode = service.predict_batch("demo", [0, 1])
        assert scores.shape[0] == 2
        assert record.name == "demo"
        assert mode == "private"

    def test_bad_nodes_and_modes_rejected(self, service, graph):
        with pytest.raises(ConfigurationError, match="node indices"):
            service.predict_scores("demo", [graph.num_nodes + 5])
        with pytest.raises(ConfigurationError, match="node indices"):
            service.predict_scores("demo", [-1])
        with pytest.raises(ConfigurationError, match="mode must be"):
            service.predict_scores("demo", [0], mode="secret")
        with pytest.raises(ConfigurationError, match="not in the registry"):
            service.predict_scores("ghost", [0])

    def test_graph_rebuilds_from_manifest_when_not_injected(self, registry,
                                                            model, graph):
        service = InferenceService(registry)  # no graph= injection
        offline = model.decision_scores(graph, mode="private")
        assert np.array_equal(service.predict_scores("demo", [0, 1]),
                              offline[[0, 1]])

    def test_health_and_stats_shapes(self, service):
        service.predict("demo", [0])
        health = service.health()
        assert health["status"] == "ok"
        assert any("demo@" in ref for ref in health["models_loaded"])
        stats = service.stats()
        assert stats["batcher"]["requests"] >= 1
        assert stats["feature_cache"]["sessions"] >= 1


class TestHttpApi:
    @pytest.fixture()
    def server(self, service):
        server = serve_http(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        service.close()

    def _get(self, server, path):
        port = server.server_address[1]
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as resp:
            return resp.status, json.loads(resp.read())

    def _post(self, server, path, payload):
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as resp:
            return resp.status, json.loads(resp.read())

    def test_healthz_models_and_stats(self, server):
        status, health = self._get(server, "/healthz")
        assert (status, health["status"]) == (200, "ok")
        status, models = self._get(server, "/models")
        assert status == 200
        assert models["models"][0]["name"] == "demo"
        assert "epsilon" in models["models"][0]["privacy"]
        status, stats = self._get(server, "/stats")
        assert status == 200 and "batcher" in stats

    def test_predict_end_to_end_matches_offline(self, server, model, graph):
        nodes = [0, 4, 2, 11]
        status, body = self._post(server, "/v1/predict",
                                  {"model": "demo@latest", "nodes": nodes,
                                   "top_k": 2, "proba": True})
        assert status == 200
        offline = model.decision_scores(graph, mode="private")[nodes]
        assert body["labels"] == [int(x) for x in np.argmax(offline, axis=1)]
        # JSON round-trips float64 exactly (repr-based), so even over HTTP
        # the scores stay bitwise.
        assert np.array_equal(np.array(body["scores"]), offline)
        assert len(body["top_k"][0]) == 2
        np.testing.assert_allclose(np.array(body["proba"]).sum(axis=1), 1.0)

    def test_http_error_codes(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/v1/predict", {"model": "ghost", "nodes": [0]})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/v1/predict", {"model": "demo", "nodes": []})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/v1/predict", {"model": "demo",
                                               "nodes": ["zero"]})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/nope")
        assert excinfo.value.code == 404

    def test_concurrent_http_requests_coalesce_and_agree(self, server, service,
                                                         model, graph):
        offline = np.argmax(model.decision_scores(graph, mode="private"), axis=1)
        results: list = [None] * 12
        errors: list = []

        def query(i):
            try:
                _status, body = self._post(server, "/v1/predict",
                                           {"model": "demo", "nodes": [i]})
                results[i] = body["labels"][0]
            except Exception as error:  # pragma: no cover - diagnostics
                errors.append(error)

        threads = [threading.Thread(target=query, args=(i,)) for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results == [int(offline[i]) for i in range(12)]


@pytest.fixture(scope="module")
def other_model(graph):
    config = GCONConfig(epsilon=0.5, alpha=0.8, encoder_epochs=20,
                        encoder_dim=8, encoder_hidden=16)
    return GCON(config).fit(graph, seed=11)


class TestMultiModelRouting:
    """Two published models: own queues, own histograms, no shared budget."""

    @pytest.fixture()
    def two_model_service(self, tmp_path, model, other_model, graph):
        registry = ModelRegistry(tmp_path / "reg2")
        training = {"dataset": "cora_ml", "scale": 0.06, "graph_seed": 0}
        registry.publish(model, "alpha", inference_mode="private",
                         training=training)
        registry.publish(other_model, "beta", inference_mode="private",
                         training=training)
        return InferenceService(registry, graph=graph)

    def test_both_models_serve_bitwise_offline(self, two_model_service, model,
                                               other_model, graph):
        nodes = [0, 7, 3]
        alpha = two_model_service.predict_scores("alpha", nodes)
        beta = two_model_service.predict_scores("beta", nodes)
        assert np.array_equal(alpha,
                              model.decision_scores(graph, mode="private")[nodes])
        assert np.array_equal(
            beta, other_model.decision_scores(graph, mode="private")[nodes])
        assert two_model_service.batcher.queue_count() == 2

    def test_stats_expose_per_model_latency_histograms(self, two_model_service):
        two_model_service.predict_scores("alpha", [0, 1])
        two_model_service.predict_scores("beta", [2])
        stats = two_model_service.stats()
        labels = sorted(stats["models"])
        assert len(labels) == 2
        assert any(label.startswith("alpha@") for label in labels)
        assert any(label.startswith("beta@") for label in labels)
        for label in labels:
            per_model = stats["models"][label]
            latency = per_model["latency_ms"]
            assert latency["count"] >= 1
            assert {"p50", "p95", "p99"} <= set(latency)
            assert per_model["matmuls"] == 1
            assert {"batch_rows", "queue_depth", "max_batch_size"} <= set(per_model)

    def test_one_models_burst_does_not_consume_the_others_budget(
            self, two_model_service, other_model, graph):
        """The head-of-line bug, pinned at the service level: alpha filling
        its own batch budget leaves beta's queue untouched."""
        alpha_key, alpha_session = two_model_service._session("alpha", None)
        beta_key, _beta_session = two_model_service._session("beta", None)
        budget = two_model_service.batcher.max_batch_size
        for i in range(budget):
            two_model_service.batcher.submit(alpha_key, [i % 5])
        beta_ticket = two_model_service.batcher.submit(beta_key, [3])
        assert two_model_service.batcher.run_once() == budget + 1
        stats = two_model_service.batcher.stats
        assert stats.matmuls == 2  # one stacked matmul per model
        offline = other_model.decision_scores(graph, mode="private")
        assert np.array_equal(beta_ticket.result(1.0), offline[[3]])

    def test_session_eviction_retires_the_models_queue(self, tmp_path, model,
                                                       other_model, graph):
        """An evicted model version must not leak its queue (and, on a
        started router, its dispatch thread): the router retires it and new
        traffic recreates it on demand."""
        registry = ModelRegistry(tmp_path / "reg3")
        training = {"dataset": "cora_ml", "scale": 0.06, "graph_seed": 0}
        registry.publish(model, "alpha", inference_mode="private",
                         training=training)
        registry.publish(other_model, "beta", inference_mode="private",
                         training=training)
        service = InferenceService(registry, graph=graph, max_sessions=1)
        service.predict_scores("alpha", [0])
        assert service.batcher.queue_count() == 1
        service.predict_scores("beta", [0])  # evicts alpha's session
        assert service.batcher.queue_count() == 1  # alpha's queue retired
        # Alpha still serves (session + queue rebuilt transparently).
        offline = model.decision_scores(graph, mode="private")
        assert np.array_equal(service.predict_scores("alpha", [1]),
                              offline[[1]])

    def test_submit_batch_is_the_nonblocking_half(self, two_model_service,
                                                  model, graph):
        ticket, record, mode = two_model_service.submit_batch("alpha", [0, 4])
        assert not ticket.done()
        assert record.name == "alpha"
        assert mode == "private"
        two_model_service.batcher.run_once()
        assert ticket.done()
        offline = model.decision_scores(graph, mode="private")
        assert np.array_equal(ticket.result(0.1), offline[[0, 4]])
