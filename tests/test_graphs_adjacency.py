"""Tests for adjacency construction and normalisation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphDataError
from repro.graphs.adjacency import (
    add_edge,
    add_self_loops,
    build_adjacency,
    general_normalize,
    remove_edge,
    row_stochastic_normalize,
    symmetric_normalize,
)


class TestBuildAdjacency:
    def test_symmetric_binary(self):
        adjacency = build_adjacency(np.array([[0, 1], [1, 2]]), 4)
        dense = adjacency.toarray()
        np.testing.assert_array_equal(dense, dense.T)
        assert set(np.unique(dense)) <= {0.0, 1.0}
        assert dense[0, 1] == 1 and dense[2, 1] == 1 and dense[0, 3] == 0

    def test_duplicates_and_reverse_orientation_collapse(self):
        adjacency = build_adjacency(np.array([[0, 1], [1, 0], [0, 1]]), 3)
        assert adjacency.nnz == 2
        assert adjacency[0, 1] == 1.0

    def test_empty_edge_list(self):
        adjacency = build_adjacency(np.empty((0, 2)), 5)
        assert adjacency.shape == (5, 5)
        assert adjacency.nnz == 0

    def test_self_loop_rejected(self):
        with pytest.raises(GraphDataError):
            build_adjacency(np.array([[1, 1]]), 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphDataError):
            build_adjacency(np.array([[0, 9]]), 3)


class TestNormalisations:
    def test_row_stochastic_rows_sum_to_one(self, triangle_adjacency):
        normalized = row_stochastic_normalize(triangle_adjacency)
        np.testing.assert_allclose(np.asarray(normalized.sum(axis=1)).ravel(), np.ones(4))

    def test_row_stochastic_matches_paper_definition(self, triangle_adjacency):
        with_loops = add_self_loops(triangle_adjacency).toarray()
        degrees = with_loops.sum(axis=1)
        expected = with_loops / degrees[:, None]
        np.testing.assert_allclose(row_stochastic_normalize(triangle_adjacency).toarray(), expected)

    def test_symmetric_normalization_is_symmetric(self, triangle_adjacency):
        normalized = symmetric_normalize(triangle_adjacency).toarray()
        np.testing.assert_allclose(normalized, normalized.T)

    def test_general_normalize_special_cases(self, triangle_adjacency):
        np.testing.assert_allclose(
            general_normalize(triangle_adjacency, 0.0).toarray(),
            row_stochastic_normalize(triangle_adjacency).toarray(),
        )
        np.testing.assert_allclose(
            general_normalize(triangle_adjacency, 0.5).toarray(),
            symmetric_normalize(triangle_adjacency).toarray(),
        )

    def test_general_normalize_rejects_bad_r(self, triangle_adjacency):
        with pytest.raises(GraphDataError):
            general_normalize(triangle_adjacency, 1.5)

    def test_isolated_node_handled(self):
        adjacency = sp.csr_matrix((3, 3))
        normalized = row_stochastic_normalize(adjacency)
        # With self-loops every node has degree 1.
        np.testing.assert_allclose(normalized.toarray(), np.eye(3))


class TestEdgeEdits:
    def test_remove_then_add_round_trip(self, triangle_adjacency):
        removed = remove_edge(triangle_adjacency, 0, 1)
        assert removed[0, 1] == 0 and removed[1, 0] == 0
        restored = add_edge(removed, 0, 1)
        np.testing.assert_array_equal(restored.toarray(), triangle_adjacency.toarray())

    def test_remove_missing_edge_raises(self, triangle_adjacency):
        with pytest.raises(GraphDataError):
            remove_edge(triangle_adjacency, 0, 3)

    def test_add_existing_edge_raises(self, triangle_adjacency):
        with pytest.raises(GraphDataError):
            add_edge(triangle_adjacency, 0, 1)

    def test_self_loop_edits_rejected(self, triangle_adjacency):
        with pytest.raises(GraphDataError):
            remove_edge(triangle_adjacency, 2, 2)
        with pytest.raises(GraphDataError):
            add_edge(triangle_adjacency, 2, 2)
