"""Tests for the additional baselines: SGC, APPNP and the trivial classifiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    APPNPClassifier,
    MajorityClassClassifier,
    MLPClassifier,
    SGCClassifier,
    StratifiedRandomClassifier,
)
from repro.exceptions import ConfigurationError, NotFittedError
from repro.graphs.graph import GraphDataset


class TestSGC:
    def test_beats_majority_on_homophilous_graph(self, tiny_graph):
        sgc = SGCClassifier(hops=2, epochs=120).fit(tiny_graph, seed=0)
        majority = MajorityClassClassifier().fit(tiny_graph)
        assert sgc.score(tiny_graph) > majority.score(tiny_graph) + 0.1

    def test_zero_hops_equals_logistic_regression_on_features(self, tiny_graph):
        sgc = SGCClassifier(hops=0, epochs=60).fit(tiny_graph, seed=0)
        aggregated = sgc._aggregate(tiny_graph)
        assert np.allclose(aggregated, tiny_graph.features)

    def test_scores_have_class_dimension(self, tiny_graph):
        sgc = SGCClassifier(hops=1, epochs=30).fit(tiny_graph, seed=0)
        scores = sgc.decision_scores(tiny_graph)
        assert scores.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_requires_fit(self, tiny_graph):
        with pytest.raises(NotFittedError):
            SGCClassifier().decision_scores(tiny_graph)

    def test_rejects_negative_hops(self):
        with pytest.raises(ConfigurationError):
            SGCClassifier(hops=-1)

    def test_deterministic_given_seed(self, tiny_graph):
        first = SGCClassifier(hops=2, epochs=40).fit(tiny_graph, seed=5)
        second = SGCClassifier(hops=2, epochs=40).fit(tiny_graph, seed=5)
        assert np.allclose(first.decision_scores(tiny_graph),
                           second.decision_scores(tiny_graph))


class TestAPPNP:
    def test_beats_majority_on_homophilous_graph(self, tiny_graph):
        appnp = APPNPClassifier(hops=5, alpha=0.2, epochs=80).fit(tiny_graph, seed=0)
        majority = MajorityClassClassifier().fit(tiny_graph)
        assert appnp.score(tiny_graph) > majority.score(tiny_graph) + 0.1

    def test_alpha_one_ignores_graph(self, tiny_graph):
        """With restart probability 1 the propagation is the identity (pure MLP)."""
        appnp = APPNPClassifier(hops=3, alpha=1.0, epochs=40).fit(tiny_graph, seed=0)
        mlp_like_scores = appnp.decision_scores(tiny_graph)
        assert mlp_like_scores.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            APPNPClassifier(alpha=0.0)
        with pytest.raises(ConfigurationError):
            APPNPClassifier(hops=-2)

    def test_requires_fit(self, tiny_graph):
        with pytest.raises(NotFittedError):
            APPNPClassifier().decision_scores(tiny_graph)


class TestTrivialClassifiers:
    def test_majority_predicts_single_class(self, tiny_graph):
        majority = MajorityClassClassifier().fit(tiny_graph)
        predictions = majority.predict(tiny_graph)
        assert np.unique(predictions).size == 1
        train_labels = tiny_graph.labels[tiny_graph.train_idx]
        assert predictions[0] == np.argmax(np.bincount(train_labels))

    def test_majority_matches_empirical_frequency(self, tiny_graph):
        majority = MajorityClassClassifier().fit(tiny_graph)
        counts = np.bincount(tiny_graph.labels[tiny_graph.train_idx],
                             minlength=tiny_graph.num_classes)
        expected = counts.max() / counts.sum()
        test_labels = tiny_graph.labels[tiny_graph.test_idx]
        observed = np.mean(test_labels == majority.majority_class_)
        # Both estimate the frequency of the same class; loose agreement only.
        assert abs(observed - expected) < 0.4

    def test_majority_requires_training_split(self, path_graph):
        empty = GraphDataset(
            adjacency=path_graph.adjacency, features=path_graph.features,
            labels=path_graph.labels, name="no_train",
        )
        with pytest.raises(NotFittedError):
            MajorityClassClassifier().fit(empty)

    def test_random_classifier_uses_class_distribution(self, tiny_graph):
        random_clf = StratifiedRandomClassifier(seed=0).fit(tiny_graph)
        predictions = random_clf.predict(tiny_graph)
        assert predictions.shape == (tiny_graph.num_nodes,)
        assert set(np.unique(predictions)).issubset(set(range(tiny_graph.num_classes)))

    def test_random_classifier_is_reproducible(self, tiny_graph):
        first = StratifiedRandomClassifier(seed=3).fit(tiny_graph).predict(tiny_graph)
        second = StratifiedRandomClassifier(seed=3).fit(tiny_graph).predict(tiny_graph)
        assert np.array_equal(first, second)

    def test_trivial_floor_below_learning_methods(self, tiny_graph):
        """Sanity ordering: MLP > majority on a graph with informative features."""
        mlp = MLPClassifier(epochs=80).fit(tiny_graph, seed=0)
        majority = MajorityClassClassifier().fit(tiny_graph)
        random_clf = StratifiedRandomClassifier(seed=0).fit(tiny_graph)
        assert mlp.score(tiny_graph) > majority.score(tiny_graph)
        assert mlp.score(tiny_graph) > random_clf.score(tiny_graph)
