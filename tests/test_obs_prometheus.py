"""Tests for Prometheus exposition: render, strict parse, round-trip, and
the fleet-wide histogram merge + trace tree rendering."""

from __future__ import annotations

import pytest

from repro.obs.aggregate import (
    merge_latency_histograms,
    render_trace_list,
    render_trace_tree,
)
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRenderer,
    escape_label_value,
    format_le,
    histogram_series,
    parse_prometheus_text,
)
from repro.serving.metrics import LATENCY_BUCKETS, Histogram


def _snapshot(histogram: Histogram) -> dict:
    return histogram.snapshot()


class TestRenderer:
    def test_counter_gauge_histogram_families(self):
        out = MetricsRenderer()
        out.counter("repro_requests_total", 7, "Requests.")
        out.gauge("repro_sessions_loaded", 2, "Sessions.")
        hist = Histogram(bounds=(0.01, 0.1))
        hist.observe(0.005)
        hist.observe(0.5)
        out.histogram("repro_latency_seconds", _snapshot(hist), "Latency.",
                      {"model": "demo"})
        text = out.render()
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_sessions_loaded gauge" in text
        assert "# TYPE repro_latency_seconds histogram" in text
        # Cumulative buckets end at +Inf == _count.
        assert 'le="+Inf"} 2' in text
        assert "repro_latency_seconds_count{model=\"demo\"} 2" in text

    def test_help_type_emitted_once_per_family(self):
        out = MetricsRenderer()
        out.counter("repro_x_total", 1, "X.", {"model": "a"})
        out.counter("repro_x_total", 2, "X.", {"model": "b"})
        text = out.render()
        assert text.count("# HELP repro_x_total") == 1
        assert text.count("# TYPE repro_x_total") == 1

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRenderer().counter("bad name", 1, "nope")

    def test_label_escaping_round_trips(self):
        tricky = 'demo"with\\quotes\nand newline'
        assert '"' not in escape_label_value(tricky).replace('\\"', "")
        out = MetricsRenderer()
        out.counter("repro_x_total", 1, "X.", {"model": tricky})
        samples = parse_prometheus_text(out.render())
        assert samples == [("repro_x_total", {"model": tricky}, 1.0)]

    def test_format_le_round_trips_through_float(self):
        for edge in LATENCY_BUCKETS:
            assert float(format_le(edge)) == edge

    def test_content_type_names_the_exposition_version(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestParser:
    def test_parses_values_and_labels(self):
        samples = parse_prometheus_text(
            "# HELP x X.\n# TYPE x counter\n"
            'x{a="1",b="two"} 3\n'
            "y 4.5\n\n")
        assert samples == [("x", {"a": "1", "b": "two"}, 3.0),
                          ("y", {}, 4.5)]

    @pytest.mark.parametrize("bad", [
        "x{unterminated 3",
        "x{a=unquoted} 3",
        "just some words here",
        "x notanumber",
    ])
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_histogram_series_decumulates(self):
        hist = Histogram(bounds=(0.01, 0.1))
        for value in (0.005, 0.05, 0.05, 5.0):
            hist.observe(value)
        out = MetricsRenderer()
        out.histogram("m", _snapshot(hist), "M.", {"model": "demo"})
        series = histogram_series(parse_prometheus_text(out.render()), "m")
        (key, data), = series.items()
        assert dict(key) == {"model": "demo"}
        assert data["bounds"] == [0.01, 0.1]
        assert data["counts"] == [1, 2, 1]  # raw again, overflow included
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(5.105)

    def test_histogram_series_requires_inf_and_monotonicity(self):
        with pytest.raises(ValueError, match=r"\+Inf"):
            histogram_series([("m_bucket", {"le": "0.1"}, 1.0)], "m")
        with pytest.raises(ValueError, match="non-monotone"):
            histogram_series([("m_bucket", {"le": "0.1"}, 5.0),
                              ("m_bucket", {"le": "+Inf"}, 3.0)], "m")


class TestServerPage:
    def test_render_server_metrics_parses_clean(self):
        """The renderer's full page is valid exposition text end to end,
        even against a stub service that never saw traffic."""
        from repro.obs.prometheus import render_server_metrics
        from repro.obs.trace import Tracer
        from repro.serving.metrics import ServingMetrics

        class _Stats:
            requests = rows_requested = batches = 0
            matmuls = coalesced_requests = 0

        class _Batcher:
            metrics = ServingMetrics()
            stats = _Stats()

        class _Service:
            metrics = _Batcher.metrics
            batcher = _Batcher()
            shed_counts = {}
            cache_stats = {"feature_hits": 3, "feature_misses": 1}
            started_at = 0.0

            @staticmethod
            def loaded_digests():
                return ["d" * 64]

        service = _Service()
        service.metrics.observe_queue_depth("demo", 4)
        tracer = Tracer()
        with tracer.span("predict"):
            pass
        text = render_server_metrics(service, tracer=tracer)
        samples = parse_prometheus_text(text)
        names = {name for name, _labels, _value in samples}
        assert "repro_requests_total" in names
        assert "repro_feature_cache_hits_total" in names
        assert "repro_uptime_seconds" in names
        assert "repro_stage_duration_seconds_bucket" in names
        assert "repro_traces_active" in names
        # Families are contiguous blocks: each family header appears once.
        assert text.count("# TYPE repro_queue_depth histogram") == 1


class TestFleetMerge:
    def _page(self, values, model="demo"):
        hist = Histogram(LATENCY_BUCKETS)
        for value in values:
            hist.observe(value)
        out = MetricsRenderer()
        out.histogram("repro_request_latency_seconds", _snapshot(hist),
                      "Latency.", {"model": model})
        return parse_prometheus_text(out.render())

    def test_merge_across_replicas_is_exact(self):
        values = [0.001 * (i + 1) for i in range(100)]
        left = self._page(values[::2])
        right = self._page(values[1::2])
        merged, replicas = merge_latency_histograms([left, right])
        assert replicas == {"demo": 2}
        whole = Histogram(LATENCY_BUCKETS)
        for value in values:
            whole.observe(value)
        assert merged["demo"].counts == whole.counts
        assert merged["demo"].count == 100
        for q in (0.5, 0.95, 0.99):
            assert whole.quantile(q) / 1.5 <= merged["demo"].quantile(q) \
                <= whole.quantile(q) * 1.5

    def test_models_stay_separate(self):
        merged, replicas = merge_latency_histograms(
            [self._page([0.001], model="a"), self._page([1.0], model="b")])
        assert set(merged) == {"a", "b"}
        assert replicas == {"a": 1, "b": 1}

    def test_mismatched_bounds_refuse_to_merge(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.observe(1.5)
        out = MetricsRenderer()
        out.histogram("repro_request_latency_seconds", _snapshot(hist),
                      "L.", {"model": "demo"})
        odd = parse_prometheus_text(out.render())
        with pytest.raises(ValueError, match="bucket bounds disagree"):
            merge_latency_histograms([self._page([0.1]), odd])


class TestTraceRendering:
    def test_tree_nests_by_parent_links(self):
        spans = [
            {"trace_id": "t" * 32, "span_id": "root0000root0000",
             "parent_id": None, "name": "predict", "start_ns": 1,
             "duration_ms": 5.0, "status": "ok",
             "attrs": {"model": "demo"}},
            {"trace_id": "t" * 32, "span_id": "child000child000",
             "parent_id": "root0000root0000", "name": "compute",
             "start_ns": 2, "duration_ms": 3.0, "status": "ok",
             "attrs": {"rows": 4}},
            {"trace_id": "t" * 32, "span_id": "orphan00orphan00",
             "parent_id": "missing0missing0", "name": "remote",
             "start_ns": 3, "duration_ms": 1.0, "status": "error",
             "attrs": {}},
        ]
        text = render_trace_tree(spans)
        lines = text.splitlines()
        assert "3 spans" in lines[0]
        predict = next(line for line in lines if "predict" in line)
        compute = next(line for line in lines if "compute" in line)
        assert "model=demo" in predict
        assert "rows=4" in compute
        # The child is indented under its parent; the orphan is promoted
        # to a root and carries its non-ok status.
        assert compute.index("compute") > predict.index("predict")
        assert "[error]" in next(line for line in lines if "remote" in line)

    def test_empty_inputs_have_friendly_renderings(self):
        assert render_trace_tree([]) == "trace has no spans"
        assert render_trace_list([]) == "no traces recorded"

    def test_list_renders_rows_and_errors(self):
        text = render_trace_list([
            {"server": "http://a", "trace_id": "t1", "root": "predict",
             "span_count": 3, "duration_ms": 1.25},
            {"server": "http://b", "error": "connection refused"},
        ])
        assert "t1" in text and "predict" in text and "http://a" in text
        assert "!! http://b: connection refused" in text


class TestExternalSeries:
    def test_external_families_render_and_parse(self):
        """Series published via ServingMetrics.set_series (the SLO error
        budget) appear on the page with their declared TYPE."""
        from repro.obs.prometheus import render_server_metrics
        from repro.serving.metrics import ServingMetrics

        class _Stats:
            requests = rows_requested = batches = 0
            matmuls = coalesced_requests = 0

        class _Batcher:
            metrics = ServingMetrics()
            stats = _Stats()

        class _Service:
            metrics = _Batcher.metrics
            batcher = _Batcher()
            shed_counts = {}
            cache_stats = {}
            started_at = 0.0

            @staticmethod
            def loaded_digests():
                return []

        service = _Service()
        service.metrics.set_series(
            "repro_slo_good_requests_total", 42, kind="counter",
            labels={"model": "m"}, help_text="good")
        service.metrics.set_series(
            "repro_slo_burn_rate", 1.5, labels={"model": "m"},
            help_text="burn")
        text = render_server_metrics(service)
        samples = {(name, tuple(sorted(labels.items()))): value
                   for name, labels, value in parse_prometheus_text(text)}
        key = (("model", "m"),)
        assert samples[("repro_slo_good_requests_total", key)] == 42.0
        assert samples[("repro_slo_burn_rate", key)] == 1.5
        assert "# TYPE repro_slo_good_requests_total counter" in text
        assert "# TYPE repro_slo_burn_rate gauge" in text

    def test_set_series_rejects_bad_kind(self):
        from repro.serving.metrics import ServingMetrics
        with pytest.raises(ValueError, match="kind"):
            ServingMetrics().set_series("x", 1, kind="summary")


class TestSloBudgetMerge:
    def test_merge_slo_budgets_sums_replicas(self):
        from repro.obs.aggregate import merge_slo_budgets

        def _page(good, bad):
            return [("repro_slo_good_requests_total", {"model": "m"}, good),
                    ("repro_slo_bad_requests_total", {"model": "m"}, bad),
                    ("repro_slo_objective_ratio", {}, 0.99),
                    ("repro_slo_target_p99_seconds", {}, 0.05)]

        budgets = merge_slo_budgets([_page(90.0, 10.0), _page(99.0, 1.0)])
        assert set(budgets) == {"m"}
        merged = budgets["m"]
        assert merged["good"] == 189.0
        assert merged["bad"] == 11.0
        assert merged["attainment"] == pytest.approx(189.0 / 200.0)
        # error rate 5.5% against a 1% allowance: 5.5x budget
        assert merged["budget_used"] == pytest.approx(5.5)
        assert merged["target_p99_seconds"] == 0.05

    def test_merge_slo_budgets_empty_without_controller(self):
        from repro.obs.aggregate import merge_slo_budgets
        assert merge_slo_budgets([[("repro_requests_total", {}, 5.0)]]) == {}
