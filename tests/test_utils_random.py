"""Tests for repro.utils.random."""

import numpy as np
import pytest

from repro.utils.random import as_rng, spawn_rngs


class TestAsRng:
    def test_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert as_rng(42).integers(0, 1000) == as_rng(42).integers(0, 1000)

    def test_different_seeds_differ(self):
        draws_a = as_rng(1).integers(0, 2**31, size=10)
        draws_b = as_rng(2).integers(0, 2**31, size=10)
        assert not np.array_equal(draws_a, draws_b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 2**31, size=20)
        b = children[1].integers(0, 2**31, size=20)
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        first = [g.integers(0, 2**31) for g in spawn_rngs(3, 3)]
        second = [g.integers(0, 2**31) for g in spawn_rngs(3, 3)]
        assert first == second

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []
