"""Tests for the resumable JSONL result store."""

from __future__ import annotations

import math

import pytest

from repro.runtime.cells import ExperimentResult, result_key
from repro.runtime.store import JsonlResultStore, merge_stores


def _result(method="GCON", dataset="cora_ml", epsilon=1.0, repeat=0, score=0.5):
    return ExperimentResult(method=method, dataset=dataset, epsilon=epsilon,
                            repeat=repeat, micro_f1=score)


class TestRoundTrip:
    def test_append_then_load(self, tmp_path):
        store = JsonlResultStore(tmp_path / "results.jsonl")
        store.append(_result(score=0.5))
        store.append(_result(epsilon=2.0, repeat=1, score=0.75))
        store.close()
        loaded = JsonlResultStore(tmp_path / "results.jsonl").load()
        assert len(loaded) == 2
        assert loaded[0].micro_f1 == 0.5
        assert loaded[1].epsilon == 2.0
        assert loaded[1].repeat == 1

    def test_infinite_epsilon_round_trips(self, tmp_path):
        store = JsonlResultStore(tmp_path / "results.jsonl")
        store.append(_result(epsilon=math.inf))
        store.close()
        loaded = store.load()
        assert loaded[0].epsilon == math.inf

    def test_missing_file_loads_empty(self, tmp_path):
        assert JsonlResultStore(tmp_path / "absent.jsonl").load() == []

    def test_completed_keys(self, tmp_path):
        store = JsonlResultStore(tmp_path / "results.jsonl")
        store.append(_result(epsilon=1.0))
        store.append(_result(epsilon=2.0))
        store.close()
        assert store.completed_keys() == {
            ("GCON", "cora_ml", 1.0, 0),
            ("GCON", "cora_ml", 2.0, 0),
        }


class TestPartialWrites:
    def test_truncated_tail_is_tolerated_and_repaired(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = JsonlResultStore(path)
        store.append(_result(score=0.5))
        store.append(_result(epsilon=2.0, score=0.9))
        store.close()
        # Simulate a crash mid-append: half a JSON object on the last line.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"method": "GCON", "data')
        loaded = store.load()
        assert [r.epsilon for r in loaded] == [1.0, 2.0]
        # The partial line was truncated away, so appending stays well-formed.
        store.append(_result(epsilon=3.0, score=0.7))
        store.close()
        assert [r.epsilon for r in store.load()] == [1.0, 2.0, 3.0]

    def test_truncated_tail_warns_and_never_double_counts_on_resume(self, tmp_path):
        """A resume over a crash-truncated store must warn about the dropped
        record, recompute exactly that cell and count the intact ones once."""
        path = tmp_path / "results.jsonl"
        store = JsonlResultStore(path)
        store.append(_result(epsilon=1.0, score=0.5))
        store.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"method": "GCON", "dataset": "cora_ml", "eps')
        with pytest.warns(RuntimeWarning, match="truncated trailing record"):
            loaded = store.load()
        assert [r.epsilon for r in loaded] == [1.0]
        # The resume path sees exactly the intact cell as completed ...
        assert store.completed_keys() == {("GCON", "cora_ml", 1.0, 0)}
        # ... and a recompute-and-append of the dropped cell yields each cell
        # exactly once (no double-counting, no lost record).
        store.append(_result(epsilon=2.0, score=0.9))
        store.close()
        assert sorted(r.epsilon for r in store.load()) == [1.0, 2.0]
        assert len(store.completed_keys()) == 2

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = JsonlResultStore(path)
        store.append(_result(score=0.5))
        store.close()
        text = path.read_text()
        path.write_text("not json at all\n" + text)
        with pytest.raises(ValueError, match="corrupt record"):
            store.load()

    def test_tolerant_mode_skips_corrupt_interior_line_and_warns(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = JsonlResultStore(path)
        store.append(_result(epsilon=1.0, score=0.5))
        store.append(_result(epsilon=2.0, score=0.9))
        store.close()
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\nnot json at all\n" + lines[1] + "\n")
        with pytest.warns(RuntimeWarning, match="skipping corrupt record"):
            loaded = store.load(on_corrupt="skip")
        assert [r.epsilon for r in loaded] == [1.0, 2.0]
        assert store.last_skipped_lines == 1
        # The file is left untouched so the corruption stays inspectable.
        assert "not json at all" in path.read_text()

    def test_tolerant_mode_still_repairs_a_truncated_tail(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = JsonlResultStore(path)
        store.append(_result(epsilon=1.0))
        store.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"method": "GCON", "data')
        with pytest.warns(RuntimeWarning, match="truncated trailing record"):
            loaded = store.load(on_corrupt="skip")
        assert [r.epsilon for r in loaded] == [1.0]
        assert store.last_skipped_lines == 0

    def test_invalid_on_corrupt_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="on_corrupt"):
            JsonlResultStore(tmp_path / "results.jsonl").load(on_corrupt="ignore")

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = JsonlResultStore(path)
        store.append(_result())
        store.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        store.append(_result(epsilon=4.0))
        store.close()
        assert len(store.load()) == 2

    def test_missing_trailing_newline_does_not_glue_records(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = JsonlResultStore(path)
        store.append(_result(score=0.5))
        store.close()
        # Simulate a crash that persisted the record but not its newline.
        with open(path, "rb+") as handle:
            handle.seek(-1, 2)
            handle.truncate()
        store.append(_result(epsilon=2.0, score=0.9))
        store.close()
        loaded = store.load()
        assert [r.epsilon for r in loaded] == [1.0, 2.0]


class TestMergeStores:
    def _shard(self, tmp_path, name, results):
        path = tmp_path / name
        store = JsonlResultStore(path)
        for result in results:
            store.append(result)
        store.close()
        return path

    def test_merge_dedupes_identical_records_across_shards(self, tmp_path):
        a = _result(epsilon=1.0, score=0.5)
        b = _result(epsilon=2.0, score=0.9)
        shard1 = self._shard(tmp_path, "s1.jsonl", [a, b])
        shard2 = self._shard(tmp_path, "s2.jsonl", [b])  # re-leased group
        output = tmp_path / "merged.jsonl"
        report = merge_stores([shard1, shard2], output)
        assert report.records == 2
        assert report.duplicates == 1
        assert report.shards == 2
        loaded = JsonlResultStore(output).load()
        assert sorted(r.epsilon for r in loaded) == [1.0, 2.0]

    def test_conflicting_duplicates_raise(self, tmp_path):
        shard1 = self._shard(tmp_path, "s1.jsonl", [_result(score=0.5)])
        shard2 = self._shard(tmp_path, "s2.jsonl", [_result(score=0.6)])
        with pytest.raises(ValueError, match="conflicting duplicate"):
            merge_stores([shard1, shard2], tmp_path / "merged.jsonl")

    def test_context_digest_rejects_foreign_shards(self, tmp_path):
        ours = ExperimentResult("GCON", "cora_ml", 1.0, 0, 0.5,
                                extra={"sweep_context": "abc"})
        foreign = ExperimentResult("GCON", "cora_ml", 2.0, 0, 0.5,
                                   extra={"sweep_context": "zzz"})
        shard1 = self._shard(tmp_path, "s1.jsonl", [ours])
        shard2 = self._shard(tmp_path, "s2.jsonl", [foreign])
        with pytest.raises(ValueError, match="different sweep configuration"):
            merge_stores([shard1, shard2], tmp_path / "merged.jsonl",
                         context_digest="abc")

    def test_expected_keys_pin_completeness_and_order(self, tmp_path):
        a = _result(epsilon=1.0)
        b = _result(epsilon=2.0)
        shard = self._shard(tmp_path, "s1.jsonl", [b, a])  # shard order reversed
        output = tmp_path / "merged.jsonl"
        merge_stores([shard], output,
                     expected_keys=[result_key(a), result_key(b)])
        assert [r.epsilon for r in JsonlResultStore(output).load()] == [1.0, 2.0]

        with pytest.raises(ValueError, match="missing"):
            merge_stores([shard], output,
                         expected_keys=[result_key(a), result_key(b),
                                        ("GCON", "cora_ml", 4.0, 0)])
        with pytest.raises(ValueError, match="outside the sweep"):
            merge_stores([shard], output, expected_keys=[result_key(a)])

    def test_empty_shard_warns_and_is_reported(self, tmp_path):
        """A worker that published nothing must be visible, not silently
        folded into a smaller merge."""
        shard1 = self._shard(tmp_path, "s1.jsonl", [_result(epsilon=1.0)])
        empty = tmp_path / "s2.jsonl"
        empty.write_text("")
        output = tmp_path / "merged.jsonl"
        with pytest.warns(RuntimeWarning, match="contributed no records"):
            report = merge_stores([shard1, empty], output)
        assert report.records == 1
        assert report.empty_shards == (empty,)
        assert "1 empty shard(s)" in report.summary()
        assert "s2.jsonl" in report.summary()

    def test_missing_shard_counts_as_empty(self, tmp_path):
        shard1 = self._shard(tmp_path, "s1.jsonl", [_result(epsilon=1.0)])
        missing = tmp_path / "never-published.jsonl"
        with pytest.warns(RuntimeWarning, match="contributed no records"):
            report = merge_stores([shard1, missing], tmp_path / "merged.jsonl")
        assert report.empty_shards == (missing,)

    def test_clean_merge_reports_no_empty_shards(self, tmp_path):
        shard1 = self._shard(tmp_path, "s1.jsonl", [_result(epsilon=1.0)])
        report = merge_stores([shard1], tmp_path / "merged.jsonl")
        assert report.empty_shards == ()
        assert "empty shard" not in report.summary()

    def test_tolerant_merge_survives_a_corrupt_interior_line(self, tmp_path):
        shard1 = self._shard(tmp_path, "s1.jsonl",
                             [_result(epsilon=1.0), _result(epsilon=2.0)])
        lines = shard1.read_text().splitlines()
        shard1.write_text(lines[0] + "\ngarbage\n" + lines[1] + "\n")
        output = tmp_path / "merged.jsonl"
        with pytest.warns(RuntimeWarning, match="skipping corrupt record"):
            report = merge_stores([shard1], output)
        assert report.skipped_lines == 1
        assert report.records == 2
        with pytest.raises(ValueError, match="corrupt record"):
            merge_stores([shard1], output, tolerant=False)


class TestBestRecord:
    """Winner selection behind ``repro publish``."""

    def _records(self):
        return [
            _result(method="GCON", epsilon=0.5, score=0.60),
            _result(method="GCON", epsilon=2.0, score=0.72),
            _result(method="MLP", epsilon=0.5, score=0.80),
            _result(method="GCON", dataset="citeseer", epsilon=2.0, score=0.95),
        ]

    def test_unfiltered_winner_is_global_max(self):
        from repro.runtime.store import best_record

        winner = best_record(self._records())
        assert (winner.method, winner.dataset, winner.micro_f1) == \
            ("GCON", "citeseer", 0.95)

    def test_filters_restrict_the_pool(self):
        from repro.runtime.store import best_record

        winner = best_record(self._records(), method="GCON", dataset="cora_ml")
        assert (winner.epsilon, winner.micro_f1) == (2.0, 0.72)
        winner = best_record(self._records(), method="GCON", epsilon=0.5)
        assert winner.micro_f1 == 0.60

    def test_ties_keep_the_earliest_record(self):
        from repro.runtime.store import best_record

        records = [_result(epsilon=1.0, score=0.7), _result(epsilon=2.0, score=0.7)]
        assert best_record(records).epsilon == 1.0

    def test_no_match_raises(self):
        from repro.runtime.store import best_record

        with pytest.raises(ValueError, match="no records match"):
            best_record(self._records(), method="GAT")
