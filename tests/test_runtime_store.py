"""Tests for the resumable JSONL result store."""

from __future__ import annotations

import math

import pytest

from repro.runtime.cells import ExperimentResult
from repro.runtime.store import JsonlResultStore


def _result(method="GCON", dataset="cora_ml", epsilon=1.0, repeat=0, score=0.5):
    return ExperimentResult(method=method, dataset=dataset, epsilon=epsilon,
                            repeat=repeat, micro_f1=score)


class TestRoundTrip:
    def test_append_then_load(self, tmp_path):
        store = JsonlResultStore(tmp_path / "results.jsonl")
        store.append(_result(score=0.5))
        store.append(_result(epsilon=2.0, repeat=1, score=0.75))
        store.close()
        loaded = JsonlResultStore(tmp_path / "results.jsonl").load()
        assert len(loaded) == 2
        assert loaded[0].micro_f1 == 0.5
        assert loaded[1].epsilon == 2.0
        assert loaded[1].repeat == 1

    def test_infinite_epsilon_round_trips(self, tmp_path):
        store = JsonlResultStore(tmp_path / "results.jsonl")
        store.append(_result(epsilon=math.inf))
        store.close()
        loaded = store.load()
        assert loaded[0].epsilon == math.inf

    def test_missing_file_loads_empty(self, tmp_path):
        assert JsonlResultStore(tmp_path / "absent.jsonl").load() == []

    def test_completed_keys(self, tmp_path):
        store = JsonlResultStore(tmp_path / "results.jsonl")
        store.append(_result(epsilon=1.0))
        store.append(_result(epsilon=2.0))
        store.close()
        assert store.completed_keys() == {
            ("GCON", "cora_ml", 1.0, 0),
            ("GCON", "cora_ml", 2.0, 0),
        }


class TestPartialWrites:
    def test_truncated_tail_is_tolerated_and_repaired(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = JsonlResultStore(path)
        store.append(_result(score=0.5))
        store.append(_result(epsilon=2.0, score=0.9))
        store.close()
        # Simulate a crash mid-append: half a JSON object on the last line.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"method": "GCON", "data')
        loaded = store.load()
        assert [r.epsilon for r in loaded] == [1.0, 2.0]
        # The partial line was truncated away, so appending stays well-formed.
        store.append(_result(epsilon=3.0, score=0.7))
        store.close()
        assert [r.epsilon for r in store.load()] == [1.0, 2.0, 3.0]

    def test_truncated_tail_warns_and_never_double_counts_on_resume(self, tmp_path):
        """A resume over a crash-truncated store must warn about the dropped
        record, recompute exactly that cell and count the intact ones once."""
        path = tmp_path / "results.jsonl"
        store = JsonlResultStore(path)
        store.append(_result(epsilon=1.0, score=0.5))
        store.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"method": "GCON", "dataset": "cora_ml", "eps')
        with pytest.warns(RuntimeWarning, match="truncated trailing record"):
            loaded = store.load()
        assert [r.epsilon for r in loaded] == [1.0]
        # The resume path sees exactly the intact cell as completed ...
        assert store.completed_keys() == {("GCON", "cora_ml", 1.0, 0)}
        # ... and a recompute-and-append of the dropped cell yields each cell
        # exactly once (no double-counting, no lost record).
        store.append(_result(epsilon=2.0, score=0.9))
        store.close()
        assert sorted(r.epsilon for r in store.load()) == [1.0, 2.0]
        assert len(store.completed_keys()) == 2

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = JsonlResultStore(path)
        store.append(_result(score=0.5))
        store.close()
        text = path.read_text()
        path.write_text("not json at all\n" + text)
        with pytest.raises(ValueError, match="corrupt record"):
            store.load()

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = JsonlResultStore(path)
        store.append(_result())
        store.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        store.append(_result(epsilon=4.0))
        store.close()
        assert len(store.load()) == 2

    def test_missing_trailing_newline_does_not_glue_records(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = JsonlResultStore(path)
        store.append(_result(score=0.5))
        store.close()
        # Simulate a crash that persisted the record but not its newline.
        with open(path, "rb+") as handle:
            handle.seek(-1, 2)
            handle.truncate()
        store.append(_result(epsilon=2.0, score=0.9))
        store.close()
        loaded = store.load()
        assert [r.epsilon for r in loaded] == [1.0, 2.0]
