"""Tests for the non-private baselines (MLP and GCN) and the shared interface."""

import numpy as np
import pytest

from repro.baselines import GCNClassifier, MLPClassifier
from repro.baselines.base import BaseNodeClassifier, resolve_delta
from repro.exceptions import NotFittedError


class TestBaseInterface:
    def test_resolve_delta_defaults_to_inverse_edges(self, tiny_graph):
        assert resolve_delta(tiny_graph, None) == pytest.approx(1.0 / tiny_graph.num_edges)
        assert resolve_delta(tiny_graph, 1e-3) == 1e-3

    def test_base_class_is_abstract(self, tiny_graph):
        with pytest.raises(NotImplementedError):
            BaseNodeClassifier().fit(tiny_graph)


class TestMLPClassifier:
    def test_fit_predict_shapes(self, tiny_graph):
        model = MLPClassifier(hidden_dim=16, epochs=60).fit(tiny_graph, seed=0)
        predictions = model.predict(tiny_graph)
        assert predictions.shape == (tiny_graph.num_nodes,)

    def test_beats_chance(self, tiny_graph):
        model = MLPClassifier(hidden_dim=32, epochs=120).fit(tiny_graph, seed=0)
        assert model.score(tiny_graph) > 1.5 / tiny_graph.num_classes

    def test_mode_argument_ignored(self, tiny_graph):
        model = MLPClassifier(hidden_dim=16, epochs=30).fit(tiny_graph, seed=0)
        np.testing.assert_array_equal(model.predict(tiny_graph, mode="private"),
                                      model.predict(tiny_graph))

    def test_training_loss_decreases(self, tiny_graph):
        model = MLPClassifier(hidden_dim=16, epochs=60).fit(tiny_graph, seed=0)
        assert model.history_[-1] < model.history_[0]

    def test_unfitted_raises(self, tiny_graph):
        with pytest.raises(NotFittedError):
            MLPClassifier().decision_scores(tiny_graph)


class TestGCNClassifier:
    def test_fit_predict_shapes(self, tiny_graph):
        model = GCNClassifier(hidden_dim=16, epochs=60).fit(tiny_graph, seed=0)
        scores = model.decision_scores(tiny_graph)
        assert scores.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_beats_chance_on_homophilous_graph(self, tiny_graph):
        model = GCNClassifier(hidden_dim=16, epochs=120).fit(tiny_graph, seed=0)
        assert model.score(tiny_graph) > 1.5 / tiny_graph.num_classes

    def test_gcn_uses_graph_structure(self, tiny_graph):
        """Predictions must change when the graph's edges change."""
        model = GCNClassifier(hidden_dim=16, epochs=60).fit(tiny_graph, seed=0)
        edges = tiny_graph.edges()
        pruned = tiny_graph
        for u, v in edges[:30]:
            pruned = pruned.without_edge(int(u), int(v))
        assert not np.allclose(model.decision_scores(tiny_graph),
                               model.decision_scores(pruned))

    def test_graph_helps_over_mlp_on_homophilous_data(self, tiny_graph):
        """On a homophilous graph with weak features, the GCN should not be worse."""
        gcn = GCNClassifier(hidden_dim=16, epochs=120).fit(tiny_graph, seed=0)
        mlp = MLPClassifier(hidden_dim=16, epochs=120).fit(tiny_graph, seed=0)
        assert gcn.score(tiny_graph) >= mlp.score(tiny_graph) - 0.1
