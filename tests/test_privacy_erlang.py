"""Tests for the Erlang-radius spherical noise sampler (Algorithm 2)."""

import numpy as np
import pytest
from scipy import integrate

from repro.exceptions import ConfigurationError
from repro.privacy.erlang import erlang_pdf, sample_erlang_radius, sample_sphere_noise


class TestErlangPdf:
    def test_integrates_to_one(self):
        for dimension, beta in ((3, 1.0), (8, 2.5), (16, 0.7)):
            total, _ = integrate.quad(lambda x: erlang_pdf(np.array([x]), dimension, beta)[0],
                                      0, np.inf, limit=200)
            assert total == pytest.approx(1.0, rel=1e-6)

    def test_zero_for_negative_inputs(self):
        assert erlang_pdf(np.array([-1.0, 0.0]), 4, 1.0).tolist() == [0.0, 0.0]

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            erlang_pdf(np.array([1.0]), 0, 1.0)
        with pytest.raises(ConfigurationError):
            erlang_pdf(np.array([1.0]), 4, 0.0)


class TestErlangSampling:
    def test_mean_and_variance(self):
        dimension, beta = 12, 3.0
        samples = sample_erlang_radius(dimension, beta, rng=0, size=200_000)
        assert samples.mean() == pytest.approx(dimension / beta, rel=0.02)
        assert samples.var() == pytest.approx(dimension / beta**2, rel=0.05)

    def test_all_positive(self):
        samples = sample_erlang_radius(5, 1.0, rng=0, size=1000)
        assert np.all(samples > 0)


class TestSphereNoise:
    def test_shape(self):
        noise = sample_sphere_noise(8, 2.0, num_columns=5, rng=0)
        assert noise.shape == (8, 5)

    def test_radius_distribution(self):
        dimension, beta = 10, 2.0
        noise = sample_sphere_noise(dimension, beta, num_columns=100_000, rng=0)
        radii = np.linalg.norm(noise, axis=0)
        assert radii.mean() == pytest.approx(dimension / beta, rel=0.02)

    def test_direction_is_uniform(self):
        # The mean direction of a uniform spherical distribution is zero, and
        # each coordinate carries 1/d of the squared radius in expectation.
        dimension, beta = 6, 1.0
        noise = sample_sphere_noise(dimension, beta, num_columns=100_000, rng=1)
        directions = noise / np.linalg.norm(noise, axis=0, keepdims=True)
        assert np.abs(directions.mean(axis=1)).max() < 0.02
        np.testing.assert_allclose((directions ** 2).mean(axis=1), np.full(dimension, 1 / dimension),
                                   atol=0.01)

    def test_columns_are_independent(self):
        noise = sample_sphere_noise(4, 1.0, num_columns=2, rng=0)
        assert not np.allclose(noise[:, 0], noise[:, 1])

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            sample_sphere_noise(4, 1.0, num_columns=0)
        with pytest.raises(ConfigurationError):
            sample_sphere_noise(4, -1.0, num_columns=1)
