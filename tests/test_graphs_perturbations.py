"""Tests for neighbouring-graph sampling and bulk edge perturbations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphDataError
from repro.graphs.adjacency import build_adjacency
from repro.graphs.graph import GraphDataset
from repro.graphs.perturbations import (
    add_random_edges,
    edge_flip_distance,
    iter_neighboring_pairs,
    remove_random_edges,
    rewire_edges,
    sample_absent_edge,
    sample_neighboring_pair,
    sample_present_edge,
)


class TestEdgeSampling:
    def test_present_edge_exists(self, tiny_graph, rng):
        u, v = sample_present_edge(tiny_graph, rng)
        assert u < v
        assert tiny_graph.adjacency[u, v] == 1

    def test_absent_edge_does_not_exist(self, tiny_graph, rng):
        u, v = sample_absent_edge(tiny_graph, rng)
        assert u < v
        assert tiny_graph.adjacency[u, v] == 0

    def test_absent_edge_rejects_complete_graph(self):
        edges = np.array([[0, 1], [0, 2], [1, 2]])
        graph = GraphDataset(adjacency=build_adjacency(edges, 3), features=np.eye(3),
                             labels=np.zeros(3, dtype=int))
        with pytest.raises(GraphDataError):
            sample_absent_edge(graph, rng=0)

    def test_present_edge_rejects_empty_graph(self):
        graph = GraphDataset(adjacency=np.zeros((4, 4)), features=np.eye(4),
                             labels=np.zeros(4, dtype=int))
        with pytest.raises(GraphDataError):
            sample_present_edge(graph, rng=0)

    def test_absent_edge_rejects_single_node_graph(self):
        graph = GraphDataset(adjacency=np.zeros((1, 1)), features=np.eye(1),
                             labels=np.zeros(1, dtype=int))
        with pytest.raises(GraphDataError, match="at least two nodes"):
            sample_absent_edge(graph, rng=0)

    def test_absent_edge_on_edgeless_graph_is_fine(self):
        graph = GraphDataset(adjacency=np.zeros((4, 4)), features=np.eye(4),
                             labels=np.zeros(4, dtype=int))
        u, v = sample_absent_edge(graph, rng=0)
        assert 0 <= u < v < 4


class TestNeighboringPairs:
    def test_remove_pair_differs_by_one_edge(self, tiny_graph):
        pair = sample_neighboring_pair(tiny_graph, kind="remove", rng=0)
        assert pair.kind == "remove"
        assert pair.neighbor.num_edges == tiny_graph.num_edges - 1
        assert edge_flip_distance(tiny_graph, pair.neighbor) == 1

    def test_add_pair_differs_by_one_edge(self, tiny_graph):
        pair = sample_neighboring_pair(tiny_graph, kind="add", rng=0)
        assert pair.kind == "add"
        assert pair.neighbor.num_edges == tiny_graph.num_edges + 1
        assert edge_flip_distance(tiny_graph, pair.neighbor) == 1

    def test_either_kind_produces_valid_pair(self, tiny_graph):
        pair = sample_neighboring_pair(tiny_graph, kind="either", rng=5)
        assert pair.kind in ("remove", "add")
        assert edge_flip_distance(tiny_graph, pair.neighbor) == 1

    def test_invalid_kind_rejected(self, tiny_graph):
        with pytest.raises(GraphDataError):
            sample_neighboring_pair(tiny_graph, kind="swap", rng=0)

    def test_iterator_yields_requested_count(self, tiny_graph):
        pairs = list(iter_neighboring_pairs(tiny_graph, count=5, rng=0))
        assert len(pairs) == 5
        assert all(edge_flip_distance(tiny_graph, pair.neighbor) == 1 for pair in pairs)

    def test_iterator_rejects_negative_count(self, tiny_graph):
        with pytest.raises(GraphDataError):
            list(iter_neighboring_pairs(tiny_graph, count=-1))

    def test_original_graph_is_not_mutated(self, tiny_graph):
        before = tiny_graph.num_edges
        sample_neighboring_pair(tiny_graph, kind="remove", rng=1)
        sample_neighboring_pair(tiny_graph, kind="add", rng=1)
        assert tiny_graph.num_edges == before


class TestBulkPerturbations:
    def test_remove_fraction_of_edges(self, tiny_graph):
        perturbed = remove_random_edges(tiny_graph, fraction=0.2, rng=0)
        expected = tiny_graph.num_edges - int(round(0.2 * tiny_graph.num_edges))
        assert perturbed.num_edges == expected

    def test_remove_zero_fraction_is_identity(self, tiny_graph):
        assert remove_random_edges(tiny_graph, fraction=0.0, rng=0) is tiny_graph

    def test_remove_rejects_bad_fraction(self, tiny_graph):
        with pytest.raises(GraphDataError):
            remove_random_edges(tiny_graph, fraction=1.5)

    def test_add_random_edges_increases_count(self, tiny_graph):
        perturbed = add_random_edges(tiny_graph, count=7, rng=0)
        assert perturbed.num_edges == tiny_graph.num_edges + 7

    def test_rewire_preserves_edge_count(self, tiny_graph):
        perturbed = rewire_edges(tiny_graph, fraction=0.3, rng=0)
        assert perturbed.num_edges == tiny_graph.num_edges
        assert edge_flip_distance(tiny_graph, perturbed) > 0

    def test_rewiring_reduces_homophily(self):
        from repro.graphs.random_graphs import planted_partition_graph
        from repro.graphs.statistics import edge_homophily_ratio

        graph = planted_partition_graph(200, num_classes=4, intra_probability=0.1,
                                        inter_probability=0.002, seed=0)
        rewired = rewire_edges(graph, fraction=0.8, rng=0)
        assert edge_homophily_ratio(rewired) < edge_homophily_ratio(graph)

    def test_remove_full_fraction_leaves_no_edges(self, tiny_graph):
        perturbed = remove_random_edges(tiny_graph, fraction=1.0, rng=0)
        assert perturbed.num_edges == 0
        assert edge_flip_distance(tiny_graph, perturbed) == tiny_graph.num_edges

    def test_add_zero_edges_is_identity(self, tiny_graph):
        assert add_random_edges(tiny_graph, count=0, rng=0) is tiny_graph

    def test_edge_flip_distance_requires_same_node_count(self, tiny_graph, path_graph):
        with pytest.raises(GraphDataError):
            edge_flip_distance(tiny_graph, path_graph)

    def test_edge_flip_distance_is_symmetric_and_zero_on_self(self, tiny_graph):
        perturbed = remove_random_edges(tiny_graph, fraction=0.1, rng=0)
        assert edge_flip_distance(tiny_graph, tiny_graph) == 0
        assert edge_flip_distance(tiny_graph, perturbed) \
            == edge_flip_distance(perturbed, tiny_graph)


class TestPerturbationProperties:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_sampled_pairs_always_valid_datasets(self, tiny_graph, seed):
        pair = sample_neighboring_pair(tiny_graph, kind="either", rng=seed)
        pair.neighbor.validate()
        assert pair.neighbor.adjacency.diagonal().sum() == 0

    @given(fraction=st.floats(0.0, 1.0), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_remove_never_negative_edges(self, path_graph, fraction, seed):
        perturbed = remove_random_edges(path_graph, fraction=fraction, rng=seed)
        assert 0 <= perturbed.num_edges <= path_graph.num_edges
