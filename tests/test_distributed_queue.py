"""Unit tests for the distributed substrate: spec, queue, leases, worker loop.

Everything here runs against a stub cell runner and a manually advanced
clock, so the claim/steal/heartbeat protocol is exercised deterministically
— no sleeps, no real crashes, no model training.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.distributed import (
    Coordinator,
    DistributedWorker,
    LeaseManager,
    SweepSpec,
    WorkQueue,
    group_id_for,
)
from repro.distributed.queue import GroupTask
from repro.exceptions import ConfigurationError
from repro.runtime import ExperimentResult, JsonlResultStore


class StubRunner:
    """Deterministic, picklable runner: score is a pure function of the seed."""

    def __call__(self, cell):
        score = float(np.random.default_rng(cell.seed).random())
        return ExperimentResult(method=cell.method, dataset=cell.dataset,
                                epsilon=cell.epsilon, repeat=cell.repeat,
                                micro_f1=score)


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _spec(**overrides):
    params = dict(methods=("m1", "m2"), datasets=("d1",),
                  epsilons=(0.5, 1.0, 2.0), repeats=2)
    params.update(overrides)
    return SweepSpec(**params)


class TestSweepSpec:
    def test_round_trip_preserves_digest(self):
        spec = _spec(epsilons=(0.5, float("inf")), delta=1e-6)
        restored = SweepSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.digest() == spec.digest()

    def test_digest_covers_every_knob(self):
        base = _spec()
        assert base.digest() != _spec(seed=1).digest()
        assert base.digest() != _spec(scale=0.1).digest()
        assert base.digest() != _spec(epochs=10).digest()
        assert base.digest() != _spec(fast_sweep=False).digest()

    def test_context_digest_matches_engine_convention(self):
        # The fingerprint stamped by workers must equal what the local
        # engine stamps for the same settings, or stores stop being
        # interchangeable.
        from repro.runtime.engine import context_digest

        spec = _spec()
        expected = context_digest(dict(spec.settings().resume_context(),
                                       delta=None))
        assert spec.context_digest() == expected

    def test_expand_matches_expand_cells_seeds(self):
        from repro.runtime.cells import expand_cells

        spec = _spec()
        direct = expand_cells(spec.methods, spec.datasets, spec.epsilons,
                              spec.repeats, seed=spec.seed)
        assert [c.seed for c in spec.expand()] == [c.seed for c in direct]

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(repeats=0)


class TestWorkQueue:
    def test_initialize_is_idempotent_for_the_same_spec(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        assert queue.initialize(_spec()) is True
        assert queue.initialize(_spec()) is False
        assert queue.load_spec() == _spec()

    def test_initialize_refuses_a_different_spec(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.initialize(_spec())
        with pytest.raises(ConfigurationError, match="different sweep"):
            queue.initialize(_spec(seed=99))

    def test_uninitialised_queue_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not an initialised queue"):
            WorkQueue(tmp_path / "missing").load_spec()

    def test_task_round_trip_including_infinite_epsilon(self, tmp_path):
        spec = _spec(epsilons=(0.5, float("inf")), repeats=1)
        queue = WorkQueue(tmp_path / "q")
        queue.initialize(spec)
        cells = [c for c in spec.expand() if c.group == 0]
        task = GroupTask(group_id=group_id_for(spec.digest(), cells),
                         spec_digest=spec.digest(), cells=tuple(cells))
        assert queue.enqueue(task) is True
        assert queue.enqueue(task) is False  # already queued
        restored = queue.read_task(task.group_id)
        assert list(restored.cells) == cells

    def test_group_ids_are_filesystem_safe_and_sweep_unique(self):
        spec = _spec(methods=("GCN (non-DP)",), repeats=1)
        cells = spec.expand()
        gid = group_id_for(spec.digest(), cells)
        assert "/" not in gid and " " not in gid and "(" not in gid
        other = group_id_for(_spec(methods=("GCN (non-DP)",), repeats=1,
                                   seed=5).digest(), cells)
        assert gid != other


class TestLeases:
    def test_exclusive_acquire(self, tmp_path):
        clock = FakeClock()
        manager = LeaseManager(tmp_path, ttl=10.0, clock=clock)
        lease = manager.acquire("g1", "alice")
        assert lease is not None
        assert manager.acquire("g1", "bob") is None
        assert manager.holder("g1") == "alice"

    def test_release_makes_group_claimable_again(self, tmp_path):
        manager = LeaseManager(tmp_path, ttl=10.0, clock=FakeClock())
        lease = manager.acquire("g1", "alice")
        manager.release(lease)
        assert manager.acquire("g1", "bob") is not None

    def test_expired_lease_is_stolen(self, tmp_path):
        clock = FakeClock()
        manager = LeaseManager(tmp_path, ttl=10.0, clock=clock)
        assert manager.acquire("g1", "dead-worker") is not None
        clock.advance(5.0)
        assert manager.acquire("g1", "bob") is None  # still fresh
        clock.advance(6.0)  # 11s since the heartbeat: expired
        stolen = manager.acquire("g1", "bob")
        assert stolen is not None
        assert manager.holder("g1") == "bob"

    def test_heartbeat_extends_the_lease(self, tmp_path):
        clock = FakeClock()
        manager = LeaseManager(tmp_path, ttl=10.0, clock=clock)
        lease = manager.acquire("g1", "alice")
        clock.advance(8.0)
        lease = manager.heartbeat(lease)
        assert lease is not None
        clock.advance(8.0)  # 16s since acquire but 8s since the heartbeat
        assert manager.acquire("g1", "bob") is None

    def test_partitioned_worker_detects_its_reaped_lease(self, tmp_path):
        clock = FakeClock()
        manager = LeaseManager(tmp_path, ttl=10.0, clock=clock)
        lease = manager.acquire("g1", "alice")
        clock.advance(11.0)
        assert manager.acquire("g1", "bob") is not None
        # Alice comes back from the partition: heartbeat reports the loss
        # and a release must not evict the new holder.
        assert manager.heartbeat(lease) is None
        manager.release(lease)
        assert manager.holder("g1") == "bob"

    def test_corrupt_lease_file_reads_as_absent(self, tmp_path):
        manager = LeaseManager(tmp_path, ttl=10.0, clock=FakeClock())
        manager.path_for("g1").parent.mkdir(parents=True, exist_ok=True)
        manager.path_for("g1").write_text("not json")
        assert manager.read("g1") is None

    def test_invalid_ttl_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseManager(tmp_path, ttl=0.0)

    def test_meta_payload_round_trips_and_heartbeat_carries_it(self, tmp_path):
        clock = FakeClock()
        manager = LeaseManager(tmp_path, ttl=10.0, clock=clock)
        lease = manager.acquire("g1", "alice", meta={"host": "h", "port": 1})
        assert manager.read("g1").meta == {"host": "h", "port": 1}
        clock.advance(1.0)
        refreshed = manager.heartbeat(lease, meta={"host": "h", "port": 2})
        assert refreshed is not None
        assert manager.read("g1").meta == {"host": "h", "port": 2}
        clock.advance(1.0)
        assert manager.heartbeat(refreshed) is not None  # keeps the meta
        assert manager.read("g1").meta == {"host": "h", "port": 2}

    def test_pre_nonce_lease_files_still_parse(self, tmp_path):
        # Claim files written before acquisition nonces existed must keep
        # reading (a rolling upgrade shares the queue with old workers).
        manager = LeaseManager(tmp_path, ttl=10.0, clock=FakeClock())
        manager.path_for("g1").parent.mkdir(parents=True, exist_ok=True)
        manager.path_for("g1").write_text(json.dumps({
            "group_id": "g1", "worker_id": "alice", "acquired_at": 1000.0,
            "heartbeat_at": 1000.0, "ttl": 10.0}))
        lease = manager.read("g1")
        assert lease is not None
        assert lease.nonce == "" and lease.meta == {}
        assert manager.holder("g1") == "alice"

    def test_group_ids_lists_claim_files(self, tmp_path):
        manager = LeaseManager(tmp_path, ttl=10.0, clock=FakeClock())
        assert manager.group_ids() == []
        manager.acquire("g2", "alice")
        manager.acquire("g1", "bob")
        assert manager.group_ids() == ["g1", "g2"]


class TestLeaseRaces:
    """Deterministic reproducers for the check-then-act lease races.

    The old ``release`` and ``heartbeat`` verified ownership with ``read()``
    and then acted (unlink / atomic rewrite); a steal landing inside that
    window was destroyed or silently overwritten.  These tests interleave
    the steal at the exact racy point — by shimming the verification read or
    the refresh write — so they fail on the check-then-act implementations
    and pin the rename-to-token / nonce-verified ones.
    """

    @staticmethod
    def _manager(tmp_path, clock):
        return LeaseManager(tmp_path, ttl=10.0, clock=clock)

    def test_release_in_the_steal_window_spares_the_fresh_claim(self, tmp_path):
        clock = FakeClock()
        manager = self._manager(tmp_path, clock)
        stealer = self._manager(tmp_path, clock)
        stale = manager.acquire("g1", "alice")
        clock.advance(11.0)  # expired: bob is entitled to steal
        state = {"stolen": False}

        def steal_now():
            if not state["stolen"]:
                state["stolen"] = True
                assert stealer.acquire("g1", "bob") is not None

        # If release pre-verifies with read() (the old check-then-unlink),
        # interleave bob's steal right inside that window; the old unlink
        # then deleted bob's valid lease.  The fixed release never calls
        # read() — it renames first — so the steal lands after it returns.
        original_read = manager.read

        def racing_read(group_id):
            current = original_read(group_id)
            steal_now()
            return current

        manager.read = racing_read
        manager.release(stale)
        steal_now()
        assert stealer.holder("g1") == "bob"
        assert stealer.read("g1").worker_id == "bob"

    def test_release_of_a_stale_handle_spares_same_worker_reclaim(self, tmp_path):
        # The same worker id re-acquires after expiry (a restart); a zombie
        # thread still holding the *old* lease object releases.  Only the
        # acquisition nonce distinguishes the two claims — matching on
        # worker id alone deleted the new incarnation's lease.
        clock = FakeClock()
        manager = self._manager(tmp_path, clock)
        stale = manager.acquire("g1", "alice")
        clock.advance(11.0)
        fresh = manager.acquire("g1", "alice")
        assert fresh is not None
        assert fresh.nonce != stale.nonce
        manager.release(stale)
        assert manager.holder("g1") == "alice"
        assert manager.read("g1").nonce == fresh.nonce

    def test_heartbeat_never_resurrects_an_expired_lease(self, tmp_path):
        clock = FakeClock()
        manager = self._manager(tmp_path, clock)
        stealer = self._manager(tmp_path, clock)
        stale = manager.acquire("g1", "alice")
        clock.advance(11.0)
        state = {"stolen": False}

        def steal_now():
            if not state["stolen"]:
                state["stolen"] = True
                assert stealer.acquire("g1", "bob") is not None

        # Old heartbeat: read() saw alice's own (stale) claim, bob stole
        # inside the window, and the atomic rewrite clobbered bob's fresh
        # lease — resurrection.  Fixed heartbeat refuses to refresh an
        # already-expired lease outright.
        original_read = manager.read

        def racing_read(group_id):
            current = original_read(group_id)
            steal_now()
            return current

        manager.read = racing_read
        assert manager.heartbeat(stale) is None
        steal_now()
        assert stealer.holder("g1") == "bob"

    def test_heartbeat_verifies_after_write(self, tmp_path, monkeypatch):
        # The narrower window: the lease expires *between* the ownership
        # read and the refresh rename, and a stealer reaps the freshly
        # written file.  The post-write re-read sees the stealer's nonce
        # and reports the lease lost instead of letting two workers hold
        # the group.
        import repro.distributed.lease as lease_module

        clock = FakeClock()
        manager = self._manager(tmp_path, clock)
        stealer = self._manager(tmp_path, clock)
        lease = manager.acquire("g1", "alice")
        clock.advance(8.0)  # still fresh by alice's clock
        real_write = lease_module.atomic_write_text

        def racing_write(path, text):
            real_write(path, text)
            # The instant the refresh lands, a stealer whose clock already
            # saw the lease expire reaps the file and claims the group.
            assert stealer._reap("g1")
            assert stealer._try_create("g1", "bob") is not None

        monkeypatch.setattr(lease_module, "atomic_write_text", racing_write)
        assert manager.heartbeat(lease) is None
        assert stealer.holder("g1") == "bob"

    def test_heartbeat_with_a_stale_same_worker_handle_is_rejected(self, tmp_path):
        clock = FakeClock()
        manager = self._manager(tmp_path, clock)
        stale = manager.acquire("g1", "alice")
        clock.advance(11.0)
        fresh = manager.acquire("g1", "alice")  # new incarnation, new nonce
        clock.advance(1.0)
        assert manager.heartbeat(stale) is None
        assert manager.read("g1").nonce == fresh.nonce


class TestWorkerLoop:
    def _submitted(self, tmp_path, **overrides):
        coordinator = Coordinator(tmp_path / "q")
        coordinator.submit(_spec(**overrides))
        return coordinator

    def test_worker_drains_the_queue_and_stamps_context(self, tmp_path):
        coordinator = self._submitted(tmp_path)
        report = DistributedWorker(tmp_path / "q", "w1",
                                   cell_runner=StubRunner()).run()
        assert report.groups_completed == 4
        assert report.cells_completed == 12
        status = coordinator.status()
        assert status.complete
        digest = coordinator.spec().context_digest()
        for gid in coordinator.queue.done_ids():
            for record in JsonlResultStore(coordinator.queue.shard_path(gid)).load():
                assert record.extra["sweep_context"] == digest

    def test_max_groups_bounds_one_call(self, tmp_path):
        self._submitted(tmp_path)
        report = DistributedWorker(tmp_path / "q", "w1", max_groups=1,
                                   cell_runner=StubRunner()).run()
        assert report.groups_completed == 1
        report = DistributedWorker(tmp_path / "q", "w2",
                                   cell_runner=StubRunner()).run()
        assert report.groups_completed == 3

    def test_no_wait_exits_when_everything_is_held(self, tmp_path):
        coordinator = self._submitted(tmp_path)
        manager = LeaseManager(coordinator.queue.leases_dir, ttl=1000.0)
        for gid in coordinator.queue.pending_ids():
            assert manager.acquire(gid, "hoarder") is not None
        report = DistributedWorker(tmp_path / "q", "w1", wait_for_completion=False,
                                   cell_runner=StubRunner()).run()
        assert report.groups_completed == 0

    def test_failing_group_leaves_a_breadcrumb_and_no_shard(self, tmp_path):
        coordinator = self._submitted(tmp_path)

        def failing(cell):
            raise RuntimeError("boom")

        report = DistributedWorker(tmp_path / "q", "w1", cell_runner=failing,
                                   max_attempts=1).run()
        assert report.groups_completed == 0
        assert report.groups_failed == 4
        assert report.groups_quarantined == 4
        assert coordinator.queue.failure_count() == 4
        assert coordinator.queue.done_ids() == set()
        assert list(coordinator.queue.shards_dir.glob("*.jsonl")) == []
        # Every lease was released; a healthy worker could take over a
        # transiently failing group (exercised in TestRetryQuarantine).
        for gid in coordinator.queue.pending_ids():
            assert coordinator.leases.read(gid) is None

    def test_heartbeat_pump_keeps_a_long_group_leased(self, tmp_path):
        """A group running far longer than the lease TTL must stay claimed:
        the background heartbeat pump refreshes the lease during execution,
        so a rival can never steal a live worker's group."""
        import threading
        import time as _time

        coordinator = self._submitted(tmp_path, methods=("m1",), repeats=1)
        (gid,) = coordinator.queue.pending_ids()

        def slow(cell):
            _time.sleep(0.2)
            return StubRunner()(cell)

        worker = DistributedWorker(tmp_path / "q", "steady", lease_ttl=0.15,
                                   cell_runner=slow)
        thread = threading.Thread(target=worker.run)
        thread.start()
        try:
            rival = LeaseManager(coordinator.queue.leases_dir, ttl=0.15)
            deadline = _time.monotonic() + 30
            while not list(coordinator.queue.leases_dir.glob("*.lease")) \
                    and not coordinator.queue.is_done(gid) \
                    and _time.monotonic() < deadline:
                _time.sleep(0.01)
            while not coordinator.queue.is_done(gid):
                assert _time.monotonic() < deadline, "worker never finished"
                lease = rival.acquire(gid, "rival")
                if lease is not None:
                    assert coordinator.queue.is_done(gid), \
                        "rival stole a heartbeating worker's lease"
                    rival.release(lease)
                    break
                _time.sleep(0.02)
        finally:
            thread.join()
        assert coordinator.status().complete

    def test_worker_without_spec_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            DistributedWorker(tmp_path / "empty", "w1",
                              cell_runner=StubRunner()).run()


class TestRetryQuarantine:
    """The bounded retry-then-quarantine policy for failing groups."""

    def _submitted(self, tmp_path):
        coordinator = Coordinator(tmp_path / "q")
        coordinator.submit(_spec())
        return coordinator

    @staticmethod
    def _flaky(fail_times: int):
        """Fails the (m1, repeat 0) group ``fail_times`` times, then recovers."""
        failures = {"count": 0}

        def runner(cell):
            if cell.method == "m1" and cell.repeat == 0 \
                    and failures["count"] < fail_times:
                failures["count"] += 1
                raise RuntimeError("transient boom")
            return StubRunner()(cell)

        return runner

    def test_transient_failure_is_retried_to_completion(self, tmp_path):
        coordinator = self._submitted(tmp_path)
        report = DistributedWorker(tmp_path / "q", "w1",
                                   cell_runner=self._flaky(2),
                                   max_attempts=3, poll_interval=0.01).run()
        assert report.groups_completed == 4
        assert report.groups_failed == 2
        assert report.groups_quarantined == 0
        assert coordinator.status().complete
        assert coordinator.queue.failure_count() == 2

    def test_deterministic_failure_quarantines_after_max_attempts(self, tmp_path):
        coordinator = self._submitted(tmp_path)

        def always_failing(cell):
            if cell.method == "m1" and cell.repeat == 0:
                raise ValueError("deterministic boom")
            return StubRunner()(cell)

        report = DistributedWorker(tmp_path / "q", "w1",
                                   cell_runner=always_failing,
                                   max_attempts=2, poll_interval=0.01).run()
        # The healthy groups completed; the poisoned one was retried exactly
        # max_attempts times, then quarantined -- and run() terminated
        # instead of re-leasing it forever.
        assert report.groups_completed == 3
        assert report.groups_failed == 2
        assert report.groups_quarantined == 1
        quarantined = coordinator.queue.quarantined_ids()
        assert len(quarantined) == 1
        (gid,) = quarantined
        assert coordinator.queue.attempts(gid) == 2
        assert coordinator.queue.runnable_ids() == []
        payload = json.loads(coordinator.queue.quarantine_path(gid).read_text())
        assert payload["attempts"] == 2
        assert "deterministic boom" in payload["error"]
        assert "ValueError" in payload["traceback"]

    def test_quarantine_surfaces_in_status_wait_and_merge(self, tmp_path):
        coordinator = self._submitted(tmp_path)

        def always_failing(cell):
            if cell.method == "m1" and cell.repeat == 0:
                raise ValueError("deterministic boom")
            return StubRunner()(cell)

        DistributedWorker(tmp_path / "q", "w1", cell_runner=always_failing,
                          max_attempts=1, poll_interval=0.01).run()
        status = coordinator.status()
        assert status.groups_quarantined == 1
        assert status.groups_done == 3
        assert not status.complete
        assert status.stalled
        assert "quarantined: 1 group(s)" in status.summary()
        # wait() must not spin forever on a sweep that can no longer finish.
        assert coordinator.wait(poll_interval=0.01) is False
        with pytest.raises(RuntimeError, match="quarantined"):
            coordinator.merge()
        # The surviving shards are still recoverable explicitly.
        assert coordinator.merge(require_complete=False).records == 9

    def test_another_worker_respects_the_quarantine(self, tmp_path):
        coordinator = self._submitted(tmp_path)

        def always_failing(cell):
            if cell.method == "m1" and cell.repeat == 0:
                raise ValueError("boom")
            return StubRunner()(cell)

        DistributedWorker(tmp_path / "q", "w1", cell_runner=always_failing,
                          max_attempts=1, poll_interval=0.01).run()
        # A healthy rival finds nothing claimable and exits without touching
        # the quarantined group.
        report = DistributedWorker(tmp_path / "q", "w2",
                                   cell_runner=StubRunner(),
                                   poll_interval=0.01).run()
        assert report.groups_completed == 0
        assert coordinator.queue.attempts(
            next(iter(coordinator.queue.quarantined_ids()))) == 1


class TestCoordinatorStatus:
    def test_census_counts_leased_expired_and_done(self, tmp_path):
        clock = FakeClock()
        coordinator = Coordinator(tmp_path / "q", clock=clock)
        coordinator.submit(_spec())
        gids = coordinator.queue.pending_ids()
        manager = LeaseManager(coordinator.queue.leases_dir, ttl=10.0, clock=clock)
        manager.acquire(gids[0], "alice")
        manager.acquire(gids[1], "bob")
        done_worker = DistributedWorker(
            tmp_path / "q", "carol", cell_runner=StubRunner(), max_groups=1,
            clock=clock)
        done_worker.run()  # completes gids[2] (first unleased)
        clock.advance(11.0)  # alice and bob both go stale

        status = coordinator.status()
        assert status.groups_total == 4
        assert status.groups_done == 1
        assert status.groups_expired == 2
        assert status.groups_leased == 0
        assert status.groups_claimable == 3
        assert status.cells_done == 3
        assert not status.complete

    def test_merge_refuses_an_incomplete_sweep(self, tmp_path):
        coordinator = Coordinator(tmp_path / "q")
        coordinator.submit(_spec())
        DistributedWorker(tmp_path / "q", "w1", max_groups=1,
                          cell_runner=StubRunner()).run()
        with pytest.raises(RuntimeError, match="incomplete"):
            coordinator.merge()
        # Partial merge is an explicit opt-in.
        report = coordinator.merge(require_complete=False)
        assert report.records == 3

    def test_wait_times_out_and_still_reports_progress(self, tmp_path):
        import io

        coordinator = Coordinator(tmp_path / "q")
        coordinator.submit(_spec())
        DistributedWorker(tmp_path / "q", "w1", max_groups=1,
                          cell_runner=StubRunner()).run()
        from repro.runtime.progress import ProgressReporter

        stream = io.StringIO()
        reporter = ProgressReporter(12, stream=stream, min_interval=0.0,
                                    label="dist sweep")
        assert coordinator.wait(poll_interval=0.01, timeout=0.05,
                                progress=reporter) is False
        assert "3/12" in stream.getvalue()

    def test_failure_breadcrumb_appears_in_status_summary(self, tmp_path):
        coordinator = Coordinator(tmp_path / "q")
        coordinator.submit(_spec())
        coordinator.queue.record_failure("some-group", "w1", "RuntimeError('x')")
        status = coordinator.status()
        assert status.failures == 1
        assert "failures recorded: 1" in status.summary()
        payload = json.loads(next(
            coordinator.queue.failed_dir.glob("*.json")).read_text())
        assert payload["worker_id"] == "w1"
