"""Tests for the alert rule engine (repro.obs.alerts)."""

import json

import pytest

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    default_rules,
    format_alert_table,
    load_rules,
    rule_from_dict,
)
from repro.obs.tsdb import TelemetryStore

GOOD = "repro_slo_good_requests_total"
BAD = "repro_slo_bad_requests_total"


def _memory_store():
    return TelemetryStore(None, segment_seconds=60.0, retention=7200.0)


def _append_slo(store, at, good, bad, model="m"):
    store.append_scrape(
        [(GOOD, {"model": model}, float(good)),
         (BAD, {"model": model}, float(bad))],
        {GOOD: "counter", BAD: "counter"}, at=at)


def _burn_rule(**kwargs):
    kwargs.setdefault("name", "slo-burn-rate")
    kwargs.setdefault("kind", "burn_rate")
    kwargs.setdefault("fast_window", 60.0)
    kwargs.setdefault("slow_window", 300.0)
    kwargs.setdefault("threshold", 4.0)
    kwargs.setdefault("objective", 0.99)
    return AlertRule(**kwargs)


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown alert rule kind"):
            AlertRule(name="x", kind="nope")

    def test_ratio_requires_both_metrics(self):
        with pytest.raises(ValueError, match="numerator"):
            AlertRule(name="x", kind="ratio", numerator="a")

    def test_unknown_json_key_rejected(self):
        with pytest.raises(ValueError, match="unknown alert rule key"):
            rule_from_dict({"name": "x", "kind": "burn_rate", "typo": 1})

    def test_for_alias_maps_to_for_seconds(self):
        rule = rule_from_dict({"name": "x", "kind": "burn_rate", "for": 30})
        assert rule.for_seconds == 30

    def test_load_rules_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "burn", "kind": "burn_rate", "threshold": 2.0},
            {"name": "shed", "kind": "ratio",
             "numerator": "repro_shed_requests_total",
             "denominator": "repro_requests_total", "threshold": 0.1},
        ]}))
        rules = load_rules(path)
        assert [rule.name for rule in rules] == ["burn", "shed"]

    def test_load_rules_rejects_duplicates_and_garbage(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="malformed"):
            load_rules(path)
        path.write_text(json.dumps({"rules": []}))
        with pytest.raises(ValueError, match="non-empty"):
            load_rules(path)
        path.write_text(json.dumps({"rules": [
            {"name": "a", "kind": "burn_rate"},
            {"name": "a", "kind": "burn_rate"}]}))
        with pytest.raises(ValueError, match="duplicate"):
            load_rules(path)

    def test_default_rules_cover_the_issue_set(self):
        names = {rule.name for rule in default_rules()}
        assert names == {"slo-burn-rate", "shed-rate", "incomplete-traces",
                         "replica-down", "worker-quarantine"}


class TestBurnRateGoldenValues:
    """Hand-computed burn rates from a known scrape sequence.

    Objective 0.99 -> budget 1%.  Scrapes at t=0,60,120 with cumulative
    (good, bad): (0,0) -> (90,10) -> (180,20).  Every 60 s window holds
    100 requests of which 10 are bad: error rate 0.10, burn 10x.
    """

    def test_burn_rate_value_and_fire(self):
        store = _memory_store()
        for t, good, bad in [(0, 0, 0), (60, 90, 10), (120, 180, 20)]:
            _append_slo(store, t, good, bad)
        engine = AlertEngine([_burn_rule()], store, clock=lambda: 120.0)
        statuses = engine.evaluate()
        assert len(statuses) == 1
        status = statuses[0]
        assert status["labels"] == {"model": "m"}
        # fast (60 s) window: 100 requests, 10 bad -> burn 10.0
        # slow (300 s) window: 200 requests, 20 bad -> burn 10.0
        assert status["value"] == pytest.approx(10.0)
        assert status["state"] == "firing"  # for_seconds defaults to 0

    def test_burn_rate_requires_both_windows(self):
        # A short spike inside an otherwise healthy slow window must NOT
        # fire: fast burn is high but slow burn stays under threshold.
        store = _memory_store()
        scrapes = [(0, 0, 0), (60, 1000, 0), (120, 2000, 0),
                   (180, 3000, 0), (240, 3090, 10)]
        for t, good, bad in scrapes:
            _append_slo(store, t, good, bad)
        rule = _burn_rule(threshold=4.0)
        engine = AlertEngine([rule], store, clock=lambda: 240.0)
        status = engine.evaluate()[0]
        # fast: 100 requests, 10 bad -> burn 10x (over threshold)
        # slow: 3100 requests, 10 bad -> burn ~0.32x (under threshold)
        assert status["value"] == pytest.approx((10 / 3100) / 0.01)
        assert status["state"] == "ok"

    def test_insufficient_data_never_fires(self):
        store = _memory_store()
        _append_slo(store, 0, 0, 0)  # single scrape: no increase yet
        engine = AlertEngine([_burn_rule()], store, clock=lambda: 0.0)
        status = engine.evaluate()[0]
        assert status["state"] == "ok"
        assert status["detail"] == "insufficient data"

    def test_per_model_instances(self):
        store = _memory_store()
        for t in (0, 60):
            factor = t / 60.0
            store.append_scrape(
                [(GOOD, {"model": "healthy"}, 100.0 * factor),
                 (BAD, {"model": "healthy"}, 0.0),
                 (GOOD, {"model": "burning"}, 50.0 * factor),
                 (BAD, {"model": "burning"}, 50.0 * factor)],
                {GOOD: "counter", BAD: "counter"}, at=t)
        engine = AlertEngine([_burn_rule()], store, clock=lambda: 60.0)
        by_model = {status["labels"]["model"]: status
                    for status in engine.evaluate()}
        assert by_model["burning"]["state"] == "firing"
        assert by_model["burning"]["value"] == pytest.approx(50.0)
        assert by_model["healthy"]["state"] == "ok"


class TestStateMachine:
    """pending -> firing -> resolved under a fake clock."""

    def _engine(self, tmp_path, for_seconds=30.0):
        self.store = _memory_store()
        rule = _burn_rule(for_seconds=for_seconds)
        history = tmp_path / "alerts.jsonl"
        engine = AlertEngine([rule], self.store, history_path=history)
        return engine, history

    def test_hold_then_fire_then_resolve(self, tmp_path):
        engine, history = self._engine(tmp_path, for_seconds=30.0)
        _append_slo(self.store, 0, 0, 0)
        _append_slo(self.store, 10, 50, 50)  # all-bad traffic begins
        status = engine.evaluate(10)[0]
        assert status["state"] == "pending"
        assert status["since"] == 10

        _append_slo(self.store, 20, 100, 100)
        assert engine.evaluate(20)[0]["state"] == "pending"  # hold not met

        _append_slo(self.store, 45, 150, 150)
        status = engine.evaluate(45)[0]
        assert status["state"] == "firing"
        assert status["fired_at"] == 45

        # Recovery: only good traffic; the fast window drains the spike.
        for t in (100, 130):
            _append_slo(self.store, t, 5000 + t * 10, 150)
        status = engine.evaluate(130)[0]
        assert status["state"] == "ok"
        assert status["resolved_at"] == 130

        events = [json.loads(line)
                  for line in history.read_text().splitlines()]
        assert [event["event"] for event in events] == ["firing", "resolved"]
        assert events[0]["rule"] == "slo-burn-rate"
        assert events[0]["t"] == 45

    def test_blip_shorter_than_hold_never_fires(self, tmp_path):
        engine, history = self._engine(tmp_path, for_seconds=30.0)
        _append_slo(self.store, 0, 0, 0)
        _append_slo(self.store, 10, 0, 100)
        assert engine.evaluate(10)[0]["state"] == "pending"
        # Condition clears before the hold elapses.
        _append_slo(self.store, 20, 100000, 100)
        assert engine.evaluate(20)[0]["state"] == "ok"
        # The hold restarts from scratch on the next breach.
        _append_slo(self.store, 30, 100000, 200000)
        assert engine.evaluate(30)[0]["state"] == "pending"
        assert engine.evaluate(30)[0]["since"] == 30
        assert not history.exists()  # nothing ever fired

    def test_for_zero_fires_within_one_evaluation(self, tmp_path):
        engine, _history = self._engine(tmp_path, for_seconds=0.0)
        _append_slo(self.store, 0, 0, 0)
        _append_slo(self.store, 10, 0, 100)
        assert engine.evaluate(10)[0]["state"] == "firing"

    def test_vanished_series_resolves(self, tmp_path):
        engine, history = self._engine(tmp_path, for_seconds=0.0)
        _append_slo(self.store, 0, 0, 0)
        _append_slo(self.store, 10, 0, 100)
        assert engine.evaluate(10)[0]["state"] == "firing"
        # Far future: the model's series aged out of every window.
        status = engine.evaluate(100000)[0]
        assert status["state"] == "ok"
        events = [json.loads(line)["event"]
                  for line in history.read_text().splitlines()]
        assert events == ["firing", "resolved"]

    def test_replay_reconstructs_holds_from_scrape_times(self, tmp_path):
        engine, _history = self._engine(tmp_path, for_seconds=30.0)
        for t, good, bad in [(0, 0, 0), (10, 0, 100), (20, 0, 200),
                             (45, 0, 400)]:
            _append_slo(self.store, t, good, bad)
        statuses = engine.replay(self.store.scrape_times(start=0, end=50))
        assert statuses[0]["state"] == "firing"
        assert statuses[0]["fired_at"] == 45


class TestOtherRuleKinds:
    def test_ratio_rule_shed_rate(self):
        store = _memory_store()
        store.append_scrape(
            [("repro_shed_requests_total", {}, 0.0),
             ("repro_requests_total", {}, 0.0)], at=0)
        store.append_scrape(
            [("repro_shed_requests_total", {}, 30.0),
             ("repro_requests_total", {}, 100.0)], at=10)
        rule = AlertRule(name="shed", kind="ratio",
                         numerator="repro_shed_requests_total",
                         denominator="repro_requests_total",
                         window=60.0, threshold=0.05)
        engine = AlertEngine([rule], store, clock=lambda: 10.0)
        status = engine.evaluate()[0]
        assert status["value"] == pytest.approx(0.3)
        assert status["state"] == "firing"

    def test_instant_rule_replica_down(self):
        census = {"down": 0.0}
        rule = AlertRule(name="replica-down", kind="instant",
                         signal="fleet_replicas_down", threshold=0, op=">")
        engine = AlertEngine(
            [rule], _memory_store(),
            instants={"fleet_replicas_down": lambda: census["down"]},
            clock=lambda: 0.0)
        assert engine.evaluate(0)[0]["state"] == "ok"
        census["down"] = 2.0
        status = engine.evaluate(1)[0]
        assert status["state"] == "firing"
        assert status["value"] == 2.0
        census["down"] = 0.0
        assert engine.evaluate(2)[0]["state"] == "ok"

    def test_instant_rule_without_source_is_inert(self):
        rule = AlertRule(name="worker-quarantine", kind="instant",
                         signal="dist_groups_quarantined", threshold=0)
        engine = AlertEngine([rule], _memory_store(), clock=lambda: 0.0)
        status = engine.evaluate()[0]
        assert status["state"] == "ok"
        assert "unavailable" in status["detail"]

    def test_gauge_rule(self):
        store = _memory_store()
        store.append_scrape([("repro_parked_requests", {}, 900.0)],
                            {"repro_parked_requests": "gauge"}, at=0)
        rule = AlertRule(name="parked", kind="gauge",
                         metric="repro_parked_requests", threshold=500,
                         op=">", window=60.0)
        engine = AlertEngine([rule], store, clock=lambda: 1.0)
        assert engine.evaluate()[0]["state"] == "firing"


class TestPayloads:
    def test_as_dict_and_firing(self):
        store = _memory_store()
        _append_slo(store, 0, 0, 0)
        _append_slo(store, 10, 0, 100)
        engine = AlertEngine([_burn_rule()], store, clock=lambda: 10.0)
        engine.evaluate()
        payload = engine.as_dict()
        assert payload["firing"] == 1
        assert payload["evaluated_at"] == 10.0
        assert payload["rules"] == ["slo-burn-rate"]
        assert engine.firing()[0]["rule"] == "slo-burn-rate"
        table = format_alert_table(payload)
        assert "FIRING" in table
        assert "slo-burn-rate{model=m}" in table

    def test_format_alert_table_empty(self):
        assert "no alert instances" in format_alert_table({"alerts": []})
