"""Tests for per-model routing: independent queues kill head-of-line blocking."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serving import MicroBatcher, ModelRouter


class CountingScorer:
    """Scores node i as [i, 2i]; counts every (model, batch) execution."""

    def __init__(self, delays: dict | None = None):
        self.calls: list[tuple[object, np.ndarray]] = []
        self.lock = threading.Lock()
        self.delays = delays or {}

    def __call__(self, model_key, nodes: np.ndarray) -> np.ndarray:
        delay = self.delays.get(model_key, 0.0)
        if delay:
            time.sleep(delay)
        with self.lock:
            self.calls.append((model_key, nodes.copy()))
        return np.stack([nodes.astype(float), 2.0 * nodes], axis=1)


class TestRouting:
    def test_each_model_gets_its_own_queue(self):
        scorer = CountingScorer()
        router = ModelRouter(scorer, max_batch_size=64)
        router.submit("a", [1, 2])
        router.submit("b", [3])
        router.submit("a", [4])
        assert router.queue_count() == 2
        assert router.queue_for("a") is not router.queue_for("b")
        assert router.run_once() == 3
        by_model = {key: nodes for key, nodes in scorer.calls}
        np.testing.assert_array_equal(by_model["a"], [1, 2, 4])
        np.testing.assert_array_equal(by_model["b"], [3])

    def test_rows_count_per_model_not_globally(self):
        """The cross-model bug: rows of model A must not consume model B's
        batch budget.  Submit A up to the cap, then B — B's queue still forms
        its own batch with its own budget."""
        scorer = CountingScorer()
        router = ModelRouter(scorer, max_batch_size=4)
        for i in range(4):  # A exactly at its cap
            router.submit("a", [i])
        tickets_b = [router.submit("b", [10 + i]) for i in range(3)]
        assert router.run_once() == 7
        # B was answered by one stacked matmul of its own 3 rows.
        assert router.stats.per_model_matmuls == {"a": 1, "b": 1}
        assert router.stats.per_model_max_rows == {"a": 4, "b": 3}
        for i, ticket in enumerate(tickets_b):
            np.testing.assert_array_equal(ticket.result(1.0), [[10 + i, 20 + 2 * i]])

    def test_inline_execution_drains_only_that_models_queue(self):
        scorer = CountingScorer()
        router = ModelRouter(scorer)
        router.submit("parked", [99])  # must stay queued
        np.testing.assert_array_equal(router.predict_scores("m", [7]), [[7, 14]])
        assert [key for key, _ in scorer.calls] == ["m"]
        assert router.run_once() == 1  # "parked" still there

    def test_independent_deadlines_no_head_of_line_blocking(self):
        """With dispatch threads running, a slow model's matmul cannot delay
        a fast model's flush: each queue has its own deadline and thread."""
        scorer = CountingScorer(delays={"slow": 0.25})
        with ModelRouter(scorer, max_batch_size=64,
                         max_latency=0.005) as router:
            slow_results: list = []
            slow_thread = threading.Thread(
                target=lambda: slow_results.append(
                    router.predict_scores("slow", [1], timeout=10.0)))
            slow_thread.start()
            time.sleep(0.05)  # the slow matmul is now in flight
            start = time.monotonic()
            fast = router.predict_scores("fast", [2], timeout=10.0)
            fast_elapsed = time.monotonic() - start
            slow_thread.join()
        np.testing.assert_array_equal(fast, [[2, 4]])
        np.testing.assert_array_equal(slow_results[0], [[1, 2]])
        # The fast request must not have waited out the slow model's 250ms
        # compute (generous bound for scheduler noise on a loaded 1-core CI).
        assert fast_elapsed < 0.2, f"fast model waited {fast_elapsed:.3f}s"

    def test_per_model_configuration_overrides(self):
        router = ModelRouter(CountingScorer(), max_batch_size=64,
                             max_latency=0.005)
        router.configure_model("a", max_batch_size=2, max_latency=0.0)
        assert router.queue_for("a").max_batch_size == 2
        assert router.queue_for("a").max_latency == 0.0
        assert router.queue_for("b").max_batch_size == 64
        # Reconfiguring an existing queue applies too.
        router.configure_model("b", max_latency=0.125)
        assert router.queue_for("b").max_latency == 0.125
        with pytest.raises(ValueError):
            router.configure_model("c", max_batch_size=0)
        with pytest.raises(ValueError):
            router.configure_model("c", max_latency=-1.0)

    def test_aggregate_stats_merge_across_queues(self):
        scorer = CountingScorer()
        router = ModelRouter(scorer)
        for i in range(3):
            router.submit("a", [i])
        router.submit("b", [7, 8])
        router.run_once()
        stats = router.stats
        assert stats.requests == 4
        assert stats.rows_requested == 5
        assert stats.matmuls == 2
        assert stats.coalesced_requests == 3    # a's three tickets only
        assert stats.max_batch_rows == 3
        per_model = router.per_model_stats()
        assert per_model["a"]["coalesced_requests"] == 3
        assert per_model["b"]["coalesced_requests"] == 0
        assert per_model["a"]["max_batch_size"] == 64

    def test_error_in_one_model_leaves_others_alive(self):
        def scorer(model_key, nodes):
            if model_key == "bad":
                raise ValueError("poisoned model")
            return np.zeros((nodes.size, 2))

        router = ModelRouter(scorer)
        good = router.submit("good", [1])
        bad = router.submit("bad", [2])
        router.run_once()
        assert good.result(1.0).shape == (1, 2)
        with pytest.raises(ValueError, match="poisoned model"):
            bad.result(1.0)
        assert router.metrics.model("bad").failures == 1

    def test_metrics_observe_latency_per_model(self):
        scorer = CountingScorer()
        router = ModelRouter(scorer)
        router.predict_scores("a", [1, 2])
        router.predict_scores("b", [3])
        payload = router.metrics.as_dict()
        assert set(payload) == {"a", "b"}
        assert payload["a"]["latency_ms"]["count"] == 1
        assert payload["a"]["batch_rows"]["max"] == 2.0
        assert payload["b"]["batch_rows"]["max"] == 1.0

    def test_close_flushes_every_queue(self):
        scorer = CountingScorer()
        router = ModelRouter(scorer, max_batch_size=64, max_latency=30.0)
        router.start()
        tickets = [router.submit(model, [i])
                   for i, model in enumerate(("a", "b", "a"))]
        router.close()
        for ticket in tickets:
            assert ticket.result(1.0) is not None

    def test_retire_drops_the_queue_and_flushes_its_tickets(self):
        scorer = CountingScorer()
        router = ModelRouter(scorer)
        ticket = router.submit("old", [5])
        assert router.retire("old") is True
        assert router.queue_count() == 0
        np.testing.assert_array_equal(ticket.result(1.0), [[5, 10]])
        assert router.retire("old") is False  # already gone
        # New traffic simply recreates the queue.
        np.testing.assert_array_equal(router.predict_scores("old", [6]),
                                      [[6, 12]])

    def test_retire_stops_a_started_queues_thread(self):
        scorer = CountingScorer()
        with ModelRouter(scorer, max_latency=30.0) as router:
            ticket = router.submit("old", [3])
            assert router.retire("old") is True
            np.testing.assert_array_equal(ticket.result(5.0), [[3, 6]])
            assert router.queue_count() == 0

    def test_invalid_defaults_rejected(self):
        with pytest.raises(ValueError):
            ModelRouter(CountingScorer(), max_batch_size=0)
        with pytest.raises(ValueError):
            ModelRouter(CountingScorer(), max_latency=-0.1)


class TestBatcherSatelliteFixes:
    """Pin the per-model stats accounting and BaseException handling."""

    def test_mixed_batch_does_not_count_as_coalesced(self):
        scorer = CountingScorer()
        batcher = MicroBatcher(scorer, max_batch_size=64)
        batcher.submit("a", [1])
        batcher.submit("b", [2])
        batcher.run_once()
        # Two tickets shared the flush but not a matmul: nothing coalesced.
        assert batcher.stats.coalesced_requests == 0
        assert batcher.stats.per_model_coalesced == {}
        # And max_batch_rows measures the largest single matmul, not the
        # mixed flush total.
        assert batcher.stats.max_batch_rows == 1
        assert batcher.stats.per_model_max_rows == {"a": 1, "b": 1}

    def test_same_model_tickets_do_count_as_coalesced(self):
        scorer = CountingScorer()
        batcher = MicroBatcher(scorer, max_batch_size=64)
        batcher.submit("a", [1, 2])
        batcher.submit("a", [3])
        batcher.submit("b", [4])
        batcher.run_once()
        assert batcher.stats.coalesced_requests == 2
        assert batcher.stats.per_model_coalesced == {"a": 2}
        assert batcher.stats.max_batch_rows == 3
        assert batcher.stats.per_model_max_rows == {"a": 3, "b": 1}

    def test_base_exception_fails_tickets_then_reraises(self):
        def scorer(model_key, nodes):
            raise KeyboardInterrupt("operator hit ^C")

        batcher = MicroBatcher(scorer, max_batch_size=64)
        first = batcher.submit("a", [1])
        second = batcher.submit("b", [2])
        with pytest.raises(KeyboardInterrupt):
            batcher.run_once()
        # No caller is left blocked until timeout: both tickets failed fast.
        for ticket in (first, second):
            assert ticket.done()
            with pytest.raises(KeyboardInterrupt):
                ticket.result(0.1)

    def test_plain_exception_still_forwarded_not_raised(self):
        def scorer(model_key, nodes):
            raise RuntimeError("model exploded")

        batcher = MicroBatcher(scorer, max_batch_size=64)
        ticket = batcher.submit("a", [1])
        batcher.run_once()  # must NOT raise
        with pytest.raises(RuntimeError, match="model exploded"):
            ticket.result(0.1)
