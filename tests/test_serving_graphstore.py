"""Tests for the versioned serving-graph store: epochs, the edge-delta log,
atomic (all-or-nothing) advance and the bounded rebuild history."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.propagation import graph_fingerprint
from repro.exceptions import ConfigurationError, GraphDataError
from repro.graphs.perturbations import sample_absent_edge, sample_present_edge
from repro.serving import EdgeDelta, GraphStore


@pytest.fixture()
def store(tiny_graph):
    return GraphStore(tiny_graph, key="tiny")


def _absent(graph, seed=0):
    return sample_absent_edge(graph, rng=seed)


def _present(graph, seed=0):
    return sample_present_edge(graph, rng=seed)


class TestEdgeDelta:
    def test_edges_are_canonicalised(self):
        delta = EdgeDelta(inserts=[(5, 2)], deletes=[[9, 7]])
        assert delta.inserts == ((2, 5),)
        assert delta.deletes == ((7, 9),)
        assert delta.size == 2
        assert delta.endpoints.tolist() == [2, 5, 7, 9]
        assert delta.as_dict() == {"insert": [[2, 5]], "delete": [[7, 9]]}

    def test_rejects_self_loops(self):
        with pytest.raises(GraphDataError, match="self-loop"):
            EdgeDelta(inserts=[(3, 3)])

    def test_rejects_negative_nodes(self):
        with pytest.raises(GraphDataError, match="negative"):
            EdgeDelta(deletes=[(-1, 2)])

    def test_rejects_non_integer_pairs(self):
        with pytest.raises(GraphDataError, match="integer pairs"):
            EdgeDelta(inserts=[(0.5, 2)])
        with pytest.raises(GraphDataError, match="integer pairs"):
            EdgeDelta(inserts=[(True, 2)])
        with pytest.raises(GraphDataError, match="integer pairs"):
            EdgeDelta(inserts=[(1, 2, 3)])

    def test_rejects_duplicates_in_one_batch(self):
        with pytest.raises(GraphDataError, match="duplicate"):
            EdgeDelta(inserts=[(1, 2), (2, 1)])

    def test_rejects_insert_delete_overlap(self):
        with pytest.raises(GraphDataError, match="both insert and delete"):
            EdgeDelta(inserts=[(1, 2)], deletes=[(2, 1)])

    def test_numpy_integers_are_accepted(self):
        delta = EdgeDelta(inserts=[(np.int64(1), np.int64(4))])
        assert delta.inserts == ((1, 4),)


class TestApply:
    def test_apply_advances_epoch_and_digest(self, store, tiny_graph):
        assert store.epoch == 0
        assert store.digest == graph_fingerprint(tiny_graph.adjacency)
        u, v = _absent(tiny_graph)
        entry = store.apply(EdgeDelta(inserts=[(u, v)]))
        assert store.epoch == 1
        assert entry["epoch"] == 1
        assert entry["previous_epoch"] == 0
        epoch, graph = store.current()
        assert epoch == 1
        assert graph.num_edges == tiny_graph.num_edges + 1
        assert store.digest == graph_fingerprint(graph.adjacency)
        assert store.digest != graph_fingerprint(tiny_graph.adjacency)

    def test_apply_is_all_or_nothing(self, store, tiny_graph):
        """A batch with one bad edge leaves the epoch and graph untouched."""
        good = _absent(tiny_graph, seed=1)
        present = _present(tiny_graph, seed=1)
        with pytest.raises(GraphDataError, match="already present"):
            store.apply(EdgeDelta(inserts=[good, present]))
        assert store.epoch == 0
        assert store.current()[1].num_edges == tiny_graph.num_edges
        assert store.delta_log() == []

    def test_phantom_delete_rejected(self, store, tiny_graph):
        absent = _absent(tiny_graph, seed=2)
        with pytest.raises(GraphDataError, match="not present"):
            store.apply(EdgeDelta(deletes=[absent]))
        assert store.epoch == 0

    def test_empty_delta_rejected(self, store):
        with pytest.raises(GraphDataError, match="at least one edge"):
            store.apply(EdgeDelta())

    def test_non_delta_rejected(self, store):
        with pytest.raises(ConfigurationError, match="EdgeDelta"):
            store.apply({"insert": [[0, 1]]})

    def test_same_deltas_reproduce_the_same_digests(self, tiny_graph):
        first = GraphStore(tiny_graph)
        second = GraphStore(tiny_graph)
        delta = first.sample_delta(inserts=2, deletes=1, seed=9)
        first.apply(delta)
        second.apply(EdgeDelta(delta.inserts, delta.deletes))
        assert first.digest == second.digest


class TestHistory:
    def test_history_is_bounded_and_pins_rebuildable_epochs(self, tiny_graph):
        store = GraphStore(tiny_graph, max_history=3)
        for seed in range(4):
            store.apply(store.sample_delta(inserts=1, seed=seed))
        assert store.epoch == 4
        assert store.retained_epochs() == [2, 3, 4]
        assert store.graph_at(2) is not None
        with pytest.raises(ConfigurationError, match="not retained"):
            store.graph_at(0)
        with pytest.raises(ConfigurationError, match="not retained"):
            store.digest_at(1)

    def test_max_history_must_be_positive(self, tiny_graph):
        with pytest.raises(ConfigurationError):
            GraphStore(tiny_graph, max_history=0)

    def test_delta_log_since_filters(self, store, tiny_graph):
        for seed in range(3):
            store.apply(store.sample_delta(inserts=1, seed=seed))
        assert [entry["epoch"] for entry in store.delta_log()] == [1, 2, 3]
        assert [entry["epoch"] for entry in store.delta_log(since=2)] == [3]


class TestEndpointsBetween:
    def test_union_across_several_epochs(self, store):
        first = store.apply(store.sample_delta(inserts=1, deletes=1, seed=0))
        second = store.apply(store.sample_delta(inserts=1, seed=1))
        expected = sorted(set(first["endpoints"]) | set(second["endpoints"]))
        assert store.endpoints_between(0, 2).tolist() == expected
        assert store.endpoints_between(1, 2).tolist() == \
            sorted(second["endpoints"])
        assert store.endpoints_between(2, 2).size == 0

    def test_rejects_inverted_or_future_epochs(self, store):
        store.apply(store.sample_delta(inserts=1, seed=0))
        with pytest.raises(ConfigurationError, match="inverted"):
            store.endpoints_between(1, 0)
        with pytest.raises(ConfigurationError, match="has not happened"):
            store.endpoints_between(0, 5)


class TestSampleDelta:
    def test_sampled_delta_is_deterministic_and_applicable(self, store):
        first = store.sample_delta(inserts=3, deletes=2, seed=42)
        second = store.sample_delta(inserts=3, deletes=2, seed=42)
        assert first.as_dict() == second.as_dict()
        assert first.size == 5
        entry = store.apply(first)  # valid by construction
        assert entry["epoch"] == 1

    def test_negative_counts_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.sample_delta(inserts=-1)


class TestStatus:
    def test_status_shape_tracks_updates(self, store, tiny_graph):
        status = store.status()
        assert status["key"] == "tiny"
        assert status["epoch"] == 0
        assert status["nodes"] == tiny_graph.num_nodes
        assert status["edges"] == tiny_graph.num_edges
        assert status["updates"] == 0
        assert status["retained_epochs"] == [0]
        assert status["last_update_unix"] is None

        store.apply(store.sample_delta(inserts=2, seed=0))
        status = store.status()
        assert status["epoch"] == 1
        assert status["edges"] == tiny_graph.num_edges + 2
        assert status["updates"] == 1
        assert status["retained_epochs"] == [0, 1]
        assert status["last_update_unix"] is not None
