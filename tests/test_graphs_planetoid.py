"""Tests for the Planetoid content/cites loader (real-data entry point)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphDataError
from repro.graphs.planetoid import (
    PlanetoidLoadReport,
    load_planetoid,
    parse_cites_file,
    parse_content_file,
    write_planetoid,
)


def _write_tiny_dataset(directory, include_noise=True):
    """Write a 5-node content/cites pair with one unknown id, one dup and one self-loop."""
    content = directory / "tiny.content"
    cites = directory / "tiny.cites"
    content.write_text(
        "paper_a 1 0 0 1 genetics\n"
        "paper_b 0 1 0 1 genetics\n"
        "paper_c 0 0 1 0 theory\n"
        "paper_d 1 1 0 0 theory\n"
        "paper_e 0 1 1 0 systems\n"
    )
    lines = [
        "paper_a paper_b",
        "paper_b paper_c",
        "paper_c paper_d",
        "paper_d paper_e",
        "paper_b paper_a",      # duplicate (reverse orientation)
    ]
    if include_noise:
        lines += [
            "paper_a paper_unknown",   # unknown id -> skipped
            "paper_c paper_c",         # self-loop -> dropped
        ]
    cites.write_text("\n".join(lines) + "\n")
    return content, cites


class TestParsing:
    def test_content_file_parsed(self, tmp_path):
        content, _ = _write_tiny_dataset(tmp_path)
        node_ids, features, labels, label_names = parse_content_file(content)
        assert node_ids == ["paper_a", "paper_b", "paper_c", "paper_d", "paper_e"]
        assert features.shape == (5, 4)
        assert label_names == ("genetics", "systems", "theory")
        assert labels.tolist() == [0, 0, 2, 2, 1]

    def test_content_rejects_missing_file(self, tmp_path):
        with pytest.raises(GraphDataError):
            parse_content_file(tmp_path / "missing.content")

    def test_content_rejects_inconsistent_columns(self, tmp_path):
        path = tmp_path / "bad.content"
        path.write_text("a 1 0 x\nb 1 y\n")
        with pytest.raises(GraphDataError):
            parse_content_file(path)

    def test_content_rejects_duplicate_ids(self, tmp_path):
        path = tmp_path / "dup.content"
        path.write_text("a 1 0 x\na 0 1 y\n")
        with pytest.raises(GraphDataError):
            parse_content_file(path)

    def test_cites_file_skips_unknown_and_self_loops(self, tmp_path):
        content, cites = _write_tiny_dataset(tmp_path)
        node_ids, *_ = parse_content_file(content)
        edges, skipped, self_loops, duplicates = parse_cites_file(cites, node_ids)
        assert edges.shape == (4, 2)
        assert skipped == 1
        assert self_loops == 1
        assert duplicates == 1
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_cites_rejects_malformed_lines(self, tmp_path):
        content, _ = _write_tiny_dataset(tmp_path)
        node_ids, *_ = parse_content_file(content)
        bad = tmp_path / "bad.cites"
        bad.write_text("only_one_token\n")
        with pytest.raises(GraphDataError):
            parse_cites_file(bad, node_ids)


class TestLoadPlanetoid:
    def test_load_builds_valid_dataset_and_report(self, tmp_path):
        content, cites = _write_tiny_dataset(tmp_path)
        graph, report = load_planetoid(content, cites, name="tiny", train_per_class=1,
                                       num_val=1, num_test=1, seed=0)
        assert isinstance(report, PlanetoidLoadReport)
        assert graph.num_nodes == 5
        assert graph.num_edges == 4
        assert graph.num_classes == 3
        assert report.num_skipped_edges == 1
        assert report.num_self_loops_dropped == 1
        graph.validate()

    def test_feature_normalisation_rows_sum_to_one(self, tmp_path):
        content, cites = _write_tiny_dataset(tmp_path)
        graph, _ = load_planetoid(content, cites, train_per_class=1, num_val=1,
                                  num_test=1, normalize_features=True, seed=0)
        assert np.allclose(graph.features.sum(axis=1), 1.0)

    def test_unnormalised_features_preserved(self, tmp_path):
        content, cites = _write_tiny_dataset(tmp_path)
        graph, _ = load_planetoid(content, cites, train_per_class=1, num_val=1,
                                  num_test=1, normalize_features=False, seed=0)
        assert graph.features.max() == 1.0

    def test_fractional_split_mode(self, tmp_path):
        content, cites = _write_tiny_dataset(tmp_path)
        graph, _ = load_planetoid(content, cites, split="fractional", seed=0)
        total = graph.train_idx.size + graph.val_idx.size + graph.test_idx.size
        assert total == graph.num_nodes

    def test_invalid_split_rejected(self, tmp_path):
        content, cites = _write_tiny_dataset(tmp_path)
        with pytest.raises(GraphDataError):
            load_planetoid(content, cites, split="random_walk")


class TestRoundTrip:
    def test_write_then_load_preserves_structure(self, tmp_path, tiny_graph):
        content, cites = write_planetoid(tiny_graph, tmp_path, name="roundtrip")
        loaded, report = load_planetoid(content, cites, name="roundtrip",
                                        train_per_class=5, num_val=20, num_test=40,
                                        normalize_features=False, seed=0)
        assert loaded.num_nodes == tiny_graph.num_nodes
        assert loaded.num_edges == tiny_graph.num_edges
        assert loaded.num_classes == tiny_graph.num_classes
        assert report.num_skipped_edges == 0

    def test_gcon_trains_on_loaded_graph(self, tmp_path, tiny_graph):
        """End-to-end: the real-data entry point feeds straight into GCON."""
        from repro.core.config import GCONConfig
        from repro.core.model import GCON

        content, cites = write_planetoid(tiny_graph, tmp_path, name="e2e")
        loaded, _ = load_planetoid(content, cites, train_per_class=10, num_val=20,
                                   num_test=50, normalize_features=False, seed=0)
        config = GCONConfig(epsilon=4.0, alpha=0.8, propagation_steps=(1,),
                            encoder_dim=8, encoder_epochs=20, max_iterations=100)
        model = GCON(config).fit(loaded, seed=0)
        assert 0.0 <= model.score(loaded) <= 1.0
