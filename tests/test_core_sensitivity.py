"""Tests for Lemma 2: the closed-form sensitivity bounds on the aggregate features.

The key property test verifies that the *empirical* row-difference metric
ψ(Z) between edge-neighbouring graphs never exceeds the closed-form Ψ(Z)
bound, for random graphs, random removed edges, and a range of (alpha, m).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.propagation import Propagator
from repro.core.sensitivity import (
    aggregate_sensitivity,
    column_sum_bound,
    concatenated_sensitivity,
    empirical_row_difference,
)
from repro.exceptions import ConfigurationError
from repro.graphs.generators import CitationGraphSpec, generate_citation_graph
from repro.utils.math import row_normalize_l2


def build_graph(seed: int, nodes: int = 40):
    spec = CitationGraphSpec(name="sens", num_nodes=nodes, num_edges=int(2.2 * nodes),
                             num_features=6, num_classes=3, homophily=0.7,
                             train_per_class=2, num_val=5, num_test=10)
    return generate_citation_graph(spec, seed=seed)


def empirical_psi(graph, alpha: float, steps) -> float:
    """ψ(Z) between the graph and a neighbour missing one random edge."""
    edges = graph.edges()
    rng = np.random.default_rng(0)
    u, v = edges[rng.integers(0, edges.shape[0])]
    neighbour = graph.without_edge(int(u), int(v))
    features = row_normalize_l2(
        np.random.default_rng(1).normal(size=(graph.num_nodes, 6))
    )
    z_original = Propagator(graph.adjacency, alpha).propagate_concat(features, steps)
    z_neighbour = Propagator(neighbour.adjacency, alpha).propagate_concat(features, steps)
    return empirical_row_difference(z_original, z_neighbour)


class TestClosedForm:
    def test_zero_steps_has_zero_sensitivity(self):
        assert aggregate_sensitivity(0.5, 0) == 0.0

    def test_alpha_one_has_zero_sensitivity(self):
        assert aggregate_sensitivity(1.0, 5) == 0.0
        assert aggregate_sensitivity(1.0, math.inf) == 0.0

    def test_infinite_steps_limit(self):
        alpha = 0.3
        assert aggregate_sensitivity(alpha, math.inf) == pytest.approx(2 * (1 - alpha) / alpha)

    def test_monotone_increasing_in_steps(self):
        values = [aggregate_sensitivity(0.4, m) for m in (0, 1, 2, 5, 10, math.inf)]
        assert values == sorted(values)

    def test_monotone_decreasing_in_alpha(self):
        values = [aggregate_sensitivity(a, 5) for a in (0.2, 0.4, 0.6, 0.8, 1.0)]
        assert values == sorted(values, reverse=True)

    def test_closed_form_expression(self):
        alpha, m = 0.25, 3
        expected = 2 * (1 - alpha) / alpha * (1 - (1 - alpha) ** m)
        assert aggregate_sensitivity(alpha, m) == pytest.approx(expected)

    def test_concatenated_is_average(self):
        alpha = 0.5
        steps = [0, 2, math.inf]
        expected = np.mean([aggregate_sensitivity(alpha, s) for s in steps])
        assert concatenated_sensitivity(alpha, steps) == pytest.approx(expected)

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            aggregate_sensitivity(0.0, 2)
        with pytest.raises(ConfigurationError):
            aggregate_sensitivity(0.5, -1)
        with pytest.raises(ConfigurationError):
            concatenated_sensitivity(0.5, [])


class TestLemma2BoundHolds:
    """Property: empirical ψ(Z) never exceeds the closed-form Ψ(Z)."""

    @pytest.mark.parametrize("alpha", [0.2, 0.5, 0.8])
    @pytest.mark.parametrize("steps", [[1], [2], [5], [math.inf], [0, 2], [1, 2, 5]])
    def test_bound_on_random_graphs(self, alpha, steps):
        graph = build_graph(seed=11)
        bound = concatenated_sensitivity(alpha, steps)
        assert empirical_psi(graph, alpha, steps) <= bound + 1e-9

    @given(seed=st.integers(min_value=0, max_value=40),
           alpha=st.sampled_from([0.25, 0.5, 0.75]),
           steps=st.sampled_from([1, 2, 4, math.inf]))
    @settings(max_examples=20, deadline=None)
    def test_bound_property_random_edges(self, seed, alpha, steps):
        graph = build_graph(seed=seed % 5, nodes=30)
        edges = graph.edges()
        rng = np.random.default_rng(seed)
        u, v = edges[rng.integers(0, edges.shape[0])]
        neighbour = graph.without_edge(int(u), int(v))
        features = row_normalize_l2(rng.normal(size=(graph.num_nodes, 4)))
        z_original = Propagator(graph.adjacency, alpha).propagate_concat(features, [steps])
        z_neighbour = Propagator(neighbour.adjacency, alpha).propagate_concat(features, [steps])
        psi = empirical_row_difference(z_original, z_neighbour)
        assert psi <= concatenated_sensitivity(alpha, [steps]) + 1e-9

    def test_adding_an_edge_is_also_covered(self):
        """Neighbouring graphs can differ by an added edge as well."""
        graph = build_graph(seed=2, nodes=30)
        rng = np.random.default_rng(3)
        while True:
            u, v = rng.integers(0, graph.num_nodes, size=2)
            if u != v and graph.adjacency[u, v] == 0:
                break
        neighbour = graph.with_edge(int(u), int(v))
        features = row_normalize_l2(rng.normal(size=(graph.num_nodes, 5)))
        alpha, steps = 0.4, [2]
        z_original = Propagator(graph.adjacency, alpha).propagate_concat(features, steps)
        z_neighbour = Propagator(neighbour.adjacency, alpha).propagate_concat(features, steps)
        psi = empirical_row_difference(z_original, z_neighbour)
        assert psi <= concatenated_sensitivity(alpha, steps) + 1e-9


class TestColumnSumBound:
    def test_matches_lemma1_formula(self):
        assert column_sum_bound(5) == 3.0
        assert column_sum_bound(0) == 1.0
        assert column_sum_bound(3, clip=0.25) == 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            column_sum_bound(-1)
        with pytest.raises(ConfigurationError):
            column_sum_bound(3, clip=0.9)


class TestEmpiricalMetric:
    def test_zero_for_identical_matrices(self, rng):
        matrix = rng.normal(size=(5, 3))
        assert empirical_row_difference(matrix, matrix) == 0.0

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ConfigurationError):
            empirical_row_difference(rng.normal(size=(4, 2)), rng.normal(size=(5, 2)))
