"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_array_2d,
    check_in_range,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ConfigurationError):
            check_positive(0.0, "x")

    def test_accepts_zero_when_not_strict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive(-1.0, "x", strict=False)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ConfigurationError):
            check_positive(float("nan"), "x")
        with pytest.raises(ConfigurationError):
            check_positive(float("inf"), "x")

    def test_rejects_bool_and_strings(self):
        with pytest.raises(ConfigurationError):
            check_positive(True, "x")
        with pytest.raises(ConfigurationError):
            check_positive("1", "x")


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ConfigurationError):
            check_probability(0.0, "p", inclusive_low=False)
        with pytest.raises(ConfigurationError):
            check_probability(1.0, "p", inclusive_high=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            check_probability(1.5, "p")


class TestCheckInRange:
    def test_error_message_contains_name(self):
        with pytest.raises(ConfigurationError, match="alpha"):
            check_in_range(5.0, "alpha", low=0.0, high=1.0)


class TestCheckArray2d:
    def test_accepts_2d(self):
        out = check_array_2d([[1, 2], [3, 4]], "m")
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            check_array_2d(np.zeros(3), "m")

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            check_array_2d(np.array([[np.nan, 1.0]]), "m")
