"""Tests for repro.utils.math (stable primitives used by losses and models)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.math import log1pexp, one_hot, row_normalize_l2, sigmoid, softmax


class TestLog1pExp:
    def test_matches_naive_for_moderate_values(self):
        x = np.linspace(-20, 20, 101)
        np.testing.assert_allclose(log1pexp(x), np.log1p(np.exp(x)), rtol=1e-12)

    def test_no_overflow_for_large_values(self):
        out = log1pexp(np.array([1000.0, -1000.0]))
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(1000.0)
        assert out[1] == pytest.approx(0.0, abs=1e-12)

    @given(st.floats(min_value=-500, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_non_negative(self, x):
        assert log1pexp(np.array([x]))[0] >= 0.0


class TestSigmoid:
    def test_symmetry(self):
        x = np.linspace(-30, 30, 61)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), np.ones_like(x), atol=1e-12)

    def test_extremes(self):
        assert sigmoid(np.array([800.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-800.0]))[0] == pytest.approx(0.0)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(np.random.default_rng(0).normal(size=(5, 7)), axis=1)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5))

    def test_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))


class TestRowNormalize:
    def test_unit_norms(self):
        matrix = np.random.default_rng(0).normal(size=(10, 4))
        normalized = row_normalize_l2(matrix)
        np.testing.assert_allclose(np.linalg.norm(normalized, axis=1), np.ones(10))

    def test_zero_rows_stay_zero(self):
        matrix = np.zeros((3, 4))
        matrix[1] = [1.0, 0.0, 0.0, 0.0]
        normalized = row_normalize_l2(matrix)
        assert np.all(normalized[0] == 0.0)
        assert np.all(normalized[2] == 0.0)

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_norm_never_exceeds_one(self, rows, cols):
        matrix = np.random.default_rng(rows * 31 + cols).normal(size=(rows, cols))
        norms = np.linalg.norm(row_normalize_l2(matrix), axis=1)
        assert np.all(norms <= 1.0 + 1e-9)


class TestOneHot:
    def test_round_trip(self):
        labels = np.array([0, 2, 1, 2])
        encoded = one_hot(labels, 3)
        assert encoded.shape == (4, 3)
        np.testing.assert_array_equal(np.argmax(encoded, axis=1), labels)
        np.testing.assert_allclose(encoded.sum(axis=1), np.ones(4))

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 3]), 3)

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)
