"""Tests for the throttled sweep progress reporter.

A fake clock is injected everywhere so the throttle windows are exact:
no sleeps, no flaky timing margins.
"""

from __future__ import annotations

import io

from repro.runtime.progress import ProgressReporter


class FakeClock:
    """A manually advanced clock compatible with ``time.perf_counter``."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _reporter(total, *, min_interval=0.5, label="sweep", start=100.0):
    clock = FakeClock(start)
    stream = io.StringIO()
    reporter = ProgressReporter(total, stream=stream, min_interval=min_interval,
                                label=label, clock=clock)
    return reporter, clock, stream


def _lines(stream):
    return [line for line in stream.getvalue().splitlines() if line]


class TestThrottling:
    def test_first_update_always_emits(self):
        reporter, _clock, stream = _reporter(10)
        reporter.update()
        assert _lines(stream) == ["sweep: 1/10 cells (10%, 0.0s, eta 0s)"]

    def test_updates_inside_the_window_are_suppressed(self):
        reporter, clock, stream = _reporter(10)
        reporter.update()
        clock.advance(0.1)
        reporter.update()
        clock.advance(0.1)
        reporter.update()
        assert len(_lines(stream)) == 1

    def test_update_after_the_window_emits(self):
        reporter, clock, stream = _reporter(10)
        reporter.update()
        clock.advance(0.6)
        reporter.update()
        lines = _lines(stream)
        assert len(lines) == 2
        assert lines[1].startswith("sweep: 2/10 cells (20%, 0.6s")

    def test_reaching_total_bypasses_the_throttle(self):
        reporter, clock, stream = _reporter(2)
        reporter.update()
        clock.advance(0.01)
        reporter.update()
        lines = _lines(stream)
        assert len(lines) == 2
        assert "2/2 cells (100%" in lines[1]


class TestEta:
    def test_eta_extrapolates_elapsed_over_done(self):
        reporter, clock, stream = _reporter(4)
        clock.advance(2.0)
        reporter.update()  # 1 cell in 2s -> 3 remaining at 2s each
        assert "eta 6s" in _lines(stream)[0]

    def test_no_eta_before_any_cell_finishes(self):
        reporter, _clock, stream = _reporter(4)
        reporter.update(advance=0, note="starting")
        line = _lines(stream)[0]
        assert "eta" not in line
        assert "[starting]" in line

    def test_note_is_appended(self):
        reporter, _clock, stream = _reporter(4)
        reporter.update(note="GCON/cora_ml")
        assert _lines(stream)[0].endswith("[GCON/cora_ml]")


class TestZeroTotal:
    def test_zero_total_reports_100_percent_and_never_divides(self):
        reporter, _clock, stream = _reporter(0)
        reporter.update(advance=0)
        assert "0/0 cells (100%" in _lines(stream)[0]

    def test_zero_total_finish(self):
        reporter, clock, stream = _reporter(0)
        clock.advance(1.25)
        assert reporter.finish() == 1.25
        assert _lines(stream)[-1] == "sweep: finished 0/0 cells in 1.2s"


class TestFinish:
    def test_finish_returns_elapsed_and_prints_summary(self):
        reporter, clock, stream = _reporter(3, label="merge")
        reporter.update(advance=3)
        clock.advance(4.0)
        assert reporter.finish() == 4.0
        assert _lines(stream)[-1] == "merge: finished 3/3 cells in 4.0s"

    def test_finish_flushes_a_last_update_when_total_overestimated(self):
        # The 100% line never fires when done < total; finish() must still
        # report the honest final count, throttle or not.
        reporter, clock, stream = _reporter(10)
        reporter.update()
        clock.advance(0.01)
        reporter.update(advance=4)  # suppressed: inside the window, 5 < 10
        reporter.finish()
        lines = _lines(stream)
        assert lines[-2].startswith("sweep: 5/10 cells (50%")
        assert lines[-1].startswith("sweep: finished 5/10 cells")

    def test_finish_does_not_duplicate_the_final_update_when_complete(self):
        reporter, clock, stream = _reporter(2)
        reporter.update(advance=2)
        clock.advance(0.01)
        reporter.finish()
        lines = _lines(stream)
        assert len(lines) == 2
        assert lines[-1].startswith("sweep: finished 2/2 cells")
