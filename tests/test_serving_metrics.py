"""Tests for the serving observability layer (histograms + per-model metrics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Histogram,
    ServingMetrics,
)


class _FakeTicket:
    def __init__(self, size, submitted_at):
        self.nodes = np.zeros(size, dtype=np.int64)
        self.submitted_at = submitted_at


class TestHistogram:
    def test_buckets_are_fixed_and_log_spaced(self):
        ratios = [LATENCY_BUCKETS[i + 1] / LATENCY_BUCKETS[i]
                  for i in range(len(LATENCY_BUCKETS) - 1)]
        np.testing.assert_allclose(ratios, ratios[0])
        assert LATENCY_BUCKETS[0] <= 1e-4          # resolves fast matmuls
        assert LATENCY_BUCKETS[-1] > 30.0          # covers request timeouts
        assert list(SIZE_BUCKETS) == [float(2 ** i) for i in range(17)]

    def test_count_sum_min_max(self):
        hist = Histogram()
        for value in (0.001, 0.004, 0.002):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min == 0.001
        assert hist.max == 0.004
        assert hist.mean == pytest.approx(7e-3 / 3)

    def test_quantiles_bracket_the_data(self):
        hist = Histogram()
        values = [0.001 * (i + 1) for i in range(100)]  # 1ms .. 100ms
        for value in values:
            hist.observe(value)
        # Bucketed estimates: right bucket, interpolated inside it.
        for q, exact in ((0.5, 0.050), (0.95, 0.095), (0.99, 0.099)):
            estimate = hist.quantile(q)
            assert exact / 1.6 <= estimate <= exact * 1.6, (q, estimate)
        # Monotone in q and clamped to the observed range.
        assert hist.quantile(0.5) <= hist.quantile(0.95) <= hist.quantile(0.99)
        assert hist.min <= hist.quantile(0.5) <= hist.max

    def test_quantile_of_empty_histogram_is_zero(self):
        assert Histogram().quantile(0.99) == 0.0

    def test_overflow_bucket_reports_observed_max(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.quantile(0.99) == 50.0
        assert hist.as_dict()["buckets"] == {"+Inf": 1}

    def test_invalid_quantile_and_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram().quantile(0.0)
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_as_dict_scales_and_names_quantiles(self):
        hist = Histogram()
        hist.observe(0.010)
        out = hist.as_dict(scale=1e3)
        assert out["count"] == 1
        assert {"p50", "p95", "p99"} <= set(out)
        assert out["max"] == pytest.approx(10.0)  # milliseconds


class TestServingMetrics:
    def test_observe_batch_records_latency_per_ticket(self):
        metrics = ServingMetrics()
        tickets = [_FakeTicket(2, submitted_at=1.0),
                   _FakeTicket(3, submitted_at=1.5)]
        metrics.observe_batch("m-a", tickets, completed_at=2.0)
        model = metrics.model("m-a")
        assert model.latency.count == 2
        assert model.latency.max == pytest.approx(1.0)
        assert model.batch_tickets.count == 1
        assert model.batch_rows.max == 5.0
        assert model.failures == 0

    def test_failed_batches_count_failures_not_latency(self):
        metrics = ServingMetrics()
        metrics.observe_batch("m", [_FakeTicket(1, 0.0)], 1.0, failed=True)
        model = metrics.model("m")
        assert model.failures == 1
        assert model.latency.count == 0

    def test_models_are_isolated(self):
        metrics = ServingMetrics()
        metrics.observe_batch("a", [_FakeTicket(1, 0.0)], 0.5)
        metrics.observe_batch("b", [_FakeTicket(1, 0.0)], 5.0)
        assert metrics.model("a").latency.max == pytest.approx(0.5)
        assert metrics.model("b").latency.max == pytest.approx(5.0)
        assert metrics.labels() == ["a", "b"]

    def test_queue_depth_distribution(self):
        metrics = ServingMetrics()
        for depth in (1, 4, 4, 9):
            metrics.observe_queue_depth("m", depth)
        assert metrics.model("m").queue_depth.count == 4
        assert metrics.model("m").queue_depth.max == 9.0

    def test_as_dict_and_summary_line(self):
        metrics = ServingMetrics()
        assert metrics.summary_line() == "no traffic yet"
        metrics.observe_batch("demo@abc:private", [_FakeTicket(1, 0.0)], 0.002)
        payload = metrics.as_dict()
        assert set(payload) == {"demo@abc:private"}
        latency = payload["demo@abc:private"]["latency_ms"]
        assert latency["count"] == 1
        assert {"p50", "p95", "p99"} <= set(latency)
        line = metrics.summary_line()
        assert "demo@abc:private" in line and "p99=" in line
