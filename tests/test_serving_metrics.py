"""Tests for the serving observability layer (histograms + per-model metrics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Histogram,
    ServingMetrics,
)


class _FakeTicket:
    def __init__(self, size, submitted_at):
        self.nodes = np.zeros(size, dtype=np.int64)
        self.submitted_at = submitted_at


class TestHistogram:
    def test_buckets_are_fixed_and_log_spaced(self):
        ratios = [LATENCY_BUCKETS[i + 1] / LATENCY_BUCKETS[i]
                  for i in range(len(LATENCY_BUCKETS) - 1)]
        np.testing.assert_allclose(ratios, ratios[0])
        assert LATENCY_BUCKETS[0] <= 1e-4          # resolves fast matmuls
        assert LATENCY_BUCKETS[-1] > 30.0          # covers request timeouts
        assert list(SIZE_BUCKETS) == [float(2 ** i) for i in range(17)]

    def test_count_sum_min_max(self):
        hist = Histogram()
        for value in (0.001, 0.004, 0.002):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min == 0.001
        assert hist.max == 0.004
        assert hist.mean == pytest.approx(7e-3 / 3)

    def test_quantiles_bracket_the_data(self):
        hist = Histogram()
        values = [0.001 * (i + 1) for i in range(100)]  # 1ms .. 100ms
        for value in values:
            hist.observe(value)
        # Bucketed estimates: right bucket, interpolated inside it.
        for q, exact in ((0.5, 0.050), (0.95, 0.095), (0.99, 0.099)):
            estimate = hist.quantile(q)
            assert exact / 1.6 <= estimate <= exact * 1.6, (q, estimate)
        # Monotone in q and clamped to the observed range.
        assert hist.quantile(0.5) <= hist.quantile(0.95) <= hist.quantile(0.99)
        assert hist.min <= hist.quantile(0.5) <= hist.max

    def test_quantile_of_empty_histogram_is_zero(self):
        assert Histogram().quantile(0.99) == 0.0

    def test_overflow_bucket_reports_observed_max(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.quantile(0.99) == 50.0
        assert hist.as_dict()["buckets"] == {"+Inf": 1}

    def test_invalid_quantile_and_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram().quantile(-0.1)
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_edge_quantiles_are_exact_extrema(self):
        hist = Histogram()
        for value in (0.002, 0.010, 0.500):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.002
        assert hist.quantile(1.0) == 0.500
        # Empty histograms answer 0.0 at every quantile, edges included.
        assert Histogram().quantile(0.0) == 0.0
        assert Histogram().quantile(1.0) == 0.0

    def test_merge_folds_counts_and_keeps_quantiles_sound(self):
        source = Histogram()
        for value in (0.001, 0.004, 0.040):
            source.observe(value)
        target = Histogram()
        target.observe(0.002)
        target.merge(source.counts, total=source.total)
        assert target.count == 4
        assert target.total == pytest.approx(0.047)
        # Extrema widen to the merged buckets' edges, so quantile clamping
        # stays sound on a histogram that never observed directly.
        assert target.min <= 0.001
        assert target.max >= 0.040
        assert target.quantile(0.0) == target.min
        assert target.quantile(1.0) == target.max
        assert 0.0 < target.quantile(0.5) <= target.max

    def test_merge_into_empty_histogram(self):
        source = Histogram()
        source.observe(0.010)
        merged = Histogram().merge(source.counts, total=source.total)
        assert merged.count == 1
        assert merged.quantile(0.99) > 0.0
        assert merged.quantile(0.0) <= 0.010 <= merged.quantile(1.0) * 1.5

    def test_merge_accepts_missing_overflow_and_rejects_bad_shapes(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.merge([1, 1])  # no overflow entry: assumed empty
        assert hist.count == 2
        with pytest.raises(ValueError):
            hist.merge([1])
        with pytest.raises(ValueError):
            hist.merge([1, -1, 0])

    def test_merge_identity_with_observed_distribution(self):
        # Splitting a stream across two replicas and merging reproduces the
        # single-histogram quantiles exactly: counts are counts.
        values = [0.001 * (i + 1) for i in range(100)]
        whole, left, right = Histogram(), Histogram(), Histogram()
        for index, value in enumerate(values):
            whole.observe(value)
            (left if index % 2 else right).observe(value)
        merged = Histogram()
        merged.merge(left.counts, total=left.total)
        merged.merge(right.counts, total=right.total)
        assert merged.counts == whole.counts
        assert merged.count == whole.count
        # Same counts => same interpolated estimate, up to the clamping
        # difference (merged extrema are bucket edges, not exact values):
        # both land in the same bucket, so they agree within its width.
        for q in (0.5, 0.95, 0.99):
            assert whole.quantile(q) / 1.5 <= merged.quantile(q) \
                <= whole.quantile(q) * 1.5

    def test_snapshot_is_a_copy(self):
        hist = Histogram()
        hist.observe(0.003)
        snap = hist.snapshot()
        hist.observe(0.003)
        assert sum(snap["counts"]) == 1
        assert snap["count"] == 1
        assert hist.count == 2

    def test_bucket_quantile_edges(self):
        from repro.serving.metrics import bucket_quantile
        bounds = (1.0, 2.0, 4.0)
        assert bucket_quantile(bounds, [0, 0, 0, 0], 0.5) == 0.0
        assert bucket_quantile(bounds, [0, 3, 0, 0], 0.0) == 1.0
        assert bucket_quantile(bounds, [0, 3, 0, 0], 1.0) == 2.0
        assert bucket_quantile(bounds, [0, 0, 0, 2], 1.0,
                               overflow_value=9.0) == 9.0
        with pytest.raises(ValueError):
            bucket_quantile(bounds, [1, 0, 0, 0], 1.5)

    def test_as_dict_scales_and_names_quantiles(self):
        hist = Histogram()
        hist.observe(0.010)
        out = hist.as_dict(scale=1e3)
        assert out["count"] == 1
        assert {"p50", "p95", "p99"} <= set(out)
        assert out["max"] == pytest.approx(10.0)  # milliseconds


class TestServingMetrics:
    def test_observe_batch_records_latency_per_ticket(self):
        metrics = ServingMetrics()
        tickets = [_FakeTicket(2, submitted_at=1.0),
                   _FakeTicket(3, submitted_at=1.5)]
        metrics.observe_batch("m-a", tickets, completed_at=2.0)
        model = metrics.model("m-a")
        assert model.latency.count == 2
        assert model.latency.max == pytest.approx(1.0)
        assert model.batch_tickets.count == 1
        assert model.batch_rows.max == 5.0
        assert model.failures == 0

    def test_failed_batches_count_failures_not_latency(self):
        metrics = ServingMetrics()
        metrics.observe_batch("m", [_FakeTicket(1, 0.0)], 1.0, failed=True)
        model = metrics.model("m")
        assert model.failures == 1
        assert model.latency.count == 0

    def test_models_are_isolated(self):
        metrics = ServingMetrics()
        metrics.observe_batch("a", [_FakeTicket(1, 0.0)], 0.5)
        metrics.observe_batch("b", [_FakeTicket(1, 0.0)], 5.0)
        assert metrics.model("a").latency.max == pytest.approx(0.5)
        assert metrics.model("b").latency.max == pytest.approx(5.0)
        assert metrics.labels() == ["a", "b"]

    def test_queue_depth_distribution(self):
        metrics = ServingMetrics()
        for depth in (1, 4, 4, 9):
            metrics.observe_queue_depth("m", depth)
        assert metrics.model("m").queue_depth.count == 4
        assert metrics.model("m").queue_depth.max == 9.0

    def test_as_dict_and_summary_line(self):
        metrics = ServingMetrics()
        assert metrics.summary_line() == "no traffic yet"
        metrics.observe_batch("demo@abc:private", [_FakeTicket(1, 0.0)], 0.002)
        payload = metrics.as_dict()
        assert set(payload) == {"demo@abc:private"}
        latency = payload["demo@abc:private"]["latency_ms"]
        assert latency["count"] == 1
        assert {"p50", "p95", "p99"} <= set(latency)
        line = metrics.summary_line()
        assert "demo@abc:private" in line and "p99=" in line
