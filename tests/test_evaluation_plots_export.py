"""Tests for ASCII plotting helpers and result export/import round-trips."""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.evaluation.export import (
    export_figure,
    series_from_csv,
    series_from_json,
    series_to_csv,
    series_to_json,
)
from repro.evaluation.plots import (
    ascii_bar_chart,
    ascii_line_chart,
    render_figure_charts,
    sparkline,
)
from repro.exceptions import ConfigurationError


def _example_series():
    return {
        "cora_ml": {
            "GCON": {0.5: 0.72, 1.0: 0.75, 2.0: 0.78, 4.0: 0.80},
            "MLP": {0.5: 0.60, 1.0: 0.61, 2.0: 0.60, 4.0: 0.62},
        },
        "citeseer": {
            "GCON": {0.5: 0.64, 1.0: 0.66, 2.0: 0.67, 4.0: 0.68},
        },
    }


# --------------------------------------------------------------------------- #
# plots
# --------------------------------------------------------------------------- #
class TestSparkline:
    def test_monotone_values_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_values(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_input(self):
        assert sparkline([]) == ""

    def test_width_compression(self):
        assert len(sparkline(list(range(100)), width=10)) == 10


class TestBarChart:
    def test_contains_labels_and_values(self):
        chart = ascii_bar_chart({"GCON": 0.8, "MLP": 0.6}, width=20, title="scores")
        assert "GCON" in chart and "MLP" in chart and "scores" in chart
        assert "0.8000" in chart

    def test_longest_bar_belongs_to_maximum(self):
        chart = ascii_bar_chart({"small": 0.1, "large": 1.0}, width=10)
        lines = {line.split()[0]: line.count("█") for line in chart.splitlines()}
        assert lines["large"] > lines["small"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_bar_chart({}, width=10)
        with pytest.raises(ConfigurationError):
            ascii_bar_chart({"a": 1.0}, width=0)


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_line_chart(_example_series()["cora_ml"], width=40, height=10,
                                 title="figure 1", x_label="epsilon")
        assert "figure 1" in chart
        assert "legend:" in chart
        assert "o = GCON" in chart
        assert "epsilon" in chart

    def test_handles_infinite_x_values(self):
        series = {"GCON": {1.0: 0.7, 2.0: 0.72, math.inf: 0.74}}
        chart = ascii_line_chart(series, width=30, height=8)
        assert "inf" in chart

    def test_single_point_series(self):
        chart = ascii_line_chart({"GCON": {1.0: 0.5}}, width=20, height=6)
        assert "o" in chart

    def test_constant_series_does_not_crash(self):
        chart = ascii_line_chart({"flat": {1.0: 0.5, 2.0: 0.5}}, width=20, height=6)
        assert "flat" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_line_chart({}, width=30, height=10)
        with pytest.raises(ConfigurationError):
            ascii_line_chart({"a": {1.0: 1.0}}, width=5, height=3)

    def test_render_figure_charts_one_block_per_dataset(self):
        text = render_figure_charts(_example_series(), title="demo")
        assert text.count("[cora_ml]") == 1
        assert text.count("[citeseer]") == 1

    @given(values=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_chart_never_crashes_on_valid_series(self, values):
        series = {"m": {float(i): float(v) for i, v in enumerate(values)}}
        chart = ascii_line_chart(series, width=30, height=8)
        assert isinstance(chart, str) and chart


# --------------------------------------------------------------------------- #
# export / import
# --------------------------------------------------------------------------- #
class TestExport:
    def test_json_roundtrip(self, tmp_path):
        series = _example_series()
        path = series_to_json(series, tmp_path / "fig.json", metadata={"scale": 0.25})
        loaded, metadata = series_from_json(path)
        assert loaded == series
        assert metadata == {"scale": 0.25}

    def test_json_preserves_infinity(self, tmp_path):
        series = {"d": {"m": {math.inf: 0.5, 1.0: 0.4}}}
        loaded, _ = series_from_json(series_to_json(series, tmp_path / "inf.json"))
        assert loaded == series

    def test_json_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"not_series": 1}))
        with pytest.raises(ConfigurationError):
            series_from_json(path)

    def test_csv_roundtrip(self, tmp_path):
        series = _example_series()
        path = series_to_csv(series, tmp_path / "fig.csv")
        assert series_from_csv(path) == series

    def test_csv_rejects_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ConfigurationError):
            series_from_csv(path)

    def test_export_figure_writes_three_files(self, tmp_path):
        paths = export_figure(_example_series(), tmp_path, "figure1",
                              title="Figure 1", metadata={"repeats": 1})
        assert set(paths) == {"text", "csv", "json"}
        for path in paths.values():
            assert path.exists()
        text = paths["text"].read_text()
        assert "Figure 1" in text
        assert "legend:" in text  # the ASCII chart is appended

    def test_export_figure_without_charts(self, tmp_path):
        paths = export_figure(_example_series(), tmp_path, "plain", charts=False)
        assert "legend:" not in paths["text"].read_text()

    def test_export_figure_requires_name(self, tmp_path):
        with pytest.raises(ConfigurationError):
            export_figure(_example_series(), tmp_path, "")

    @given(
        values=st.dictionaries(
            st.sampled_from([0.5, 1.0, 2.0, 3.0, 4.0]),
            st.floats(0.0, 1.0), min_size=1, max_size=5,
        )
    )
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_roundtrip_property(self, tmp_path, values):
        series = {"dataset": {"method": {float(k): float(v) for k, v in values.items()}}}
        loaded, _ = series_from_json(series_to_json(series, tmp_path / "prop.json"))
        for x, y in series["dataset"]["method"].items():
            assert loaded["dataset"]["method"][x] == pytest.approx(y)
