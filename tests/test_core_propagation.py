"""Tests for PPR/APPR propagation (Eq. 9-11) including Lemma-1 invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.propagation import Propagator
from repro.exceptions import ConfigurationError
from repro.graphs.generators import CitationGraphSpec, generate_citation_graph


def random_graph(seed: int, nodes: int = 40, edges: int = 90):
    spec = CitationGraphSpec(name="rand", num_nodes=nodes, num_edges=edges, num_features=8,
                             num_classes=3, homophily=0.6, train_per_class=2, num_val=5,
                             num_test=10)
    return generate_citation_graph(spec, seed=seed)


class TestPropagationMatrices:
    def test_r0_is_identity(self, tiny_graph):
        propagator = Propagator(tiny_graph.adjacency, alpha=0.5)
        np.testing.assert_allclose(propagator.propagation_matrix(0), np.eye(tiny_graph.num_nodes))

    def test_recursion_matches_closed_form(self, triangle_adjacency):
        """R_m from the iterative recursion equals Eq. (6)'s explicit polynomial."""
        alpha = 0.3
        propagator = Propagator(triangle_adjacency, alpha=alpha)
        transition = propagator.transition.toarray()
        for m in (1, 2, 3, 5):
            explicit = alpha * sum(
                (1 - alpha) ** i * np.linalg.matrix_power(transition, i) for i in range(m)
            ) + (1 - alpha) ** m * np.linalg.matrix_power(transition, m)
            np.testing.assert_allclose(propagator.propagation_matrix(m), explicit, atol=1e-12)

    def test_ppr_limit_matches_matrix_inverse(self, triangle_adjacency):
        alpha = 0.4
        propagator = Propagator(triangle_adjacency, alpha=alpha)
        transition = propagator.transition.toarray()
        expected = alpha * np.linalg.inv(np.eye(4) - (1 - alpha) * transition)
        np.testing.assert_allclose(propagator.propagation_matrix(math.inf), expected, atol=1e-10)

    def test_finite_m_converges_to_ppr(self, triangle_adjacency):
        propagator = Propagator(triangle_adjacency, alpha=0.4)
        far = propagator.propagation_matrix(200)
        limit = propagator.propagation_matrix(math.inf)
        np.testing.assert_allclose(far, limit, atol=1e-8)

    def test_alpha_one_is_identity_for_all_steps(self, triangle_adjacency):
        propagator = Propagator(triangle_adjacency, alpha=1.0)
        for m in (1, 5, math.inf):
            np.testing.assert_allclose(propagator.propagation_matrix(m), np.eye(4), atol=1e-12)


class TestLemma1Invariants:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("steps", [1, 2, 4, math.inf])
    def test_rows_sum_to_one(self, seed, steps):
        graph = random_graph(seed)
        propagator = Propagator(graph.adjacency, alpha=0.4)
        matrix = propagator.propagation_matrix(steps)
        np.testing.assert_allclose(matrix.sum(axis=1), np.ones(graph.num_nodes), atol=1e-9)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("steps", [1, 2, 4, math.inf])
    def test_entries_nonnegative(self, seed, steps):
        graph = random_graph(seed)
        propagator = Propagator(graph.adjacency, alpha=0.4)
        assert propagator.propagation_matrix(steps).min() >= -1e-12

    @pytest.mark.parametrize("steps", [1, 2, 4, math.inf])
    def test_column_sums_bounded_by_lemma1(self, steps):
        """Column i of R_m sums to at most max((k_i + 1)/2, 1) (Lemma 1, p = 1/2)."""
        graph = random_graph(3)
        propagator = Propagator(graph.adjacency, alpha=0.3)
        matrix = propagator.propagation_matrix(steps)
        degrees = graph.degrees
        bounds = np.maximum((degrees + 1) / 2.0, 1.0)
        assert np.all(matrix.sum(axis=0) <= bounds + 1e-9)


class TestFeaturePropagation:
    def test_propagate_matches_matrix_product(self, triangle_adjacency, rng):
        propagator = Propagator(triangle_adjacency, alpha=0.5)
        features = rng.normal(size=(4, 3))
        for m in (0, 1, 3, math.inf):
            expected = propagator.propagation_matrix(m) @ features
            np.testing.assert_allclose(propagator.propagate(features, m), expected, atol=1e-10)

    def test_concat_scaling(self, triangle_adjacency, rng):
        propagator = Propagator(triangle_adjacency, alpha=0.5)
        features = rng.normal(size=(4, 2))
        concat = propagator.propagate_concat(features, [0, 2])
        assert concat.shape == (4, 4)
        np.testing.assert_allclose(concat[:, :2], features / 2.0)

    def test_concat_preserves_row_norm_bound(self, tiny_graph):
        """Rows of Z keep L2 norm <= 1 when input rows have norm <= 1."""
        from repro.utils.math import row_normalize_l2

        features = row_normalize_l2(np.random.default_rng(0).normal(size=(tiny_graph.num_nodes, 8)))
        propagator = Propagator(tiny_graph.adjacency, alpha=0.4)
        concat = propagator.propagate_concat(features, [1, 2, math.inf])
        assert np.linalg.norm(concat, axis=1).max() <= 1.0 + 1e-9

    def test_wrong_feature_rows_raise(self, triangle_adjacency):
        propagator = Propagator(triangle_adjacency, alpha=0.5)
        with pytest.raises(ConfigurationError):
            propagator.propagate(np.zeros((7, 2)), 1)

    def test_invalid_steps_raise(self, triangle_adjacency):
        propagator = Propagator(triangle_adjacency, alpha=0.5)
        with pytest.raises(ConfigurationError):
            propagator.propagate(np.zeros((4, 2)), -1)
        with pytest.raises(ConfigurationError):
            propagator.propagate(np.zeros((4, 2)), 1.5)

    def test_invalid_alpha(self, triangle_adjacency):
        with pytest.raises(ConfigurationError):
            Propagator(triangle_adjacency, alpha=0.0)


class TestInferenceOperator:
    def test_zero_steps_is_identity(self, triangle_adjacency):
        propagator = Propagator(triangle_adjacency, alpha=0.5)
        operator = propagator.inference_matrix(0, 0.3)
        np.testing.assert_allclose(operator.toarray(), np.eye(4))

    def test_single_hop_mixture(self, triangle_adjacency):
        propagator = Propagator(triangle_adjacency, alpha=0.5)
        operator = propagator.inference_matrix(2, 0.25).toarray()
        expected = 0.75 * propagator.transition.toarray() + 0.25 * np.eye(4)
        np.testing.assert_allclose(operator, expected)

    def test_inference_concat_shape_and_scaling(self, triangle_adjacency, rng):
        propagator = Propagator(triangle_adjacency, alpha=0.5)
        features = rng.normal(size=(4, 3))
        out = propagator.inference_concat(features, [0, 2], 0.5)
        assert out.shape == (4, 6)
        np.testing.assert_allclose(out[:, :3], features / 2.0)

    def test_invalid_inference_alpha(self, triangle_adjacency):
        propagator = Propagator(triangle_adjacency, alpha=0.5)
        with pytest.raises(ConfigurationError):
            propagator.inference_matrix(1, 1.5)


class TestPropagationCache:
    def _cache_and_propagator(self, adjacency, alpha=0.5):
        from repro.core.propagation import PropagationCache

        cache = PropagationCache()
        return cache, cache.propagator(adjacency, alpha)

    def test_cached_matches_uncached_bitwise(self, triangle_adjacency, rng):
        cache, cached = self._cache_and_propagator(triangle_adjacency)
        plain = Propagator(triangle_adjacency, alpha=0.5)
        features = rng.normal(size=(4, 3))
        for steps in (0, 1, 3, math.inf):
            assert np.array_equal(cached.propagate(features, steps),
                                  plain.propagate(features, steps))

    def test_transition_hit_on_second_propagator(self, triangle_adjacency):
        cache, _ = self._cache_and_propagator(triangle_adjacency)
        assert cache.stats["transition"] == {"hits": 0, "misses": 1}
        cache.propagator(triangle_adjacency, 0.8)
        assert cache.stats["transition"] == {"hits": 1, "misses": 1}

    def test_feature_cache_hit_and_miss(self, triangle_adjacency, rng):
        cache, propagator = self._cache_and_propagator(triangle_adjacency)
        features = rng.normal(size=(4, 3))
        first = propagator.propagate(features, 2)
        assert cache.stats["features"] == {"hits": 0, "misses": 1}
        second = propagator.propagate(features, 2)
        assert cache.stats["features"] == {"hits": 1, "misses": 1}
        assert np.array_equal(first, second)
        # Different step count or different features are misses.
        propagator.propagate(features, 3)
        propagator.propagate(features + 1.0, 2)
        assert cache.stats["features"] == {"hits": 1, "misses": 3}

    def test_ppr_solver_shared_across_repeats(self, triangle_adjacency, rng):
        cache, propagator = self._cache_and_propagator(triangle_adjacency)
        features = rng.normal(size=(4, 2))
        propagator.propagate(features, math.inf)
        # A second propagator over the same (graph, alpha) reuses the LU solve
        # even for fresh feature matrices.
        other = cache.propagator(triangle_adjacency, 0.5)
        other.propagate(rng.normal(size=(4, 2)), math.inf)
        assert cache.stats["solver"] == {"hits": 1, "misses": 1}

    def test_cached_result_is_a_private_copy(self, triangle_adjacency, rng):
        cache, propagator = self._cache_and_propagator(triangle_adjacency)
        features = rng.normal(size=(4, 3))
        first = propagator.propagate(features, 2)
        first[:] = 0.0  # caller mutates its copy
        second = propagator.propagate(features, 2)
        assert not np.array_equal(first, second)

    def test_clear_resets_entries_and_counters(self, triangle_adjacency, rng):
        cache, propagator = self._cache_and_propagator(triangle_adjacency)
        propagator.propagate(rng.normal(size=(4, 2)), 1)
        cache.clear()
        info = cache.info()
        assert all(layer["entries"] == 0 and layer["hits"] == 0 and layer["misses"] == 0
                   for layer in info.values())

    def test_fingerprint_is_content_based(self, triangle_adjacency):
        from repro.core.propagation import graph_fingerprint

        copy = triangle_adjacency.copy()
        assert graph_fingerprint(copy) == graph_fingerprint(triangle_adjacency)
        modified = triangle_adjacency.copy()
        modified[0, 1] = 0.0
        modified.eliminate_zeros()
        assert graph_fingerprint(modified) != graph_fingerprint(triangle_adjacency)

    def test_propagation_cache_context_scopes_caching(self, triangle_adjacency):
        from repro.core import propagation as P

        # Engine-scoped by default: plain library use gets no cache...
        assert P.cached_propagator(triangle_adjacency, 0.5).cache is None
        # ...opting in via the context manager activates one...
        cache = P.PropagationCache()
        with P.propagation_cache(cache):
            propagator = P.cached_propagator(triangle_adjacency, 0.5)
            assert propagator.cache is cache
        with P.propagation_cache(P.get_default_cache()):
            propagator = P.cached_propagator(triangle_adjacency, 0.5)
            assert propagator.cache is P.get_default_cache()
        # ...and the default is restored on exit.
        assert P.cached_propagator(triangle_adjacency, 0.5).cache is None
