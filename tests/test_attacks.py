"""Tests for the edge-inference attacks and their evaluation helpers."""

import numpy as np
import pytest

from repro.attacks import (
    attack_auc,
    influence_link_attack,
    sample_edge_candidates,
    similarity_link_attack,
)
from repro.baselines import GCNClassifier
from repro.exceptions import ConfigurationError


class TestCandidateSampling:
    def test_balanced_labels(self, tiny_graph):
        pairs, labels = sample_edge_candidates(tiny_graph, num_pairs=100, rng=0)
        assert pairs.shape[0] == labels.shape[0]
        assert abs(labels.mean() - 0.5) < 0.1

    def test_positives_are_real_edges(self, tiny_graph):
        pairs, labels = sample_edge_candidates(tiny_graph, num_pairs=60, rng=0)
        for (u, v), label in zip(pairs, labels):
            assert (tiny_graph.adjacency[u, v] != 0) == bool(label)

    def test_too_few_pairs_rejected(self, tiny_graph):
        with pytest.raises(ConfigurationError):
            sample_edge_candidates(tiny_graph, num_pairs=1)


class TestSimilarityAttack:
    def test_score_shape_and_metrics(self, rng):
        scores = rng.normal(size=(20, 4))
        pairs = np.array([[0, 1], [2, 3]])
        for metric in ("cosine", "correlation"):
            out = similarity_link_attack(scores, pairs, metric=metric)
            assert out.shape == (2,)

    def test_unknown_metric(self, rng):
        with pytest.raises(ConfigurationError):
            similarity_link_attack(rng.normal(size=(5, 3)), np.array([[0, 1]]), metric="jaccard")

    def test_attack_succeeds_against_non_private_gcn(self, tiny_graph):
        """A GCN smooths predictions along edges, so the attack AUC should exceed chance."""
        model = GCNClassifier(hidden_dim=16, epochs=120).fit(tiny_graph, seed=0)
        pairs, labels = sample_edge_candidates(tiny_graph, num_pairs=200, rng=1)
        scores = similarity_link_attack(model.decision_scores(tiny_graph), pairs)
        assert attack_auc(scores, labels) > 0.6

    def test_attack_fails_against_graph_free_model(self, tiny_graph):
        """Scores that ignore the graph should give an AUC near one half."""
        rng = np.random.default_rng(0)
        random_scores = rng.normal(size=(tiny_graph.num_nodes, tiny_graph.num_classes))
        pairs, labels = sample_edge_candidates(tiny_graph, num_pairs=300, rng=2)
        scores = similarity_link_attack(random_scores, pairs)
        assert abs(attack_auc(scores, labels) - 0.5) < 0.15


class TestInfluenceAttack:
    def test_detects_edges_of_a_propagation_model(self, tiny_graph):
        """Influence flows only along edges of a one-hop propagation model."""
        from repro.graphs.adjacency import row_stochastic_normalize

        transition = row_stochastic_normalize(tiny_graph.adjacency)

        def predict_fn(features):
            return np.asarray(transition @ features[:, :4])

        pairs, labels = sample_edge_candidates(tiny_graph, num_pairs=120, rng=3)
        scores = influence_link_attack(predict_fn, tiny_graph.features, pairs)
        assert attack_auc(scores, labels) > 0.9

    def test_no_influence_for_feature_only_model(self, tiny_graph):
        def predict_fn(features):
            return features[:, :3]

        pairs, labels = sample_edge_candidates(tiny_graph, num_pairs=60, rng=4)
        scores = influence_link_attack(predict_fn, tiny_graph.features, pairs)
        # Influence of node u on a different node v is exactly zero.
        assert np.allclose(scores, 0.0)

    def test_invalid_arguments(self, tiny_graph):
        with pytest.raises(ConfigurationError):
            influence_link_attack(lambda f: f, tiny_graph.features, np.zeros((2, 3)))
        with pytest.raises(ConfigurationError):
            influence_link_attack(lambda f: f, tiny_graph.features, np.zeros((2, 2), dtype=int),
                                  perturbation=0.0)
