"""Tests for the differentially private baselines (DPGCN, LPGNet, GAP, ProGAP, DP-SGD)."""

import numpy as np
import pytest

from repro.baselines import DPGCN, DPSGDGCN, GAP, LPGNet, ProGAP
from repro.baselines.dpgcn import lapgraph_perturb
from repro.baselines.gap import EDGE_AGGREGATION_SENSITIVITY, calibrate_hop_sigma
from repro.baselines.lpgnet import cluster_degree_vectors
from repro.exceptions import ConfigurationError
from repro.privacy.rdp import rdp_gaussian, rdp_to_dp


class TestLapGraph:
    def test_output_is_symmetric_binary(self, tiny_graph):
        perturbed = lapgraph_perturb(tiny_graph.adjacency, epsilon=1.0, rng=0)
        dense = perturbed.toarray()
        np.testing.assert_array_equal(dense, dense.T)
        assert set(np.unique(dense)) <= {0.0, 1.0}

    def test_edge_count_roughly_preserved(self, tiny_graph):
        perturbed = lapgraph_perturb(tiny_graph.adjacency, epsilon=4.0, rng=0)
        assert perturbed.nnz / 2 == pytest.approx(tiny_graph.num_edges, rel=0.15)

    def test_high_budget_recovers_graph(self, tiny_graph):
        perturbed = lapgraph_perturb(tiny_graph.adjacency, epsilon=200.0, rng=0)
        overlap = (perturbed.multiply(tiny_graph.adjacency)).nnz / tiny_graph.adjacency.nnz
        assert overlap > 0.9

    def test_low_budget_destroys_graph(self, tiny_graph):
        perturbed = lapgraph_perturb(tiny_graph.adjacency, epsilon=0.1, rng=0)
        overlap = (perturbed.multiply(tiny_graph.adjacency)).nnz / tiny_graph.adjacency.nnz
        assert overlap < 0.5

    def test_invalid_parameters(self, tiny_graph):
        with pytest.raises(ConfigurationError):
            lapgraph_perturb(tiny_graph.adjacency, epsilon=0.0)
        with pytest.raises(ConfigurationError):
            lapgraph_perturb(tiny_graph.adjacency, epsilon=1.0, count_fraction=1.5)


class TestDPGCN:
    def test_fit_predict_and_budget(self, tiny_graph):
        model = DPGCN(epsilon=1.0, hidden_dim=16, epochs=40).fit(tiny_graph, seed=0)
        assert model.predict(tiny_graph).shape == (tiny_graph.num_nodes,)
        assert model.ledger_.spent_epsilon == pytest.approx(1.0)

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            DPGCN(epsilon=0.0)


class TestLPGNet:
    def test_cluster_degree_vectors(self, path_graph):
        vectors = cluster_degree_vectors(path_graph.adjacency, path_graph.labels, 2)
        # Node 2 has neighbours 1 (class 0) and 3 (class 1).
        np.testing.assert_array_equal(vectors[2], [1.0, 1.0])
        np.testing.assert_array_equal(vectors[0], [1.0, 0.0])

    def test_fit_predict_and_budget(self, tiny_graph):
        model = LPGNet(epsilon=1.0, stages=2, hidden_dim=16, epochs=40).fit(tiny_graph, seed=0)
        assert model.predict(tiny_graph).shape == (tiny_graph.num_nodes,)
        assert model.ledger_.spent_epsilon <= 1.0 + 1e-9
        assert len(model.models_) == 2

    def test_single_stage_is_edge_free(self, tiny_graph):
        model = LPGNet(epsilon=1.0, stages=1, hidden_dim=16, epochs=40).fit(tiny_graph, seed=0)
        assert model.ledger_.spent_epsilon == 0.0

    def test_invalid_stages(self):
        with pytest.raises(ConfigurationError):
            LPGNet(stages=0)


class TestGAPCalibration:
    def test_calibrated_sigma_meets_budget(self):
        epsilon, delta, hops = 1.0, 1e-4, 3
        sigma = calibrate_hop_sigma(epsilon, delta, hops)
        rdp = hops * rdp_gaussian(sigma, sensitivity=EDGE_AGGREGATION_SENSITIVITY)
        achieved, _ = rdp_to_dp(rdp, delta)
        assert achieved <= epsilon + 1e-6

    def test_more_hops_need_more_noise(self):
        assert calibrate_hop_sigma(1.0, 1e-4, 4) > calibrate_hop_sigma(1.0, 1e-4, 1)

    def test_larger_epsilon_needs_less_noise(self):
        assert calibrate_hop_sigma(0.5, 1e-4, 2) > calibrate_hop_sigma(4.0, 1e-4, 2)


class TestGAPAndProGAP:
    def test_gap_fit_predict_and_accounting(self, tiny_graph):
        model = GAP(epsilon=1.0, hops=2, hidden_dim=16, epochs=40).fit(tiny_graph, seed=0)
        assert model.predict(tiny_graph).shape == (tiny_graph.num_nodes,)
        spent, delta = model.privacy_spent
        assert spent <= 1.0 + 1e-6
        assert delta == pytest.approx(1.0 / tiny_graph.num_edges)

    def test_gap_accuracy_improves_with_budget(self, tiny_graph):
        tight = GAP(epsilon=0.1, hops=2, hidden_dim=16, epochs=60).fit(tiny_graph, seed=0)
        loose = GAP(epsilon=8.0, hops=2, hidden_dim=16, epochs=60).fit(tiny_graph, seed=0)
        assert loose.sigma_ < tight.sigma_

    def test_progap_fit_predict_and_accounting(self, tiny_graph):
        model = ProGAP(epsilon=1.0, stages=2, hidden_dim=16, epochs=30).fit(tiny_graph, seed=0)
        assert model.predict(tiny_graph).shape == (tiny_graph.num_nodes,)
        spent, _ = model.privacy_spent
        assert spent <= 1.0 + 1e-6
        assert len(model.heads_) == 2

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ConfigurationError):
            GAP(epsilon=1.0, hops=0)
        with pytest.raises(ConfigurationError):
            ProGAP(epsilon=1.0, stages=1)


class TestDPSGD:
    def test_fit_predict_and_accounting(self, tiny_graph):
        model = DPSGDGCN(epsilon=1.0, steps=30, batch_size=32).fit(tiny_graph, seed=0)
        assert model.predict(tiny_graph).shape == (tiny_graph.num_nodes,)
        spent, _ = model.privacy_spent
        assert spent <= 1.0 + 1e-6

    def test_edge_sensitivity_multiplier(self, tiny_graph):
        one_hop = DPSGDGCN(hops=1)
        assert one_hop._edge_sensitivity_multiplier(tiny_graph) == 2.0
        two_hop = DPSGDGCN(hops=2)
        assert two_hop._edge_sensitivity_multiplier(tiny_graph) \
            == pytest.approx(2.0 * tiny_graph.degrees.max())

    def test_tighter_budget_means_more_noise(self, tiny_graph):
        tight = DPSGDGCN(epsilon=0.5, steps=30).fit(tiny_graph, seed=0)
        loose = DPSGDGCN(epsilon=4.0, steps=30).fit(tiny_graph, seed=0)
        assert tight.sigma_ > loose.sigma_

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            DPSGDGCN(epsilon=-1.0)
        with pytest.raises(ConfigurationError):
            DPSGDGCN(clipping_norm=0.0)
        with pytest.raises(ConfigurationError):
            DPSGDGCN(steps=0)
