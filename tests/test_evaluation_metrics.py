"""Tests for the classification metrics and the ROC-AUC helper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import accuracy, confusion_matrix, macro_f1, micro_f1, roc_auc
from repro.exceptions import ConfigurationError


class TestAccuracyAndConfusion:
    def test_perfect_prediction(self):
        labels = np.array([0, 1, 2, 1])
        assert accuracy(labels, labels) == 1.0
        assert micro_f1(labels, labels) == 1.0
        assert macro_f1(labels, labels) == 1.0

    def test_all_wrong(self):
        assert accuracy([0, 0], [1, 1]) == 0.0
        assert micro_f1([0, 0], [1, 1]) == 0.0

    def test_confusion_matrix_counts(self):
        matrix = confusion_matrix([0, 0, 1, 2], [0, 1, 1, 1])
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1
        assert matrix[1, 1] == 1 and matrix[2, 1] == 1
        assert matrix.sum() == 4

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            accuracy([], [])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            micro_f1([0, 1], [0])


class TestF1Scores:
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_micro_f1_equals_accuracy_for_single_label(self, labels):
        rng = np.random.default_rng(0)
        y_true = np.array(labels)
        y_pred = rng.integers(0, 4, size=len(labels))
        assert micro_f1(y_true, y_pred) == pytest.approx(accuracy(y_true, y_pred))

    def test_macro_f1_penalises_minority_class_errors(self):
        y_true = np.array([0] * 90 + [1] * 10)
        y_pred = np.zeros(100, dtype=int)  # always predicts the majority class
        assert micro_f1(y_true, y_pred) == pytest.approx(0.9)
        assert macro_f1(y_true, y_pred) < 0.5

    def test_macro_f1_known_value(self):
        y_true = [0, 0, 1, 1]
        y_pred = [0, 1, 1, 1]
        # class 0: precision 1, recall 0.5 -> F1 = 2/3; class 1: precision 2/3, recall 1 -> 0.8.
        assert macro_f1(y_true, y_pred) == pytest.approx((2 / 3 + 0.8) / 2)


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_reverse_separation(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=4000)
        scores = rng.normal(size=4000)
        assert roc_auc(labels, scores) == pytest.approx(0.5, abs=0.03)

    def test_ties_handled(self):
        assert roc_auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_requires_both_classes(self):
        with pytest.raises(ConfigurationError):
            roc_auc([1, 1], [0.3, 0.4])
