"""End-to-end observability over HTTP: /metrics exposition, request traces
(including one trace spanning a fleet proxy hop), the /stats process
section, the bitwise pin under tracing, and the ``repro trace`` CLI."""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.cli.main import main
from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.graphs.datasets import load_dataset
from repro.obs.aggregate import fleet_metrics_report
from repro.obs.prometheus import histogram_series, parse_prometheus_text
from repro.obs.trace import TRACE_HEADER
from repro.serving import (
    FleetMember,
    FleetRouter,
    InferenceService,
    ModelRegistry,
    serve_http,
)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora_ml", scale=0.06, seed=0)


@pytest.fixture(scope="module")
def model(graph):
    config = GCONConfig(epsilon=2.0, alpha=0.8, encoder_epochs=20,
                        encoder_dim=8, encoder_hidden=16)
    return GCON(config).fit(graph, seed=7)


@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory, model):
    root = tmp_path_factory.mktemp("obs-registry")
    registry = ModelRegistry(root / "reg")
    registry.publish(model, "demo", inference_mode="private",
                     training={"dataset": "cora_ml", "scale": 0.06,
                               "graph_seed": 0})
    return root / "reg"


class _Server:
    """One in-process traced server; optionally a fleet member."""

    def __init__(self, registry_dir, graph, *, trace=True,
                 fleet_dir=None, rid=None, ttl=5.0):
        self.service = InferenceService(ModelRegistry(registry_dir),
                                        graph=graph)
        self.service.prewarm("demo@latest")
        self.server = serve_http(self.service, port=0, trace=trace)
        self.port = self.server.server_address[1]
        self.member = None
        if fleet_dir is not None:
            self.member = FleetMember(fleet_dir, rid, "127.0.0.1", self.port,
                                      ttl=ttl)
            self.member.join(self.service.loaded_digests())
            self.member.start()
            self.server.fleet = FleetRouter(self.member, cache_ttl=0.0)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def close(self):
        if self.member is not None:
            self.member.leave()
        self.server.shutdown()
        self.server.server_close()
        self.service.close()


def _predict(port, payload, *, forwarded=False):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/predict",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    if forwarded:
        request.add_header("X-Fleet-Forwarded", "1")
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return (response.status, json.loads(response.read()),
                response.headers.get(TRACE_HEADER))


def _get(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=10.0) as response:
        return (response.status, response.read(),
                response.headers.get("Content-Type"))


@pytest.fixture()
def server(registry_dir, graph):
    instance = _Server(registry_dir, graph)
    yield instance
    instance.close()


class TestSingleServer:
    def test_predict_creates_a_complete_trace(self, server):
        status, _body, header = _predict(server.port,
                                         {"model": "demo", "nodes": [0, 3]})
        assert status == 200
        assert header is not None
        trace_id = header.split("-")[0]
        status, raw, _ = _get(server.port, f"/debug/traces/{trace_id}")
        assert status == 200
        trace = json.loads(raw)
        assert trace["status"] == "ok"
        names = {span["name"] for span in trace["spans"]}
        assert {"predict", "parse", "admission", "queue", "batch",
                "compute", "render"} <= names
        root = trace["spans"][0]
        assert root["name"] == "predict"
        assert root["attrs"]["http_status"] == 200
        assert root["attrs"]["nodes"] == 2
        # Every stage nests directly under the request root.
        for span in trace["spans"][1:]:
            assert span["parent_id"] == root["span_id"]
            assert span["trace_id"] == trace_id

    def test_debug_traces_lists_recent(self, server):
        for _ in range(2):
            _predict(server.port, {"model": "demo", "nodes": [1]})
        _status, raw, _ = _get(server.port, "/debug/traces")
        listing = json.loads(raw)
        assert listing["enabled"] is True
        assert len(listing["traces"]) >= 2
        assert listing["traces"][0]["root"] == "predict"
        status, _raw, _ = _get(server.port, "/debug/traces")
        assert status == 200

    def test_unknown_trace_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.port, "/debug/traces/deadbeef")
        assert excinfo.value.code == 404

    def test_client_supplied_header_continues_the_trace(self, server):
        trace_id, parent_id = "ab" * 16, "cd" * 8
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/predict",
            data=json.dumps({"model": "demo", "nodes": [0]}).encode(),
            headers={"Content-Type": "application/json",
                     TRACE_HEADER: f"{trace_id}-{parent_id}"})
        with urllib.request.urlopen(request, timeout=30.0) as response:
            echoed = response.headers.get(TRACE_HEADER)
        assert echoed.startswith(f"{trace_id}-")
        _status, raw, _ = _get(server.port, f"/debug/traces/{trace_id}")
        root = json.loads(raw)["spans"][0]
        assert root["parent_id"] == parent_id

    def test_metrics_page_parses_and_counters_are_monotone(self, server):
        _predict(server.port, {"model": "demo", "nodes": [0, 1]})
        _status, raw, content_type = _get(server.port, "/metrics")
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        first = {(name, tuple(sorted(labels.items()))): value
                 for name, labels, value
                 in parse_prometheus_text(raw.decode())}
        _predict(server.port, {"model": "demo", "nodes": [2]})
        # The response is written the instant the ticket resolves; the
        # observer callback lands just after, so poll the scrape briefly.
        deadline = time.monotonic() + 5.0
        while True:
            _status, raw, _ = _get(server.port, "/metrics")
            samples = parse_prometheus_text(raw.decode())
            series = histogram_series(samples,
                                      "repro_request_latency_seconds")
            if sum(data["count"] for data in series.values()) >= 2:
                break
            assert time.monotonic() < deadline, "latency count never reached 2"
            time.sleep(0.05)
        second = {(name, tuple(sorted(labels.items()))): value
                  for name, labels, value in samples}
        for key, value in first.items():
            name = key[0]
            if name.endswith("_total") or name.endswith("_bucket") \
                    or name.endswith("_count"):
                assert second.get(key, 0.0) >= value, key
        stages = histogram_series(samples, "repro_stage_duration_seconds")
        stage_names = {dict(key)["stage"] for key in stages}
        assert {"compute", "queue", "render"} <= stage_names

    def test_stats_exposes_the_process_section(self, server):
        _status, raw, _ = _get(server.port, "/stats")
        payload = json.loads(raw)
        process = payload["process"]
        assert process["uptime_seconds"] >= 0.0
        assert process["rss_bytes"] is None or process["rss_bytes"] > 0
        assert process["open_connections"] >= 1  # ours, at least
        assert process["parked_requests"] == 0

    def test_trace_cli_lists_and_renders(self, server, capsys):
        _status, _body, header = _predict(server.port,
                                          {"model": "demo", "nodes": [0]})
        trace_id = header.split("-")[0]
        assert main(["trace", "--url", server.url]) == 0
        listing = capsys.readouterr().out
        assert trace_id in listing
        assert main(["trace", trace_id, "--url", server.url]) == 0
        tree = capsys.readouterr().out
        assert f"trace {trace_id}" in tree
        assert "predict" in tree and "compute" in tree
        assert main(["trace", "0" * 32, "--url", server.url]) == 1
        assert "not found" in capsys.readouterr().err


class TestUntraced:
    def test_no_trace_serves_identical_scores(self, registry_dir, graph,
                                              model):
        nodes = [0, 4, 2, 9]
        traced = _Server(registry_dir, graph, trace=True)
        untraced = _Server(registry_dir, graph, trace=False)
        try:
            _status, traced_body, traced_header = _predict(
                traced.port, {"model": "demo", "nodes": nodes})
            _status, untraced_body, untraced_header = _predict(
                untraced.port, {"model": "demo", "nodes": nodes})
            # The bitwise pin holds with tracing on AND off, and both equal
            # the offline reference — observation never touches the data.
            offline = model.decision_scores(graph, mode="private")[nodes]
            assert np.array_equal(np.asarray(traced_body["scores"]), offline)
            assert traced_body["scores"] == untraced_body["scores"]
            assert traced_header is not None
            assert untraced_header is None
            _status, raw, _ = _get(untraced.port, "/debug/traces")
            assert json.loads(raw) == {"enabled": False, "traces": []}
            # /metrics still works untraced — just without stage families.
            _status, raw, _ = _get(untraced.port, "/metrics")
            names = {name for name, _l, _v
                     in parse_prometheus_text(raw.decode())}
            assert "repro_requests_total" in names
            assert "repro_stage_duration_seconds_bucket" not in names
        finally:
            traced.close()
            untraced.close()


@pytest.fixture()
def fleet(registry_dir, graph, tmp_path):
    servers = [_Server(registry_dir, graph, fleet_dir=tmp_path / "fleet",
                       rid=f"r{i}") for i in range(2)]
    registry = ModelRegistry(registry_dir)
    digest = registry.resolve("demo@latest").digest
    owner_id = servers[0].server.fleet.view.owner(digest).replica_id
    by_id = {s.member.replica_id: s for s in servers}
    owner = by_id.pop(owner_id)
    (relay,) = by_id.values()
    yield {"owner": owner, "relay": relay, "servers": servers}
    for server in servers:
        server.close()


class TestFleetTraces:
    def test_proxied_predict_is_one_cross_replica_trace(self, fleet):
        owner, relay = fleet["owner"], fleet["relay"]
        status, _body, header = _predict(relay.port,
                                         {"model": "demo", "nodes": [0, 5]})
        assert status == 200
        assert relay.server.fleet_stats["proxied"] == 1
        trace_id = header.split("-")[0]
        # Each replica stores its own half under the same trace id.
        _s, relay_raw, _ = _get(relay.port, f"/debug/traces/{trace_id}")
        _s, owner_raw, _ = _get(owner.port, f"/debug/traces/{trace_id}")
        relay_spans = json.loads(relay_raw)["spans"]
        owner_spans = json.loads(owner_raw)["spans"]
        assert {span["trace_id"] for span in relay_spans + owner_spans} \
            == {trace_id}
        relay_by_name = {span["name"]: span for span in relay_spans}
        proxy = relay_by_name["proxy"]
        assert proxy["parent_id"] == relay_by_name["predict"]["span_id"]
        assert proxy["attrs"]["http_status"] == 200
        # The owner's root predict span hangs off the relay's proxy hop.
        owner_root = owner_spans[0]
        assert owner_root["name"] == "predict"
        assert owner_root["parent_id"] == proxy["span_id"]
        owner_names = {span["name"] for span in owner_spans}
        assert {"parse", "admission", "queue", "batch", "compute",
                "render"} <= owner_names

    def test_trace_cli_merges_the_two_halves(self, fleet, capsys):
        owner, relay = fleet["owner"], fleet["relay"]
        _status, _body, header = _predict(relay.port,
                                          {"model": "demo", "nodes": [1]})
        trace_id = header.split("-")[0]
        assert main(["trace", trace_id,
                     "--url", relay.url, "--url", owner.url]) == 0
        tree = capsys.readouterr().out
        assert "proxy" in tree and "compute" in tree
        # The owner's subtree is nested under the relay's proxy span.
        lines = tree.splitlines()
        proxy_line = next(line for line in lines if "proxy" in line)
        compute_line = next(line for line in lines if "compute" in line)
        assert compute_line.index("compute") > proxy_line.index("proxy")

    def test_fleet_metrics_report_merges_replicas(self, fleet):
        owner, relay = fleet["owner"], fleet["relay"]
        _predict(owner.port, {"model": "demo", "nodes": [0]})
        # A forwarded request terminates locally on the relay, so both
        # replicas record latency for the model.
        _predict(relay.port, {"model": "demo", "nodes": [1]},
                 forwarded=True)
        replicas = [(server.member.replica_id, server.url)
                    for server in fleet["servers"]]
        deadline = time.monotonic() + 5.0
        while True:
            report = fleet_metrics_report(replicas)
            lines = [line for line in report.splitlines()
                     if "demo@" in line]
            if lines and int(lines[0].split()[1]) == 2:
                break
            assert time.monotonic() < deadline, report
            time.sleep(0.05)
        assert "scraped 2/2" in report
        assert "p99 ms" in report
        (model_line,) = lines
        assert int(model_line.split()[2]) >= 2  # merged request count

    def test_fleet_report_survives_an_unreachable_replica(self, fleet):
        owner = fleet["owner"]
        _predict(owner.port, {"model": "demo", "nodes": [0]})
        report = fleet_metrics_report([
            (owner.member.replica_id, owner.url),
            ("ghost", "http://127.0.0.1:9"),  # discard port: refused
        ])
        assert "scraped 1/2" in report
        assert "ghost" in report and "unreachable" in report
