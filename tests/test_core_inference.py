"""Tests for Algorithm-4 inference: mode parity, dimension checks, batching.

Pins three contracts of :mod:`repro.core.inference`:

* on an edgeless graph the private (Eq. 16) and public (Eq. 11) modes agree
  — with no edges there is nothing for either propagation to mix in, so the
  single-hop private operator and the full PPR/APPR propagation collapse to
  the identity;
* a theta whose row count does not match the aggregated feature dimension is
  rejected loudly;
* the stacked batched path (:func:`batched_inference_scores` over selected
  rows of :func:`inference_features`) agrees with a per-node loop, and row
  selection before the matmul is bitwise identical to row selection after it
  — the invariant the serving data plane rests on.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.inference import (
    batched_inference_scores,
    inference_features,
    private_inference_scores,
    public_inference_scores,
)
from repro.core.propagation import Propagator
from repro.exceptions import ConfigurationError


def _edgeless_propagator(num_nodes: int, alpha: float = 0.5) -> Propagator:
    adjacency = sp.csr_matrix((num_nodes, num_nodes))
    return Propagator(adjacency, alpha=alpha)


def _features(num_nodes: int = 12, dim: int = 5, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(num_nodes, dim))


class TestEdgelessParity:
    """With no edges, Eq. 16 and Eq. 11 must score identically."""

    @pytest.mark.parametrize("steps_list", [(1,), (2,), (1, 2), (2, float("inf"))])
    def test_private_equals_public_on_edgeless_graph(self, steps_list):
        propagator = _edgeless_propagator(10, alpha=0.5)
        features = _features(10, 4)
        theta = np.random.default_rng(1).normal(size=(4 * len(steps_list), 3))
        private = private_inference_scores(propagator, features, theta,
                                           steps_list, inference_alpha=0.5)
        public = public_inference_scores(propagator, features, theta, steps_list)
        np.testing.assert_allclose(private, public, rtol=0, atol=1e-12)

    def test_edgeless_propagation_is_identity(self):
        # alpha = 0.5 makes (1-a)*x + a*x exact in floating point, so the
        # parity is bitwise, not just close.
        propagator = _edgeless_propagator(8, alpha=0.5)
        features = _features(8, 3)
        for mode in ("private", "public"):
            aggregated = inference_features(propagator, features, (2,),
                                            mode=mode, inference_alpha=0.5)
            assert np.array_equal(aggregated, features)


class TestDimensionMismatch:
    def test_theta_row_mismatch_raises(self):
        propagator = _edgeless_propagator(6)
        features = _features(6, 4)
        theta = np.zeros((5, 3))  # aggregated dim is 4, not 5
        with pytest.raises(ConfigurationError, match="does not match theta rows"):
            private_inference_scores(propagator, features, theta, (2,),
                                     inference_alpha=0.5)
        with pytest.raises(ConfigurationError, match="does not match theta rows"):
            public_inference_scores(propagator, features, theta, (2,))
        with pytest.raises(ConfigurationError, match="does not match theta rows"):
            batched_inference_scores(features, theta)

    def test_unknown_mode_rejected(self):
        propagator = _edgeless_propagator(6)
        with pytest.raises(ConfigurationError, match="mode must be"):
            inference_features(propagator, _features(6, 4), (2,), mode="secret")

    def test_private_mode_requires_inference_alpha(self):
        propagator = _edgeless_propagator(6)
        with pytest.raises(ConfigurationError, match="inference_alpha"):
            inference_features(propagator, _features(6, 4), (2,), mode="private")


class TestBatchedPath:
    """The stacked serving path versus per-node scoring."""

    def _ring_propagator(self, num_nodes: int = 20) -> Propagator:
        rows = np.arange(num_nodes)
        cols = (rows + 1) % num_nodes
        data = np.ones(num_nodes)
        adjacency = sp.csr_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes))
        adjacency = adjacency + adjacency.T
        return Propagator(adjacency, alpha=0.6)

    @pytest.mark.parametrize("mode", ["private", "public"])
    def test_batched_equals_per_node_loop(self, mode):
        propagator = self._ring_propagator()
        features = _features(20, 6, seed=3)
        theta = np.random.default_rng(4).normal(size=(12, 4))
        aggregated = inference_features(propagator, features, (1, 2), mode=mode,
                                        inference_alpha=0.6)
        nodes = np.array([0, 7, 3, 19, 7])
        stacked = batched_inference_scores(aggregated[nodes], theta)
        looped = np.vstack([
            batched_inference_scores(aggregated[node:node + 1], theta)
            for node in nodes
        ])
        # A one-row matmul may take a different BLAS kernel than the stack,
        # so the loop comparison is allclose; the row-selection invariant
        # below is the bitwise one.
        np.testing.assert_allclose(stacked, looped, rtol=1e-12, atol=1e-14)

    @pytest.mark.parametrize("mode", ["private", "public"])
    def test_row_selection_commutes_with_the_matmul_bitwise(self, mode):
        """F[nodes] @ theta == (F @ theta)[nodes] bit for bit: served batches
        are pinned to offline full-graph scores."""
        propagator = self._ring_propagator()
        features = _features(20, 6, seed=5)
        theta = np.random.default_rng(6).normal(size=(12, 4))
        aggregated = inference_features(propagator, features, (1, 2), mode=mode,
                                        inference_alpha=0.6)
        full = batched_inference_scores(aggregated, theta)
        # Stacks of >= 2 rows take the same GEMM kernel as the full product
        # (a lone row may fall to GEMV and drift in the last ulp; the serving
        # layer pads singletons to two rows for exactly this reason).
        for nodes in ([4, 4], [0, 1, 2], [19, 0, 7, 7, 3]):
            nodes = np.asarray(nodes)
            assert np.array_equal(
                batched_inference_scores(aggregated[nodes], theta), full[nodes])

    def test_single_row_input_is_promoted_to_2d(self):
        theta = np.random.default_rng(7).normal(size=(4, 3))
        row = np.random.default_rng(8).normal(size=4)
        scores = batched_inference_scores(row, theta)
        assert scores.shape == (1, 3)
