"""Tests for the perturbed objective (Eq. 13) and the convex solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.losses import MultiLabelSoftMarginLoss, PseudoHuberLoss
from repro.core.objective import BatchedPerturbedObjective, PerturbedObjective
from repro.core.solver import (
    minimize_batched_objective,
    minimize_objective,
    solve_objective_sweep,
)
from repro.exceptions import ConfigurationError, OptimizationError
from repro.utils.math import one_hot, row_normalize_l2


def make_objective(seed=0, n=60, d=8, c=3, lam=0.1, loss=None, with_noise=True):
    rng = np.random.default_rng(seed)
    features = row_normalize_l2(rng.normal(size=(n, d)))
    labels = one_hot(rng.integers(0, c, size=n), c)
    noise = rng.normal(scale=0.5, size=(d, c)) if with_noise else None
    loss = loss or MultiLabelSoftMarginLoss(num_classes=c)
    return PerturbedObjective(features, labels, loss, lam, noise)


class TestObjectiveOracles:
    def test_gradient_matches_finite_differences(self):
        objective = make_objective()
        theta = np.random.default_rng(1).normal(size=(8, 3)) * 0.3
        analytic = objective.gradient(theta)
        eps = 1e-6
        numeric = np.zeros_like(theta)
        for i in range(theta.shape[0]):
            for j in range(theta.shape[1]):
                plus = theta.copy()
                plus[i, j] += eps
                minus = theta.copy()
                minus[i, j] -= eps
                numeric[i, j] = (objective.value(plus) - objective.value(minus)) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-8)

    def test_gradient_matches_for_pseudo_huber(self):
        objective = make_objective(loss=PseudoHuberLoss(num_classes=3, huber_delta=0.3))
        theta = np.random.default_rng(2).normal(size=(8, 3)) * 0.3
        value, grad = objective.value_and_gradient(theta)
        assert value == pytest.approx(objective.value(theta))
        np.testing.assert_allclose(grad, objective.gradient(theta), atol=1e-12)

    @given(t=st.floats(min_value=0.0, max_value=1.0), seed=st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_convexity_along_random_segments(self, t, seed):
        objective = make_objective(seed=3)
        rng = np.random.default_rng(seed)
        theta_a = rng.normal(size=(8, 3))
        theta_b = rng.normal(size=(8, 3))
        blended = t * theta_a + (1 - t) * theta_b
        upper = t * objective.value(theta_a) + (1 - t) * objective.value(theta_b)
        assert objective.value(blended) <= upper + 1e-9

    def test_strong_convexity_via_gradient_monotonicity(self):
        """<grad(a) - grad(b), a - b> >= lambda * ||a - b||^2 for a strongly convex objective."""
        lam = 0.3
        objective = make_objective(lam=lam)
        rng = np.random.default_rng(4)
        for _ in range(5):
            theta_a = rng.normal(size=(8, 3))
            theta_b = rng.normal(size=(8, 3))
            inner = np.sum((objective.gradient(theta_a) - objective.gradient(theta_b))
                           * (theta_a - theta_b))
            assert inner >= lam * np.sum((theta_a - theta_b) ** 2) - 1e-9

    def test_noise_term_shifts_value_linearly(self):
        base = make_objective(with_noise=False)
        noise = np.ones((8, 3))
        noisy = PerturbedObjective(base.features, base.labels, base.loss,
                                   base.quadratic_coefficient, noise)
        theta = np.full((8, 3), 0.2)
        expected_shift = np.sum(noise * theta) / base.num_labeled
        assert noisy.value(theta) - base.value(theta) == pytest.approx(expected_shift)

    def test_shape_validation(self):
        objective = make_objective()
        with pytest.raises(ConfigurationError):
            objective.value(np.zeros((3, 8)))
        with pytest.raises(ConfigurationError):
            PerturbedObjective(np.zeros((4, 2)), np.zeros((5, 3)),
                               MultiLabelSoftMarginLoss(3), 0.1)
        with pytest.raises(ConfigurationError):
            PerturbedObjective(np.zeros((4, 2)), np.zeros((4, 3)),
                               MultiLabelSoftMarginLoss(3), -0.1)
        with pytest.raises(ConfigurationError):
            PerturbedObjective(np.zeros((4, 2)), np.zeros((4, 3)),
                               MultiLabelSoftMarginLoss(3), 0.1, noise=np.zeros((3, 3)))


class TestSolvers:
    @pytest.mark.parametrize("method", ["lbfgs", "gradient_descent"])
    def test_reaches_stationary_point(self, method):
        objective = make_objective()
        result = minimize_objective(objective, method=method, max_iterations=2000, gtol=1e-7)
        assert result.gradient_norm < 1e-4
        assert result.converged

    def test_both_solvers_agree_on_the_unique_minimiser(self):
        objective = make_objective(lam=0.2)
        lbfgs = minimize_objective(objective, method="lbfgs", gtol=1e-9, max_iterations=3000)
        descent = minimize_objective(objective, method="gradient_descent", gtol=1e-7,
                                     max_iterations=5000)
        np.testing.assert_allclose(lbfgs.theta, descent.theta, atol=1e-3)

    def test_minimum_beats_random_points(self):
        objective = make_objective()
        result = minimize_objective(objective)
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert objective.value(result.theta) <= objective.value(rng.normal(size=(8, 3)))

    def test_optimality_condition_links_noise_and_gradient(self):
        """At the optimum, Eq. (40) holds: the data+reg gradient equals -B/n1."""
        objective = make_objective(lam=0.2)
        result = minimize_objective(objective, gtol=1e-10, max_iterations=3000)
        margins = objective.features @ result.theta
        residuals = objective.loss.derivative(margins, objective.labels)
        data_reg_grad = (objective.features.T @ residuals / objective.num_labeled
                         + objective.quadratic_coefficient * result.theta)
        np.testing.assert_allclose(data_reg_grad, -objective.noise / objective.num_labeled,
                                   atol=1e-5)

    def test_unknown_method_raises(self):
        with pytest.raises(OptimizationError):
            minimize_objective(make_objective(), method="newton")

    def test_initial_theta_is_respected(self):
        objective = make_objective()
        start = np.ones((8, 3))
        result = minimize_objective(objective, initial_theta=start)
        assert result.objective_value <= objective.value(start)


class TestSolverCrossCheck:
    """gradient_descent and lbfgs find the same minimiser of the same
    PerturbedObjective within gtol — cold and warm-started alike.

    The perturbed objective is strongly convex with modulus mu equal to its
    quadratic coefficient, so ||theta - theta*|| <= ||grad(theta)|| / mu:
    two solves that each stop at gradient norm <= gtol must agree to
    2 * gtol / mu regardless of the algorithm or the starting point.
    """

    GTOL = 1e-7
    LAM = 0.2

    def _cross_check(self, objective, initial_theta=None):
        lbfgs = minimize_objective(objective, method="lbfgs", gtol=self.GTOL,
                                   max_iterations=3000, initial_theta=initial_theta)
        descent = minimize_objective(objective, method="gradient_descent",
                                     gtol=self.GTOL, max_iterations=20000,
                                     initial_theta=initial_theta)
        assert lbfgs.gradient_norm <= 10 * self.GTOL
        assert descent.gradient_norm <= 10 * self.GTOL
        tolerance = 2 * 10 * self.GTOL / self.LAM
        assert float(np.max(np.abs(lbfgs.theta - descent.theta))) <= tolerance
        return lbfgs, descent

    @pytest.mark.parametrize("loss_cls", [MultiLabelSoftMarginLoss, PseudoHuberLoss])
    def test_cold_solves_agree_within_gtol(self, loss_cls):
        objective = make_objective(lam=self.LAM, loss=loss_cls(num_classes=3))
        self._cross_check(objective)

    def test_warm_started_solves_agree_within_gtol(self):
        """A warm start from a *different* objective's minimiser (the sweep
        pattern) must not bias either solver away from the optimum."""
        base = make_objective(lam=self.LAM)
        other = base.with_perturbation(
            self.LAM * 2.0, np.random.default_rng(5).normal(scale=0.3, size=(8, 3)))
        warm = minimize_objective(other, gtol=self.GTOL, max_iterations=3000).theta
        lbfgs, descent = self._cross_check(base, initial_theta=warm)
        cold = minimize_objective(base, gtol=self.GTOL, max_iterations=3000)
        tolerance = 2 * 10 * self.GTOL / self.LAM
        assert float(np.max(np.abs(lbfgs.theta - cold.theta))) <= tolerance
        assert float(np.max(np.abs(descent.theta - cold.theta))) <= tolerance


class TestObjectiveSweepSolving:
    def _perturbations(self, base, count=4, seed=2):
        rng = np.random.default_rng(seed)
        coefficients = [0.1 * (i + 1) for i in range(count)]
        noises = [rng.normal(scale=0.4, size=(base.dimension, base.num_classes))
                  for _ in range(count)]
        return coefficients, noises

    def test_with_perturbation_shares_data_term(self):
        base = make_objective(lam=0.1)
        clone = base.with_perturbation(0.3, None)
        assert clone.features is base.features
        assert clone.labels is base.labels
        assert clone.quadratic_coefficient == 0.3
        assert not clone.noise.any()
        with pytest.raises(ConfigurationError):
            base.with_perturbation(-0.1, None)
        with pytest.raises(ConfigurationError):
            base.with_perturbation(0.1, np.zeros((2, 2)))

    def test_warm_started_sweep_matches_cold_solves(self):
        base = make_objective(lam=0.1)
        coefficients, noises = self._perturbations(base)
        objectives = [base.with_perturbation(c, n)
                      for c, n in zip(coefficients, noises)]
        warm = solve_objective_sweep(objectives, gtol=1e-8, warm_start=True)
        cold = solve_objective_sweep(objectives, gtol=1e-8, warm_start=False)
        for warm_result, cold_result, coefficient in zip(warm, cold, coefficients):
            tolerance = 2 * 10 * 1e-8 / coefficient
            assert float(np.max(np.abs(warm_result.theta - cold_result.theta))) \
                <= tolerance

    def test_batched_objective_sums_its_blocks(self):
        base = make_objective(lam=0.1)
        coefficients, noises = self._perturbations(base, count=3)
        batched = BatchedPerturbedObjective(base, coefficients, noises)
        rng = np.random.default_rng(4)
        stacked = rng.normal(size=(base.dimension, 3 * base.num_classes)) * 0.2
        blocks = batched.split(stacked)
        expected = sum(batched.block_objective(i).value(block)
                       for i, block in enumerate(blocks))
        value, gradient = batched.value_and_gradient(stacked)
        np.testing.assert_allclose(value, expected, rtol=1e-12)
        for i, block in enumerate(blocks):
            start = i * base.num_classes
            np.testing.assert_allclose(
                gradient[:, start:start + base.num_classes],
                batched.block_objective(i).gradient(block), rtol=1e-12)

    def test_batched_minimisation_matches_independent_solves(self):
        base = make_objective(lam=0.1)
        coefficients, noises = self._perturbations(base)
        batched = BatchedPerturbedObjective(base, coefficients, noises)
        joint = minimize_batched_objective(batched, gtol=1e-8, max_iterations=3000)
        for i, result in enumerate(joint):
            single = minimize_objective(batched.block_objective(i), gtol=1e-8,
                                        max_iterations=3000)
            tolerance = 2 * 10 * 1e-8 / coefficients[i]
            assert result.converged
            assert float(np.max(np.abs(result.theta - single.theta))) <= tolerance

    def test_batched_objective_validates_inputs(self):
        base = make_objective()
        with pytest.raises(ConfigurationError):
            BatchedPerturbedObjective(base, [], [])
        with pytest.raises(ConfigurationError):
            BatchedPerturbedObjective(base, [0.1, 0.2], [None])
        with pytest.raises(ConfigurationError):
            BatchedPerturbedObjective(base, [-0.1], [None])
        with pytest.raises(ConfigurationError):
            BatchedPerturbedObjective(base, [0.1], [np.zeros((2, 2))])
        batched = BatchedPerturbedObjective(base, [0.1, 0.2], [None, None])
        with pytest.raises(ConfigurationError):
            batched.block_objective(2)
        with pytest.raises(ConfigurationError):
            batched.value(np.zeros((8, 3)))
