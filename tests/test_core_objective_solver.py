"""Tests for the perturbed objective (Eq. 13) and the convex solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.losses import MultiLabelSoftMarginLoss, PseudoHuberLoss
from repro.core.objective import PerturbedObjective
from repro.core.solver import minimize_objective
from repro.exceptions import ConfigurationError, OptimizationError
from repro.utils.math import one_hot, row_normalize_l2


def make_objective(seed=0, n=60, d=8, c=3, lam=0.1, loss=None, with_noise=True):
    rng = np.random.default_rng(seed)
    features = row_normalize_l2(rng.normal(size=(n, d)))
    labels = one_hot(rng.integers(0, c, size=n), c)
    noise = rng.normal(scale=0.5, size=(d, c)) if with_noise else None
    loss = loss or MultiLabelSoftMarginLoss(num_classes=c)
    return PerturbedObjective(features, labels, loss, lam, noise)


class TestObjectiveOracles:
    def test_gradient_matches_finite_differences(self):
        objective = make_objective()
        theta = np.random.default_rng(1).normal(size=(8, 3)) * 0.3
        analytic = objective.gradient(theta)
        eps = 1e-6
        numeric = np.zeros_like(theta)
        for i in range(theta.shape[0]):
            for j in range(theta.shape[1]):
                plus = theta.copy()
                plus[i, j] += eps
                minus = theta.copy()
                minus[i, j] -= eps
                numeric[i, j] = (objective.value(plus) - objective.value(minus)) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-8)

    def test_gradient_matches_for_pseudo_huber(self):
        objective = make_objective(loss=PseudoHuberLoss(num_classes=3, huber_delta=0.3))
        theta = np.random.default_rng(2).normal(size=(8, 3)) * 0.3
        value, grad = objective.value_and_gradient(theta)
        assert value == pytest.approx(objective.value(theta))
        np.testing.assert_allclose(grad, objective.gradient(theta), atol=1e-12)

    @given(t=st.floats(min_value=0.0, max_value=1.0), seed=st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_convexity_along_random_segments(self, t, seed):
        objective = make_objective(seed=3)
        rng = np.random.default_rng(seed)
        theta_a = rng.normal(size=(8, 3))
        theta_b = rng.normal(size=(8, 3))
        blended = t * theta_a + (1 - t) * theta_b
        upper = t * objective.value(theta_a) + (1 - t) * objective.value(theta_b)
        assert objective.value(blended) <= upper + 1e-9

    def test_strong_convexity_via_gradient_monotonicity(self):
        """<grad(a) - grad(b), a - b> >= lambda * ||a - b||^2 for a strongly convex objective."""
        lam = 0.3
        objective = make_objective(lam=lam)
        rng = np.random.default_rng(4)
        for _ in range(5):
            theta_a = rng.normal(size=(8, 3))
            theta_b = rng.normal(size=(8, 3))
            inner = np.sum((objective.gradient(theta_a) - objective.gradient(theta_b))
                           * (theta_a - theta_b))
            assert inner >= lam * np.sum((theta_a - theta_b) ** 2) - 1e-9

    def test_noise_term_shifts_value_linearly(self):
        base = make_objective(with_noise=False)
        noise = np.ones((8, 3))
        noisy = PerturbedObjective(base.features, base.labels, base.loss,
                                   base.quadratic_coefficient, noise)
        theta = np.full((8, 3), 0.2)
        expected_shift = np.sum(noise * theta) / base.num_labeled
        assert noisy.value(theta) - base.value(theta) == pytest.approx(expected_shift)

    def test_shape_validation(self):
        objective = make_objective()
        with pytest.raises(ConfigurationError):
            objective.value(np.zeros((3, 8)))
        with pytest.raises(ConfigurationError):
            PerturbedObjective(np.zeros((4, 2)), np.zeros((5, 3)),
                               MultiLabelSoftMarginLoss(3), 0.1)
        with pytest.raises(ConfigurationError):
            PerturbedObjective(np.zeros((4, 2)), np.zeros((4, 3)),
                               MultiLabelSoftMarginLoss(3), -0.1)
        with pytest.raises(ConfigurationError):
            PerturbedObjective(np.zeros((4, 2)), np.zeros((4, 3)),
                               MultiLabelSoftMarginLoss(3), 0.1, noise=np.zeros((3, 3)))


class TestSolvers:
    @pytest.mark.parametrize("method", ["lbfgs", "gradient_descent"])
    def test_reaches_stationary_point(self, method):
        objective = make_objective()
        result = minimize_objective(objective, method=method, max_iterations=2000, gtol=1e-7)
        assert result.gradient_norm < 1e-4
        assert result.converged

    def test_both_solvers_agree_on_the_unique_minimiser(self):
        objective = make_objective(lam=0.2)
        lbfgs = minimize_objective(objective, method="lbfgs", gtol=1e-9, max_iterations=3000)
        descent = minimize_objective(objective, method="gradient_descent", gtol=1e-7,
                                     max_iterations=5000)
        np.testing.assert_allclose(lbfgs.theta, descent.theta, atol=1e-3)

    def test_minimum_beats_random_points(self):
        objective = make_objective()
        result = minimize_objective(objective)
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert objective.value(result.theta) <= objective.value(rng.normal(size=(8, 3)))

    def test_optimality_condition_links_noise_and_gradient(self):
        """At the optimum, Eq. (40) holds: the data+reg gradient equals -B/n1."""
        objective = make_objective(lam=0.2)
        result = minimize_objective(objective, gtol=1e-10, max_iterations=3000)
        margins = objective.features @ result.theta
        residuals = objective.loss.derivative(margins, objective.labels)
        data_reg_grad = (objective.features.T @ residuals / objective.num_labeled
                         + objective.quadratic_coefficient * result.theta)
        np.testing.assert_allclose(data_reg_grad, -objective.noise / objective.num_labeled,
                                   atol=1e-5)

    def test_unknown_method_raises(self):
        with pytest.raises(OptimizationError):
            minimize_objective(make_objective(), method="newton")

    def test_initial_theta_is_respected(self):
        objective = make_objective()
        start = np.ones((8, 3))
        result = minimize_objective(objective, initial_theta=start)
        assert result.objective_value <= objective.value(start)
