"""Tests for nn losses and optimizers (convergence on simple problems)."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Linear,
    SGD,
    Tensor,
    binary_cross_entropy_with_logits,
    mean_squared_error,
    softmax_cross_entropy,
)
from repro.nn.module import Parameter
from repro.nn.optim import clip_gradients


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_give_log_c(self):
        logits = Tensor(np.zeros((4, 5)), requires_grad=True)
        loss = softmax_cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert float(loss.data) == pytest.approx(np.log(5))

    def test_perfect_prediction_gives_small_loss(self):
        logits = np.full((3, 3), -50.0)
        logits[np.arange(3), np.arange(3)] = 50.0
        loss = softmax_cross_entropy(Tensor(logits, requires_grad=True), np.arange(3))
        assert float(loss.data) < 1e-6

    def test_gradient_matches_softmax_minus_onehot(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        labels = np.array([0, 1, 2, 3, 0, 1])
        loss = softmax_cross_entropy(logits, labels)
        loss.backward()
        exp = np.exp(logits.data - logits.data.max(axis=1, keepdims=True))
        probs = exp / exp.sum(axis=1, keepdims=True)
        onehot = np.zeros_like(probs)
        onehot[np.arange(6), labels] = 1.0
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 6, atol=1e-10)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(Tensor(np.zeros((3, 2))), np.array([0, 1]))


class TestOtherLosses:
    def test_mse_zero_for_exact_match(self):
        predictions = Tensor(np.ones((2, 2)), requires_grad=True)
        assert float(mean_squared_error(predictions, np.ones((2, 2))).data) == 0.0

    def test_bce_positive(self):
        logits = Tensor(np.zeros((3, 2)), requires_grad=True)
        loss = binary_cross_entropy_with_logits(logits, np.ones((3, 2)))
        assert float(loss.data) == pytest.approx(np.log(2), rel=1e-6)


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([[1.0, -2.0], [0.5, 3.0]])
        param = Parameter(np.zeros((2, 2)))
        return target, param

    def test_sgd_converges_on_quadratic(self):
        target, param = self._quadratic_problem()
        optimizer = SGD([param], lr=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        target, param = self._quadratic_problem()
        optimizer = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            optimizer.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        target, param = self._quadratic_problem()
        optimizer = Adam([param], lr=0.1)
        for _ in range(400):
            optimizer.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        target = np.array([[5.0]])
        plain = Parameter(np.zeros((1, 1)))
        decayed = Parameter(np.zeros((1, 1)))
        for param, wd in ((plain, 0.0), (decayed, 1.0)):
            optimizer = SGD([param], lr=0.1, weight_decay=wd)
            for _ in range(300):
                optimizer.zero_grad()
                loss = ((param - Tensor(target)) ** 2).sum()
                loss.backward()
                optimizer.step()
        assert abs(decayed.data[0, 0]) < abs(plain.data[0, 0])

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(2))], lr=-1.0)

    def test_linear_regression_end_to_end(self):
        rng = np.random.default_rng(0)
        true_weight = rng.normal(size=(3, 1))
        inputs = rng.normal(size=(100, 3))
        targets = inputs @ true_weight
        layer = Linear(3, 1, rng=0)
        optimizer = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            optimizer.zero_grad()
            loss = mean_squared_error(layer(Tensor(inputs)), targets)
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_weight, atol=0.05)


class TestClipGradients:
    def test_norm_is_clipped(self):
        param = Parameter(np.zeros(4))
        param.grad = np.ones(4) * 10.0
        pre_norm = clip_gradients([param], max_norm=1.0)
        assert pre_norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-6)

    def test_small_gradients_untouched(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 0.01)
        clip_gradients([param], max_norm=1.0)
        np.testing.assert_allclose(param.grad, np.full(4, 0.01))

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_gradients([Parameter(np.zeros(2))], max_norm=0.0)
