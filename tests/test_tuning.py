"""Tests for the hyperparameter search subpackage (search spaces, drivers, presets)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import GCON
from repro.exceptions import ConfigurationError
from repro.tuning import (
    Categorical,
    GridSearch,
    RandomSearch,
    SearchSpace,
    TrialResult,
    TuningResult,
    UniformFloat,
    UniformInt,
    evaluate_trial,
    gcon_quick_space,
    gcon_search_space,
    make_gcon_factory,
)


# --------------------------------------------------------------------------- #
# search space primitives
# --------------------------------------------------------------------------- #
class TestParameters:
    def test_categorical_grid_and_sample(self, rng):
        parameter = Categorical("loss", ["a", "b", "c"])
        assert parameter.grid() == ["a", "b", "c"]
        assert parameter.sample(rng) in ("a", "b", "c")

    def test_categorical_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Categorical("x", [])

    def test_uniform_float_bounds(self, rng):
        parameter = UniformFloat("lr", 0.001, 0.1)
        for _ in range(20):
            value = parameter.sample(rng)
            assert 0.001 <= value <= 0.1
        grid = parameter.grid()
        assert grid[0] == pytest.approx(0.001)
        assert grid[-1] == pytest.approx(0.1)

    def test_log_uniform_grid_is_geometric(self):
        parameter = UniformFloat("lr", 1e-4, 1e-2, log=True, grid_points=3)
        grid = parameter.grid()
        assert grid[1] == pytest.approx(1e-3)

    def test_uniform_float_validation(self):
        with pytest.raises(ConfigurationError):
            UniformFloat("x", 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            UniformFloat("x", 0.0, 1.0, log=True)

    def test_uniform_int(self, rng):
        parameter = UniformInt("hops", 1, 4)
        assert parameter.grid() == [1, 2, 3, 4]
        assert parameter.sample(rng) in (1, 2, 3, 4)
        with pytest.raises(ConfigurationError):
            UniformInt("x", 3, 2)


class TestSearchSpace:
    def _space(self) -> SearchSpace:
        return SearchSpace([
            Categorical("alpha", [0.4, 0.8]),
            Categorical("loss", ["soft_margin", "pseudo_huber"]),
            UniformInt("hops", 1, 2),
        ])

    def test_grid_size_and_enumeration(self):
        space = self._space()
        assert space.grid_size() == 2 * 2 * 2
        configurations = list(space.grid())
        assert len(configurations) == 8
        assert all(set(c) == {"alpha", "loss", "hops"} for c in configurations)
        assert len({tuple(sorted(c.items())) for c in configurations}) == 8

    def test_sample_respects_domains(self):
        space = self._space()
        config = space.sample(0)
        assert config["alpha"] in (0.4, 0.8)
        assert config["hops"] in (1, 2)

    def test_subspace(self):
        space = self._space().subspace(["alpha"])
        assert space.names == ["alpha"]
        with pytest.raises(ConfigurationError):
            self._space().subspace(["missing"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            SearchSpace([Categorical("a", [1]), Categorical("a", [2])])

    def test_empty_space_rejected(self):
        with pytest.raises(ConfigurationError):
            SearchSpace([])

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_samples_always_within_grid_domains(self, seed):
        space = self._space()
        config = space.sample(seed)
        for parameter in space.parameters:
            assert config[parameter.name] in parameter.grid()


# --------------------------------------------------------------------------- #
# results bookkeeping
# --------------------------------------------------------------------------- #
class TestTuningResult:
    def _result(self) -> TuningResult:
        result = TuningResult()
        result.add(TrialResult(params={"alpha": 0.4}, scores=(0.5, 0.6), trial_id=0))
        result.add(TrialResult(params={"alpha": 0.8}, scores=(0.7, 0.8), trial_id=1))
        result.add(TrialResult(params={"alpha": 0.2}, scores=(0.4,), trial_id=2))
        return result

    def test_best_trial_and_params(self):
        result = self._result()
        assert result.best_params == {"alpha": 0.8}
        assert result.best_score == pytest.approx(0.75)

    def test_leaderboard_sorted(self):
        ranked = self._result().leaderboard()
        scores = [trial.mean_score for trial in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_leaderboard_top_k(self):
        assert len(self._result().leaderboard(top_k=2)) == 2

    def test_to_rows_aligned_with_headers(self):
        headers, rows = self._result().to_rows()
        assert headers[:3] == ["rank", "mean", "std"]
        assert all(len(row) == len(headers) for row in rows)

    def test_trial_statistics(self):
        trial = TrialResult(params={}, scores=(0.4, 0.6))
        assert trial.mean_score == pytest.approx(0.5)
        assert trial.std_score == pytest.approx(0.1)
        assert trial.num_repeats == 2

    def test_empty_result_raises(self):
        with pytest.raises(ConfigurationError):
            _ = TuningResult().best_trial


# --------------------------------------------------------------------------- #
# search drivers on a fast fake estimator
# --------------------------------------------------------------------------- #
class _FakeEstimator:
    """Scores configurations deterministically: prefers alpha=0.8 and hops=2."""

    def __init__(self, params):
        self.params = params

    def fit(self, graph, seed=None):
        return self

    def predict(self, graph, mode=None):
        quality = 0.0
        quality += 0.5 if self.params.get("alpha") == 0.8 else 0.0
        quality += 0.5 if self.params.get("hops") == 2 else 0.0
        predictions = graph.labels.copy()
        wrong = np.flatnonzero(np.ones_like(predictions))
        num_wrong = int(round((1.0 - quality) * wrong.size))
        predictions[wrong[:num_wrong]] = (predictions[wrong[:num_wrong]] + 1) % (
            graph.labels.max() + 1
        )
        return predictions


class TestSearchDrivers:
    def _space(self) -> SearchSpace:
        return SearchSpace([
            Categorical("alpha", [0.4, 0.8]),
            Categorical("hops", [1, 2]),
        ])

    def test_grid_search_finds_best_configuration(self, tiny_graph):
        search = GridSearch(_FakeEstimator, self._space(), repeats=1, seed=0)
        result = search.run(tiny_graph)
        assert len(result) == 4
        assert result.best_params == {"alpha": 0.8, "hops": 2}

    def test_random_search_runs_requested_trials(self, tiny_graph):
        search = RandomSearch(_FakeEstimator, self._space(), num_trials=6, seed=0)
        result = search.run(tiny_graph)
        assert len(result) == 6

    def test_evaluate_trial_repeats(self, tiny_graph):
        trial = evaluate_trial(_FakeEstimator, {"alpha": 0.8, "hops": 2}, tiny_graph,
                               repeats=3, seed=0)
        assert trial.num_repeats == 3
        assert trial.mean_score == pytest.approx(1.0)

    def test_evaluate_trial_requires_validation_split(self, path_graph):
        graph = path_graph
        graph.val_idx = np.array([], dtype=np.int64)
        with pytest.raises(ConfigurationError):
            evaluate_trial(_FakeEstimator, {}, graph)

    def test_driver_validation(self, tiny_graph):
        with pytest.raises(ConfigurationError):
            GridSearch(_FakeEstimator, self._space(), repeats=0)
        with pytest.raises(ConfigurationError):
            RandomSearch(_FakeEstimator, self._space(), num_trials=0)
        with pytest.raises(ConfigurationError):
            GridSearch(_FakeEstimator, self._space(), inference_mode="other")


# --------------------------------------------------------------------------- #
# GCON presets
# --------------------------------------------------------------------------- #
class TestGconPresets:
    def test_full_space_matches_appendix_q(self):
        space = gcon_search_space("cora_ml")
        names = set(space.names)
        assert {"alpha", "propagation_steps", "loss", "lambda_reg"} <= names
        alphas = space.subspace(["alpha"]).parameters[0].grid()
        assert alphas == [0.2, 0.4, 0.6, 0.8]

    def test_actor_space_uses_multi_branch_steps(self):
        space = gcon_search_space("actor")
        steps = space.subspace(["propagation_steps"]).parameters[0].grid()
        assert (0, 1, 2) in steps

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            gcon_search_space("ogbn_products")

    def test_factory_builds_gcon_with_overrides(self):
        factory = make_gcon_factory(epsilon=2.0, encoder_epochs=10)
        model = factory({"alpha": 0.8, "propagation_steps": (1,), "lambda_reg": 1.0})
        assert isinstance(model, GCON)
        assert model.config.epsilon == 2.0
        assert model.config.alpha == 0.8
        assert model.config.encoder_epochs == 10

    def test_factory_validates_epsilon(self):
        with pytest.raises(ConfigurationError):
            make_gcon_factory(epsilon=0.0)

    def test_quick_space_is_small(self):
        assert gcon_quick_space().grid_size() <= 32

    def test_quick_space_random_search_with_real_gcon(self, tiny_graph):
        """End-to-end smoke: two random GCON trials on the tiny graph."""
        factory = make_gcon_factory(
            epsilon=4.0, encoder_epochs=15, encoder_dim=8, max_iterations=80,
        )
        search = RandomSearch(factory, gcon_quick_space(), num_trials=2, seed=0)
        result = search.run(tiny_graph)
        assert len(result) == 2
        assert 0.0 <= result.best_score <= 1.0
        assert math.isfinite(result.best_score)
