"""The L0 user journey, end to end in one test module:

train → publish → serve → ``POST /v1/predict`` → ``POST /v1/graph/update``
→ re-query and observe the new epoch.

Everything runs over real HTTP against the selector frontend; scores are
checked **bitwise** against offline :meth:`GCON.decision_scores` on the
exact graph version each response claims to serve.  This is the journey the
CI graph-smoke job replays with the packaged CLI.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.graphs.datasets import load_dataset
from repro.serving import InferenceService, ModelRegistry, serve_http

NODES = [0, 7, 21, 3]


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora_ml", scale=0.06, seed=0)


@pytest.fixture(scope="module")
def model(graph):
    # Step 1 — train: a small private GCON release, the same recipe the
    # quickstart walks through.
    config = GCONConfig(epsilon=2.0, alpha=0.8, encoder_epochs=20,
                        encoder_dim=8, encoder_hidden=16)
    return GCON(config).fit(graph, seed=7)


@pytest.fixture(scope="module")
def server(tmp_path_factory, model, graph):
    # Step 2 — publish: the bundle lands in a content-addressed registry.
    registry = ModelRegistry(tmp_path_factory.mktemp("l0") / "registry")
    registry.publish(model, "journey", inference_mode="private",
                     training={"dataset": "cora_ml", "scale": 0.06,
                               "graph_seed": 0})
    # Step 3 — serve: real sockets, the production HTTP frontend.
    service = InferenceService(registry, graph=graph)
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    service.close()


def _call(server, path, body=None):
    url = f"http://127.0.0.1:{server.server_address[1]}{path}"
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if body else {})
    with urllib.request.urlopen(request, timeout=30.0) as response:
        assert response.status == 200
        return json.loads(response.read())


def test_l0_journey(server, model, graph):
    # Step 4 — query: served scores are bitwise the offline Algorithm-4
    # scores on the published graph (epoch 0).
    answer = _call(server, "/v1/predict", {"model": "journey",
                                           "nodes": NODES})
    assert answer["model"].startswith("journey@")
    assert answer["mode"] == "private"
    offline = model.decision_scores(graph)
    assert np.array_equal(np.asarray(answer["scores"]), offline[NODES])

    status = _call(server, "/v1/graph/status")
    assert status["graphs"]["default"]["epoch"] == 0

    # Step 5 — mutate: one sampled edge-delta batch advances the epoch
    # atomically and refreshes the warm session incrementally.
    update = _call(server, "/v1/graph/update",
                   {"sample_insert": 2, "sample_delete": 1, "seed": 13})
    assert update["previous_epoch"] == 0
    assert update["epoch"] == 1
    assert update["sessions_refreshed"] == 1

    # Step 6 — re-query: the answer now comes from epoch 1, and it is
    # bitwise the offline recompute on the *mutated* graph.
    status = _call(server, "/v1/graph/status")
    assert status["graphs"]["default"]["epoch"] == 1
    assert status["stats"]["updates"] == 1

    service = server.service
    _epoch, new_graph = service._resolve_store(None).current()
    assert new_graph.num_edges == graph.num_edges + 1  # +2 edges, -1 edge
    answer = _call(server, "/v1/predict", {"model": "journey",
                                           "nodes": NODES})
    offline_new = model.decision_scores(new_graph)
    assert np.array_equal(np.asarray(answer["scores"]), offline_new[NODES])

    # The per-model stats carry both epochs' sessions: the pinned history
    # and the freshly re-propagated one.
    stats = _call(server, "/stats")
    labels = set(stats["models"])
    assert any(label.endswith(":g0:private") for label in labels)
    assert any(label.endswith(":g1:private") for label in labels)
