"""Tests for live graph mutation end to end in the serving layer.

The two load-bearing claims of the versioned-graph refactor:

* after an epoch advance, served scores are **bitwise identical** to
  offline :meth:`GCON.decision_scores` on the *new* graph, while requests
  pinned to an older epoch (explicitly, or in flight when the update
  landed) keep scoring against *their* epoch — no torn reads;
* the control surfaces (``POST /v1/graph/update``, ``GET /v1/graph/status``,
  fleet lease epochs, ``/metrics`` gauges) tell the truth about which epoch
  each replica serves.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.exceptions import ConfigurationError, GraphDataError
from repro.graphs.datasets import load_dataset
from repro.serving import (
    FleetMember,
    FleetView,
    InferenceService,
    ModelRegistry,
    parse_graph_update_payload,
    serve_http,
)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora_ml", scale=0.06, seed=0)


@pytest.fixture(scope="module")
def model(graph):
    config = GCONConfig(epsilon=2.0, alpha=0.8, encoder_epochs=20,
                        encoder_dim=8, encoder_hidden=16)
    return GCON(config).fit(graph, seed=7)


@pytest.fixture()
def registry(tmp_path, model):
    registry = ModelRegistry(tmp_path / "reg")
    registry.publish(model, "demo", inference_mode="private",
                     training={"dataset": "cora_ml", "scale": 0.06,
                               "graph_seed": 0})
    return registry


@pytest.fixture()
def service(registry, graph):
    return InferenceService(registry, graph=graph)


@pytest.fixture()
def server(service):
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    service.close()


def _http(server, path, body=None, timeout=30.0):
    """One JSON round-trip against the test server; 4xx/5xx bodies are
    decoded too so tests can assert on the error shapes."""
    url = f"http://127.0.0.1:{server.server_address[1]}{path}"
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if body else {})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestServiceGraphUpdate:
    def test_update_advances_epoch_and_serves_the_new_graph_bitwise(
            self, service, model, graph):
        nodes = list(range(12))
        before = service.predict_scores("demo", nodes)
        assert np.array_equal(before,
                              model.decision_scores(graph)[nodes])

        result = service.apply_graph_update(sample_insert=2, sample_delete=1,
                                            seed=5)
        assert result["previous_epoch"] == 0
        assert result["epoch"] == 1
        assert result["inserted"] == 2
        assert result["deleted"] == 1
        assert result["sessions_refreshed"] == 1
        assert set(result["timings_ns"]) == {"apply", "repropagate"}

        store = service._resolve_store(None)
        epoch, new_graph = store.current()
        assert epoch == 1
        offline_new = model.decision_scores(new_graph)
        after = service.predict_scores("demo", nodes)
        assert np.array_equal(after, offline_new[nodes])

        stats = service.stats()["graph"]
        assert stats["updates"] == 1
        assert stats["sessions_rebuilt_incremental"] == 1
        assert stats["sessions_rebuilt_full"] == 0
        assert stats["rows_recomputed"] + stats["rows_reused"] \
            == graph.num_nodes
        assert stats["epochs"] == {"default": 1}

    def test_pinned_epoch_queries_keep_serving_their_graph(self, service,
                                                           model, graph):
        nodes = [0, 5, 9]
        old_offline = model.decision_scores(graph)
        service.predict_scores("demo", nodes)  # warm epoch 0
        service.apply_graph_update(sample_insert=2, seed=3)

        scores, _record, _mode = service.predict_batch("demo", nodes,
                                                       epoch=0)
        assert np.array_equal(scores, old_offline[nodes])
        # The default (unpinned) path serves the new epoch.
        _epoch, new_graph = service._resolve_store(None).current()
        fresh = service.predict_scores("demo", nodes)
        assert np.array_equal(fresh, model.decision_scores(new_graph)[nodes])

    def test_in_flight_ticket_scores_against_its_pinned_epoch(self, service,
                                                              model, graph):
        """The no-torn-reads proof: a request submitted *before* an epoch
        advance executes *after* it and still returns the old epoch's
        scores, bit for bit."""
        nodes = [1, 4, 7, 30]
        ticket, _record, _mode = service.submit_batch("demo", nodes)
        service.apply_graph_update(sample_insert=1, sample_delete=1, seed=11)
        executed = service.batcher.run_once()
        assert executed >= 1
        scores = ticket.result(5.0)
        assert np.array_equal(scores, model.decision_scores(graph)[nodes])
        # ... while a ticket submitted after the advance sees the new epoch.
        _epoch, new_graph = service._resolve_store(None).current()
        later, _record, _mode = service.submit_batch("demo", nodes)
        service.batcher.run_once()
        assert np.array_equal(later.result(5.0),
                              model.decision_scores(new_graph)[nodes])

    def test_explicit_edges_and_atomic_rejection(self, service, graph):
        from repro.graphs.perturbations import (
            sample_absent_edge,
            sample_present_edge,
        )
        u, v = sample_absent_edge(graph, rng=2)
        result = service.apply_graph_update(inserts=[(u, v)])
        assert result["epoch"] == 1
        assert sorted(result["endpoints"]) == sorted((u, v))

        # A bad batch (phantom delete) leaves the epoch and counters alone.
        a, b = sample_absent_edge(service._resolve_store(None).current()[1],
                                  rng=4)
        with pytest.raises(GraphDataError):
            service.apply_graph_update(deletes=[(a, b)])
        assert service.graph_epochs() == {"default": 1}
        assert service.stats()["graph"]["updates"] == 1
        present = sample_present_edge(graph, rng=2)
        with pytest.raises(GraphDataError, match="both insert and delete"):
            service.apply_graph_update(inserts=[present], deletes=[present])

    def test_first_query_after_update_full_rebuilds(self, service):
        """With no cached base session, the new epoch is built from scratch
        (counted as a full rebuild, not an incremental one)."""
        service.apply_graph_update(sample_insert=1, seed=0)
        service.predict_scores("demo", [0, 1])
        stats = service.stats()["graph"]
        assert stats["sessions_rebuilt_full"] == 1
        assert stats["sessions_rebuilt_incremental"] == 0

    def test_update_without_any_graph_is_rejected(self, registry):
        bare = InferenceService(registry)
        with pytest.raises(ConfigurationError, match="no serving graph"):
            bare.apply_graph_update(sample_insert=1)

    def test_unknown_graph_key_is_rejected(self, service):
        with pytest.raises(ConfigurationError, match="unknown graph"):
            service.apply_graph_update(sample_insert=1, graph="nope")

    def test_update_hook_fires_with_the_result(self, service):
        seen = []
        service.on_graph_update = seen.append
        service.apply_graph_update(sample_insert=1, seed=1)
        assert [event["epoch"] for event in seen] == [1]

    def test_graph_status_and_health_expose_epochs(self, service, graph):
        service.predict_scores("demo", [0])
        service.apply_graph_update(sample_insert=1, seed=2)
        status = service.graph_status()
        assert status["graphs"]["default"]["epoch"] == 1
        assert status["graphs"]["default"]["nodes"] == graph.num_nodes
        assert status["stats"]["updates"] == 1
        assert service.health()["graph_epochs"] == {"default": 1}

    def test_session_labels_carry_the_epoch(self, service):
        service.predict_scores("demo", [0])
        service.apply_graph_update(sample_insert=1, seed=7)
        service.predict_scores("demo", [0])
        labels = set(service.stats()["models"])
        assert any(label.endswith(":g0:private") for label in labels)
        assert any(label.endswith(":g1:private") for label in labels)


class TestParsePayload:
    def test_valid_payload_maps_to_kwargs(self):
        kwargs = parse_graph_update_payload(
            {"insert": [[0, 1]], "delete": [], "sample_delete": 2,
             "seed": 9, "graph": "default"})
        assert kwargs == {"inserts": [[0, 1]], "deletes": [],
                          "sample_insert": 0, "sample_delete": 2,
                          "seed": 9, "graph": "default"}

    @pytest.mark.parametrize("payload", [
        [],
        {"insert": "0:1"},
        {"sample_insert": -1},
        {"sample_insert": True},
        {"sample_insert": 1, "seed": "x"},
        {"sample_insert": 1, "graph": 3},
        {},
        {"insert": [], "delete": []},
    ])
    def test_malformed_payloads_raise(self, payload):
        with pytest.raises(ConfigurationError):
            parse_graph_update_payload(payload)


class TestHttpSurface:
    def test_update_and_status_round_trip(self, server, service, model):
        status, body = _http(server, "/v1/predict",
                             {"model": "demo", "nodes": [0, 3]})
        assert status == 200

        status, body = _http(server, "/v1/graph/update",
                             {"sample_insert": 2, "sample_delete": 1,
                              "seed": 5})
        assert status == 200
        assert body["epoch"] == 1
        assert body["previous_epoch"] == 0
        assert body["sessions_refreshed"] == 1
        assert set(body["timings_ms"]) == {"apply", "repropagate"}
        assert "timings_ns" not in body

        status, body = _http(server, "/v1/graph/status")
        assert status == 200
        assert body["graphs"]["default"]["epoch"] == 1
        assert body["stats"]["updates"] == 1

        # The served scores on the new epoch are still bitwise offline.
        _epoch, new_graph = service._resolve_store(None).current()
        status, body = _http(server, "/v1/predict",
                             {"model": "demo", "nodes": [0, 3]})
        assert status == 200
        offline = model.decision_scores(new_graph)[[0, 3]]
        assert np.array_equal(np.asarray(body["scores"]), offline)

    @pytest.mark.parametrize("payload,fragment", [
        ({}, "must name edges"),
        ({"insert": "0:1"}, "list of"),
        ({"sample_insert": -2}, "non-negative"),
        ({"sample_insert": 1, "graph": "nope"}, "unknown graph"),
        ({"insert": [[4, 4]]}, "self-loop"),
    ])
    def test_bad_updates_are_400(self, server, payload, fragment):
        status, body = _http(server, "/v1/graph/update", payload)
        assert status == 400
        assert fragment in body["error"]

    def test_second_concurrent_update_is_shed_with_429(self, server):
        class _Stuck:
            def done(self):
                return False

        server._graph_update = _Stuck()
        try:
            status, body = _http(server, "/v1/graph/update",
                                 {"sample_insert": 1})
        finally:
            server._graph_update = None
        assert status == 429
        assert "already in flight" in body["error"]

    def test_metrics_expose_epoch_and_cache_gauges(self, server, service):
        service.predict_scores("demo", [0])
        service.apply_graph_update(sample_insert=1, seed=1)
        port = server.server_address[1]
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics",
                                    timeout=10.0) as response:
            text = response.read().decode()
        assert 'repro_graph_epoch{graph="default"} 1' in text
        assert "repro_graph_updates_total 1" in text
        assert 'repro_graph_session_rebuilds_total{strategy="incremental"}' \
            in text
        assert "repro_graph_rows_recomputed_total" in text
        assert "repro_graph_rows_reused_total" in text
        assert "repro_propagation_cache_hits_total" in text
        assert "repro_propagation_cache_entries" in text


class TestFleetEpochAgreement:
    def test_lease_carries_graph_epochs(self, tmp_path):
        fleet_dir = tmp_path / "fleet"
        member = FleetMember(fleet_dir, "r0", "127.0.0.1", 8100, ttl=30.0)
        member.join(["d" * 64], graph_epochs={"default": 2})
        replica = FleetView(fleet_dir).replicas()[0]
        assert replica.graph_epochs == (("default", 2),)
        assert replica.as_dict()["graph_epochs"] == {"default": 2}
        member.advertise(["d" * 64], graph_epochs={"default": 3})
        replica = FleetView(fleet_dir).replicas()[0]
        assert replica.graph_epochs == (("default", 3),)

    def test_view_and_summary_report_agreement(self, tmp_path):
        fleet_dir = tmp_path / "fleet"
        first = FleetMember(fleet_dir, "r0", "127.0.0.1", 8100, ttl=30.0)
        first.join([], graph_epochs={"default": 4})
        second = FleetMember(fleet_dir, "r1", "127.0.0.1", 8200, ttl=30.0)
        second.join([], graph_epochs={"default": 4})
        view = FleetView(fleet_dir)
        agreement = view.as_dict()["graph_epochs"]
        assert agreement["default"] == {"epochs": [4], "agreed": True}
        summary = view.status().summary()
        assert "agreed @e4" in summary

        second.advertise([], graph_epochs={"default": 5})
        view = FleetView(fleet_dir)
        agreement = view.as_dict()["graph_epochs"]
        assert agreement["default"]["agreed"] is False
        assert sorted(agreement["default"]["epochs"]) == [4, 5]
        assert "DISAGREE" in view.status().summary()
