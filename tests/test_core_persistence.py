"""Tests for saving/loading GCON releases (the model-publication workflow)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.core.persistence import load_gcon, save_gcon
from repro.exceptions import ConfigurationError, NotFittedError


def _fitted_model(tiny_graph, **overrides):
    params = dict(epsilon=4.0, alpha=0.8, propagation_steps=(1,), encoder_dim=8,
                  encoder_epochs=20, max_iterations=100)
    params.update(overrides)
    return GCON(GCONConfig(**params)).fit(tiny_graph, seed=0)


class TestSave:
    def test_requires_fitted_model(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_gcon(GCON(GCONConfig(epsilon=1.0)), tmp_path / "model")

    def test_appends_npz_suffix(self, tiny_graph, tmp_path):
        model = _fitted_model(tiny_graph)
        path = save_gcon(model, tmp_path / "release")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_archive_contains_no_graph_data(self, tiny_graph, tmp_path):
        """The release file must hold only the DP release and public quantities."""
        model = _fitted_model(tiny_graph)
        path = save_gcon(model, tmp_path / "release.npz")
        with np.load(path) as archive:
            keys = set(archive.files)
        assert not any("adjacency" in key or "labels" in key for key in keys)
        assert "theta" in keys


class TestLoadRoundTrip:
    def test_theta_and_budget_preserved(self, tiny_graph, tmp_path):
        model = _fitted_model(tiny_graph, epsilon=2.0)
        path = save_gcon(model, tmp_path / "release.npz")
        loaded = load_gcon(path)
        assert np.allclose(loaded.theta_, model.theta_)
        assert loaded.privacy_spent == model.privacy_spent
        assert loaded.config.epsilon == 2.0
        assert loaded.config.propagation_steps == model.config.propagation_steps

    def test_predictions_identical_after_reload(self, tiny_graph, tmp_path):
        model = _fitted_model(tiny_graph)
        path = save_gcon(model, tmp_path / "release.npz")
        loaded = load_gcon(path)
        for mode in ("private", "public"):
            original = model.decision_scores(tiny_graph, mode=mode)
            restored = loaded.decision_scores(tiny_graph, mode=mode)
            assert np.allclose(original, restored, atol=1e-10)

    def test_infinite_propagation_step_round_trips(self, tiny_graph, tmp_path):
        model = _fitted_model(tiny_graph, propagation_steps=("inf",))
        loaded = load_gcon(save_gcon(model, tmp_path / "ppr.npz"))
        assert loaded.config.normalized_steps == (float("inf"),)
        predictions = loaded.predict(tiny_graph, mode="private")
        assert predictions.shape == (tiny_graph.num_nodes,)

    def test_loaded_model_scores_like_original(self, tiny_graph, tmp_path):
        model = _fitted_model(tiny_graph)
        loaded = load_gcon(save_gcon(model, tmp_path / "score.npz"))
        assert loaded.score(tiny_graph) == pytest.approx(model.score(tiny_graph))

    def test_loaded_model_requires_explicit_graph(self, tiny_graph, tmp_path):
        from repro.exceptions import NotFittedError as NotFitted

        loaded = load_gcon(save_gcon(_fitted_model(tiny_graph), tmp_path / "g.npz"))
        with pytest.raises(NotFitted):
            loaded.decision_scores(None)


class TestLoadValidation:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_gcon(tmp_path / "missing.npz")

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_gcon(path)

    def test_wrong_format_version_rejected(self, tiny_graph, tmp_path):
        model = _fitted_model(tiny_graph)
        path = save_gcon(model, tmp_path / "versioned.npz")
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays["format_version"] = np.array([999])
        np.savez(path, **arrays)
        with pytest.raises(ConfigurationError):
            load_gcon(path)
