"""Tests for saving/loading GCON releases (the model-publication workflow)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.core.persistence import PreparationStore, load_gcon, save_gcon
from repro.exceptions import ConfigurationError, NotFittedError


def _fitted_model(tiny_graph, **overrides):
    params = dict(epsilon=4.0, alpha=0.8, propagation_steps=(1,), encoder_dim=8,
                  encoder_epochs=20, max_iterations=100)
    params.update(overrides)
    return GCON(GCONConfig(**params)).fit(tiny_graph, seed=0)


class TestSave:
    def test_requires_fitted_model(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_gcon(GCON(GCONConfig(epsilon=1.0)), tmp_path / "model")

    def test_appends_npz_suffix(self, tiny_graph, tmp_path):
        model = _fitted_model(tiny_graph)
        path = save_gcon(model, tmp_path / "release")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_archive_contains_no_graph_data(self, tiny_graph, tmp_path):
        """The release file must hold only the DP release and public quantities."""
        model = _fitted_model(tiny_graph)
        path = save_gcon(model, tmp_path / "release.npz")
        with np.load(path) as archive:
            keys = set(archive.files)
        assert not any("adjacency" in key or "labels" in key for key in keys)
        assert "theta" in keys


class TestLoadRoundTrip:
    def test_theta_and_budget_preserved(self, tiny_graph, tmp_path):
        model = _fitted_model(tiny_graph, epsilon=2.0)
        path = save_gcon(model, tmp_path / "release.npz")
        loaded = load_gcon(path)
        assert np.allclose(loaded.theta_, model.theta_)
        assert loaded.privacy_spent == model.privacy_spent
        assert loaded.config.epsilon == 2.0
        assert loaded.config.propagation_steps == model.config.propagation_steps

    def test_predictions_identical_after_reload(self, tiny_graph, tmp_path):
        model = _fitted_model(tiny_graph)
        path = save_gcon(model, tmp_path / "release.npz")
        loaded = load_gcon(path)
        for mode in ("private", "public"):
            original = model.decision_scores(tiny_graph, mode=mode)
            restored = loaded.decision_scores(tiny_graph, mode=mode)
            assert np.allclose(original, restored, atol=1e-10)

    def test_infinite_propagation_step_round_trips(self, tiny_graph, tmp_path):
        model = _fitted_model(tiny_graph, propagation_steps=("inf",))
        loaded = load_gcon(save_gcon(model, tmp_path / "ppr.npz"))
        assert loaded.config.normalized_steps == (float("inf"),)
        predictions = loaded.predict(tiny_graph, mode="private")
        assert predictions.shape == (tiny_graph.num_nodes,)

    def test_loaded_model_scores_like_original(self, tiny_graph, tmp_path):
        model = _fitted_model(tiny_graph)
        loaded = load_gcon(save_gcon(model, tmp_path / "score.npz"))
        assert loaded.score(tiny_graph) == pytest.approx(model.score(tiny_graph))

    def test_loaded_model_requires_explicit_graph(self, tiny_graph, tmp_path):
        from repro.exceptions import NotFittedError as NotFitted

        loaded = load_gcon(save_gcon(_fitted_model(tiny_graph), tmp_path / "g.npz"))
        with pytest.raises(NotFitted):
            loaded.decision_scores(None)


class TestLoadValidation:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_gcon(tmp_path / "missing.npz")

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_gcon(path)

    def test_wrong_format_version_rejected(self, tiny_graph, tmp_path):
        model = _fitted_model(tiny_graph)
        path = save_gcon(model, tmp_path / "versioned.npz")
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays["format_version"] = np.array([999])
        np.savez(path, **arrays)
        with pytest.raises(ConfigurationError):
            load_gcon(path)


def _preparation_config(**overrides) -> GCONConfig:
    params = dict(epsilon=1.0, alpha=0.8, propagation_steps=(1,), encoder_dim=8,
                  encoder_hidden=16, encoder_epochs=20, max_iterations=100)
    params.update(overrides)
    return GCONConfig(**params)


class TestPreparationStore:
    def test_miss_then_hit(self, tiny_graph, tmp_path):
        store = PreparationStore(tmp_path / "prep")
        config = _preparation_config()
        assert store.fetch(config, tiny_graph, 0) is None
        store.get_or_prepare(GCON(config), tiny_graph, 0)
        assert store.fetch(config, tiny_graph, 0) is not None
        assert store.stats["misses"] == 2
        assert store.stats["hits"] == 1
        assert store.info()["entries"] == 1

    def test_cache_hit_is_bitwise_identical_to_cold_prepare(self, tiny_graph, tmp_path):
        store = PreparationStore(tmp_path / "prep")
        config = _preparation_config()
        cold = GCON(config).prepare(tiny_graph, seed=3)
        store.put(config, tiny_graph, 3, cold)
        cached = store.fetch(config, tiny_graph, 3)
        assert np.array_equal(cached.aggregated, cold.aggregated)
        assert np.array_equal(cached.train_idx, cold.train_idx)
        assert np.array_equal(cached.labels, cold.labels)
        cold_state = cold.encoder._require_fitted().state_dict()
        cached_state = cached.encoder._require_fitted().state_dict()
        assert cold_state.keys() == cached_state.keys()
        for name in cold_state:
            assert np.array_equal(cold_state[name], cached_state[name]), name
        # The real invariant: fitting from the cached bundle yields bitwise
        # the same released parameters as fitting from the cold one.
        cold_model = GCON(config).fit(tiny_graph, seed=3, prepared=cold)
        cached_model = GCON(config).fit(tiny_graph, seed=3, prepared=cached)
        assert np.array_equal(cold_model.theta_, cached_model.theta_)

    @pytest.mark.parametrize("flip", [
        dict(alpha=0.5),
        dict(propagation_steps=(2,)),
        dict(encoder_dim=4),
        dict(encoder_epochs=21),
        dict(use_pseudo_labels=True),
    ])
    def test_any_preparation_config_change_invalidates(self, tiny_graph, tmp_path, flip):
        store = PreparationStore(tmp_path / "prep")
        config = _preparation_config()
        store.put(config, tiny_graph, 0, GCON(config).prepare(tiny_graph, seed=0))
        assert store.fetch(_preparation_config(**flip), tiny_graph, 0) is None

    def test_epsilon_and_delta_do_not_invalidate(self, tiny_graph, tmp_path):
        """The preparation is epsilon-independent by construction, so budget
        changes must *hit* — that is the whole point of the sweep cache."""
        store = PreparationStore(tmp_path / "prep")
        config = _preparation_config(epsilon=1.0)
        store.put(config, tiny_graph, 0, GCON(config).prepare(tiny_graph, seed=0))
        assert store.fetch(_preparation_config(epsilon=4.0), tiny_graph, 0) is not None
        assert store.fetch(_preparation_config(delta=1e-4), tiny_graph, 0) is not None

    def test_seed_change_invalidates(self, tiny_graph, tmp_path):
        store = PreparationStore(tmp_path / "prep")
        config = _preparation_config()
        store.put(config, tiny_graph, 0, GCON(config).prepare(tiny_graph, seed=0))
        assert store.fetch(config, tiny_graph, 1) is None

    def test_graph_change_invalidates(self, tiny_graph, heterophilous_graph, tmp_path):
        store = PreparationStore(tmp_path / "prep")
        config = _preparation_config()
        store.put(config, tiny_graph, 0, GCON(config).prepare(tiny_graph, seed=0))
        assert store.fetch(config, heterophilous_graph, 0) is None

    def test_feature_change_alone_invalidates(self, tiny_graph, tmp_path):
        """Same adjacency, different features must not collide: the encoder
        consumed the features, so the address covers them too."""
        import dataclasses as dc

        store = PreparationStore(tmp_path / "prep")
        config = _preparation_config()
        store.put(config, tiny_graph, 0, GCON(config).prepare(tiny_graph, seed=0))
        mutated = dc.replace(tiny_graph, features=tiny_graph.features * 2.0)
        assert store.fetch(config, mutated, 0) is None

    @pytest.mark.parametrize("corruption", ["garbage", "truncated"])
    def test_corrupt_bundle_is_a_miss(self, tiny_graph, tmp_path, corruption):
        """Plain garbage raises ValueError from np.load; a truncated real
        archive raises zipfile.BadZipFile — both must read as cache misses."""
        store = PreparationStore(tmp_path / "prep")
        config = _preparation_config()
        path = store.put(config, tiny_graph, 0, GCON(config).prepare(tiny_graph, seed=0))
        if corruption == "garbage":
            path.write_bytes(b"not an npz archive")
        else:
            content = path.read_bytes()
            path.write_bytes(content[:len(content) // 2])
        assert store.fetch(config, tiny_graph, 0) is None
        # get_or_prepare recovers by recomputing and overwriting the bundle.
        prepared = store.get_or_prepare(GCON(config), tiny_graph, 0)
        assert prepared is not None
        assert store.fetch(config, tiny_graph, 0) is not None

    def test_non_integer_seed_bypasses_the_store(self, tiny_graph, tmp_path):
        store = PreparationStore(tmp_path / "prep")
        config = _preparation_config()
        rng = np.random.default_rng(0)
        prepared = store.get_or_prepare(GCON(config), tiny_graph, rng)
        assert prepared is not None
        assert store.info()["entries"] == 0

    def test_from_env(self, tmp_path):
        assert PreparationStore.from_env({}) is None
        assert PreparationStore.from_env({"REPRO_PREPARATION_CACHE": ""}) is None
        assert PreparationStore.from_env({"REPRO_PREPARATION_CACHE": "0"}) is None
        store = PreparationStore.from_env(
            {"REPRO_PREPARATION_CACHE": str(tmp_path / "cache")})
        assert store is not None
        assert store.root == tmp_path / "cache"
