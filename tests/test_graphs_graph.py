"""Tests for the GraphDataset container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphDataError
from repro.graphs.adjacency import build_adjacency
from repro.graphs.graph import GraphDataset


class TestValidation:
    def test_valid_graph(self, path_graph):
        assert path_graph.num_nodes == 6
        assert path_graph.num_edges == 5
        assert path_graph.num_classes == 2

    def test_rejects_feature_shape_mismatch(self):
        adjacency = build_adjacency(np.array([[0, 1]]), 3)
        with pytest.raises(GraphDataError):
            GraphDataset(adjacency=adjacency, features=np.zeros((2, 4)), labels=np.zeros(3, int))

    def test_rejects_self_loops(self):
        adjacency = sp.identity(3, format="csr")
        with pytest.raises(GraphDataError):
            GraphDataset(adjacency=adjacency, features=np.zeros((3, 2)), labels=np.zeros(3, int))

    def test_rejects_asymmetric_adjacency(self):
        adjacency = sp.csr_matrix(np.array([[0, 1, 0], [0, 0, 0], [0, 0, 0]], dtype=float))
        with pytest.raises(GraphDataError):
            GraphDataset(adjacency=adjacency, features=np.zeros((3, 2)), labels=np.zeros(3, int))

    def test_rejects_out_of_range_split(self):
        adjacency = build_adjacency(np.array([[0, 1]]), 3)
        with pytest.raises(GraphDataError):
            GraphDataset(adjacency=adjacency, features=np.zeros((3, 2)),
                         labels=np.zeros(3, int), train_idx=np.array([7]))


class TestAccessors:
    def test_degrees(self, path_graph):
        np.testing.assert_array_equal(path_graph.degrees, [1, 2, 2, 2, 2, 1])

    def test_label_matrix_one_hot(self, path_graph):
        matrix = path_graph.label_matrix()
        assert matrix.shape == (6, 2)
        np.testing.assert_array_equal(np.argmax(matrix, axis=1), path_graph.labels)

    def test_edges_are_upper_triangular(self, path_graph):
        edges = path_graph.edges()
        assert edges.shape == (5, 2)
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_summary_keys(self, tiny_graph):
        summary = tiny_graph.summary()
        assert {"name", "nodes", "edges", "features", "classes", "homophily"} <= set(summary)


class TestNeighbouringDatasets:
    def test_without_edge(self, path_graph):
        neighbour = path_graph.without_edge(0, 1)
        assert neighbour.num_edges == path_graph.num_edges - 1
        assert path_graph.num_edges == 5  # original untouched

    def test_with_edge(self, path_graph):
        neighbour = path_graph.with_edge(0, 5)
        assert neighbour.num_edges == path_graph.num_edges + 1

    def test_neighbouring_preserves_features_and_labels(self, path_graph):
        neighbour = path_graph.without_edge(2, 3)
        np.testing.assert_array_equal(neighbour.features, path_graph.features)
        np.testing.assert_array_equal(neighbour.labels, path_graph.labels)


class TestSubgraph:
    def test_induced_subgraph(self, path_graph):
        subgraph = path_graph.subgraph(np.array([0, 1, 2]))
        assert subgraph.num_nodes == 3
        assert subgraph.num_edges == 2
        assert subgraph.train_idx.tolist() == [0]

    def test_subgraph_relabels_splits(self, path_graph):
        subgraph = path_graph.subgraph(np.array([3, 4, 5]))
        assert subgraph.train_idx.tolist() == [0]
        assert subgraph.test_idx.tolist() == [2]
