"""Distributed == single-process, bit for bit.

The contract of ``repro.distributed``: however a sweep is sharded across
workers — including crashes, expired leases, re-claims and duplicated
executions — the merged store is bitwise identical to what one
single-process engine run of the same spec writes.  These tests pin that
contract with the *real* GCON/MLP cell runners on a tiny grid:

* N in-process workers draining a queue == the engine, record for record;
* a crashed worker (expired lease, partial work-in-progress shard) is
  re-leased and recomputed with no duplicate and no missing cell;
* real killed-with-SIGKILL worker processes are survived the same way;
* resubmitting a finished sweep is a no-op.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.distributed import (
    Coordinator,
    DistributedWorker,
    LeaseManager,
    SweepSpec,
    start_local_workers,
)
from repro.runtime import JsonlResultStore, ParallelExperimentRunner
from repro.runtime.workers import clear_worker_memos


def _tiny_spec() -> SweepSpec:
    return SweepSpec(
        methods=("GCON", "MLP"), datasets=("cora_ml",), epsilons=(0.5, 2.0),
        repeats=2, seed=0, scale=0.06, epochs=20, encoder_epochs=25,
        encoder_dim=8, encoder_hidden=16,
    )


def _record_tuple(record):
    return (record.method, record.dataset, record.epsilon, record.repeat,
            record.micro_f1, tuple(sorted(record.extra.items())))


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """The single-process engine run every distributed run must reproduce."""
    spec = _tiny_spec()
    path = tmp_path_factory.mktemp("reference") / "serial.jsonl"
    clear_worker_memos()
    engine = ParallelExperimentRunner(
        spec.cell_runner(), jobs=1, store=JsonlResultStore(path),
        resume_context=spec.resume_context(),
    )
    engine.run(spec.expand())
    return [_record_tuple(r) for r in JsonlResultStore(path).load()]


def _merged_tuples(coordinator, output_path):
    report = coordinator.merge(output_path)
    return [_record_tuple(r) for r in JsonlResultStore(report.output).load()]


class TestMultiWorkerEquivalence:
    def test_two_inprocess_workers_merge_bitwise_equal(self, tmp_path,
                                                       serial_reference):
        spec = _tiny_spec()
        coordinator = Coordinator(tmp_path / "q")
        coordinator.submit(spec)
        # Two "machines": the first takes half the groups, the second drains.
        clear_worker_memos()
        first = DistributedWorker(tmp_path / "q", "machine-a", max_groups=2).run()
        clear_worker_memos()
        second = DistributedWorker(tmp_path / "q", "machine-b").run()
        assert first.groups_completed == 2
        assert second.groups_completed == 2
        assert sorted(_merged_tuples(coordinator, tmp_path / "merged.jsonl")) \
            == sorted(serial_reference)
        # Canonical merge order == canonical expansion order.
        merged = JsonlResultStore(tmp_path / "merged.jsonl").load()
        assert [(r.method, r.dataset, r.epsilon, r.repeat) for r in merged] \
            == [c.key() for c in spec.expand()]

    def test_spawned_worker_processes_merge_bitwise_equal(self, tmp_path,
                                                          serial_reference):
        coordinator = Coordinator(tmp_path / "q")
        coordinator.submit(_tiny_spec())
        workers = start_local_workers(tmp_path / "q", jobs=2,
                                      poll_interval=0.05)
        for process in workers:
            process.join(timeout=300)
        assert all(process.exitcode == 0 for process in workers)
        assert coordinator.status().complete
        assert sorted(_merged_tuples(coordinator, tmp_path / "merged.jsonl")) \
            == sorted(serial_reference)


class TestCrashRecovery:
    def test_expired_lease_is_reclaimed_without_duplicate_or_missing_cells(
            self, tmp_path, serial_reference):
        spec = _tiny_spec()
        coordinator = Coordinator(tmp_path / "q")
        coordinator.submit(spec)
        queue = coordinator.queue

        # A healthy worker completes one group first.
        clear_worker_memos()
        DistributedWorker(tmp_path / "q", "healthy", max_groups=1).run()

        # Simulate a crash: a worker claims the next group with a short TTL,
        # leaves a half-written work-in-progress shard behind and dies
        # without releasing or heartbeating.
        victim_gid = queue.pending_ids()[0]
        manager = LeaseManager(queue.leases_dir, ttl=0.05)
        assert manager.acquire(victim_gid, "crashed-worker") is not None
        wip = queue.wip_shard_path(victim_gid, "crashed-worker")
        wip.write_text('{"method": "GCON", "data', encoding="utf-8")
        time.sleep(0.1)  # let the lease expire

        # The survivor steals the expired lease and drains the queue.
        clear_worker_memos()
        report = DistributedWorker(tmp_path / "q", "survivor",
                                   poll_interval=0.01).run()
        assert report.groups_stolen >= 1
        assert victim_gid in report.completed_group_ids
        assert coordinator.status().complete
        # The crashed worker's debris is gone: its wip shard was cleaned up
        # when the group completed, and exactly one shard per group remains.
        assert not wip.exists()
        assert sorted(p.name for p in queue.shards_dir.glob("*.jsonl")) \
            == sorted(f"{gid}.jsonl" for gid in queue.done_ids())

        merged = _merged_tuples(coordinator, tmp_path / "merged.jsonl")
        assert sorted(merged) == sorted(serial_reference)
        keys = [record[:4] for record in merged]
        assert len(keys) == len(set(keys))  # no duplicates
        assert len(keys) == len(spec.expand())  # no missing cells

    def test_sigkilled_worker_process_is_survived(self, tmp_path,
                                                  serial_reference):
        """A real worker process killed mid-run: its lease expires, a second
        worker re-leases and the merged sweep is still bitwise correct."""
        coordinator = Coordinator(tmp_path / "q")
        coordinator.submit(_tiny_spec())
        queue = coordinator.queue

        (victim,) = start_local_workers(tmp_path / "q", jobs=1, lease_ttl=1.0,
                                        poll_interval=0.05,
                                        worker_prefix="victim")
        # Kill the victim as soon as it provably holds a claim (or finished
        # a group, whichever the scheduler gives us first).
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if list(queue.leases_dir.glob("*.lease")) or queue.done_ids():
                break
            time.sleep(0.01)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=60)

        (survivor,) = start_local_workers(tmp_path / "q", jobs=1, lease_ttl=1.0,
                                          poll_interval=0.05,
                                          worker_prefix="survivor")
        survivor.join(timeout=300)
        assert survivor.exitcode == 0
        assert coordinator.status().complete
        assert sorted(_merged_tuples(coordinator, tmp_path / "merged.jsonl")) \
            == sorted(serial_reference)


class TestResubmission:
    def test_resubmitting_a_finished_sweep_is_a_noop(self, tmp_path,
                                                     serial_reference):
        spec = _tiny_spec()
        coordinator = Coordinator(tmp_path / "q")
        first = coordinator.submit(spec)
        assert first.created and first.groups_enqueued == 4
        clear_worker_memos()
        DistributedWorker(tmp_path / "q", "w1").run()
        assert coordinator.status().complete
        before = {path: path.stat().st_mtime_ns
                  for path in sorted((tmp_path / "q").rglob("*")) if path.is_file()}

        again = coordinator.submit(spec)
        assert not again.created
        assert again.groups_enqueued == 0
        assert again.groups_done == again.groups_total == 4
        assert "no-op" in again.summary()
        # Nothing in the queue was touched...
        after = {path: path.stat().st_mtime_ns
                 for path in sorted((tmp_path / "q").rglob("*")) if path.is_file()}
        assert after == before
        # ...and a worker pointed at it finds no work.
        report = DistributedWorker(tmp_path / "q", "w2").run()
        assert report.groups_completed == 0
        assert sorted(_merged_tuples(coordinator, tmp_path / "merged.jsonl")) \
            == sorted(serial_reference)

    def test_a_different_spec_into_the_same_queue_is_refused(self, tmp_path):
        from repro.exceptions import ConfigurationError

        coordinator = Coordinator(tmp_path / "q")
        coordinator.submit(_tiny_spec())
        with pytest.raises(ConfigurationError, match="different sweep"):
            coordinator.submit(SweepSpec(methods=("MLP",), datasets=("cora_ml",),
                                         epsilons=(1.0,), repeats=1))
