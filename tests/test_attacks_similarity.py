"""Tests for the He et al. similarity-metric link-stealing attack suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.attacks.evaluation import attack_auc, sample_edge_candidates
from repro.attacks.similarity import (
    SIMILARITY_METRICS,
    all_similarity_scores,
    braycurtis_similarity,
    canberra_similarity,
    chebyshev_similarity,
    correlation_similarity,
    cosine_similarity,
    euclidean_similarity,
    manhattan_similarity,
    similarity_scores,
    squared_euclidean_similarity,
    strongest_attack_auc,
)
from repro.exceptions import ConfigurationError


class TestIndividualMetrics:
    def setup_method(self):
        self.a = np.array([[1.0, 0.0, 0.0], [0.5, 0.5, 0.0]])
        self.b = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])

    def test_cosine_identical_rows_score_one(self):
        scores = cosine_similarity(self.a, self.b)
        assert scores[0] == pytest.approx(1.0)
        assert scores[1] < scores[0]

    def test_euclidean_zero_distance_is_best(self):
        scores = euclidean_similarity(self.a, self.b)
        assert scores[0] == pytest.approx(0.0)
        assert scores[1] < 0.0

    def test_squared_euclidean_matches_square(self):
        euclid = euclidean_similarity(self.a, self.b)
        squared = squared_euclidean_similarity(self.a, self.b)
        assert squared == pytest.approx(-((-euclid) ** 2))

    def test_chebyshev_and_manhattan_relationship(self):
        chebyshev = -chebyshev_similarity(self.a, self.b)
        manhattan = -manhattan_similarity(self.a, self.b)
        assert np.all(chebyshev <= manhattan + 1e-12)

    def test_correlation_is_shift_invariant(self):
        shifted = self.a + 5.0
        assert correlation_similarity(self.a, self.b) == pytest.approx(
            correlation_similarity(shifted, self.b)
        )

    def test_braycurtis_and_canberra_finite(self):
        for metric in (braycurtis_similarity, canberra_similarity):
            scores = metric(self.a, self.b)
            assert np.all(np.isfinite(scores))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            cosine_similarity(self.a, self.b[:1])


class TestSimilarityScores:
    def _posteriors(self):
        rng = np.random.default_rng(0)
        return rng.random((10, 4))

    def test_named_metric_dispatch(self):
        posteriors = self._posteriors()
        pairs = np.array([[0, 1], [2, 3]])
        for name in SIMILARITY_METRICS:
            scores = similarity_scores(posteriors, pairs, metric=name)
            assert scores.shape == (2,)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            similarity_scores(self._posteriors(), np.array([[0, 1]]), metric="hamming")

    def test_bad_pairs_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            similarity_scores(self._posteriors(), np.array([0, 1, 2]))

    def test_all_scores_returns_every_metric(self):
        scores = all_similarity_scores(self._posteriors(), np.array([[0, 1], [1, 2]]))
        assert set(scores) == set(SIMILARITY_METRICS)

    @given(hnp.arrays(np.float64, (6, 3), elements=st.floats(-5, 5)))
    @settings(max_examples=25, deadline=None)
    def test_identical_nodes_always_maximal_cosine(self, posteriors):
        posteriors = posteriors + 1e-3  # avoid all-zero rows
        pairs = np.array([[0, 0], [0, 1]])
        scores = similarity_scores(posteriors, pairs, metric="euclidean")
        assert scores[0] >= scores[1] - 1e-12


class TestStrongestAttack:
    def test_attack_succeeds_on_smoothed_posteriors(self, tiny_graph):
        """Posteriors aggregated over neighbours make connected pairs similar."""
        from repro.core.propagation import Propagator

        rng = np.random.default_rng(0)
        noisy_labels = np.eye(tiny_graph.num_classes)[tiny_graph.labels]
        noisy_labels = noisy_labels + 0.1 * rng.random(noisy_labels.shape)
        propagator = Propagator(tiny_graph.adjacency, alpha=0.1)
        posteriors = propagator.propagate(noisy_labels, 2)

        pairs, labels = sample_edge_candidates(tiny_graph, num_pairs=200, rng=0)
        name, auc = strongest_attack_auc(posteriors, pairs, labels)
        assert name in SIMILARITY_METRICS
        assert auc > 0.6

    def test_attack_fails_on_random_posteriors(self, tiny_graph):
        rng = np.random.default_rng(1)
        posteriors = rng.random((tiny_graph.num_nodes, tiny_graph.num_classes))
        pairs, labels = sample_edge_candidates(tiny_graph, num_pairs=200, rng=0)
        _, auc = strongest_attack_auc(posteriors, pairs, labels)
        assert auc < 0.65

    def test_strongest_at_least_as_good_as_cosine(self, tiny_graph):
        rng = np.random.default_rng(2)
        posteriors = rng.random((tiny_graph.num_nodes, 4))
        pairs, labels = sample_edge_candidates(tiny_graph, num_pairs=100, rng=3)
        _, best = strongest_attack_auc(posteriors, pairs, labels)
        cosine_auc = attack_auc(similarity_scores(posteriors, pairs, "cosine"), labels)
        assert best >= cosine_auc - 1e-12
