"""Equivalence harness: the vectorised epsilon-sweep path vs the serial fit path.

The sweep fast path must never change the numbers.  This suite pins that down
at three layers:

* :class:`SweepSolver` against per-epsilon :meth:`GCON.fit`, across solver
  strategies, losses, propagation settings and pseudo-label modes on small
  random graphs — accuracies bitwise identical or within 1e-10 (the
  ``"serial"`` strategy must be *bitwise* identical, parameters included);
* the engine's group fast path (:meth:`FigureCellRunner.run_group`) against
  the per-cell reference path across methods x datasets x epsilons;
* the :class:`GconVariantCellRunner` epsilon-axis fast path against its
  per-cell reference.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.core.sweep import SWEEP_STRATEGIES, SweepSolver
from repro.exceptions import ConfigurationError
from repro.graphs.generators import CitationGraphSpec, generate_citation_graph
from repro.runtime.cells import expand_cells
from repro.runtime.engine import ParallelExperimentRunner
from repro.runtime.workers import (
    FigureCellRunner,
    GconVariantCellRunner,
    clear_worker_memos,
)

EPSILONS = [0.5, 1.0, 2.0, 4.0]
ACCURACY_TOL = 1e-10


def small_random_graph(seed: int, num_nodes: int = 120, homophily: float = 0.8):
    spec = CitationGraphSpec(
        name=f"rand{seed}", num_nodes=num_nodes, num_edges=3 * num_nodes,
        num_features=48, num_classes=3, homophily=homophily, feature_active=8,
        feature_signal=0.6, train_per_class=8, num_val=15, num_test=40,
    )
    return generate_citation_graph(spec, seed=seed)


def base_config(**overrides) -> GCONConfig:
    # gtol=1e-8: accuracies are compared at 1e-10, i.e. argmax-identical.  The
    # fast strategies agree with serial only to ~2*gtol/mu in parameters, so a
    # tight gtol keeps that disagreement orders of magnitude below any
    # realistic argmax margin and the accuracy comparison deterministic.
    params = dict(epsilon=1.0, alpha=0.8, propagation_steps=(2,), encoder_dim=8,
                  encoder_hidden=16, encoder_epochs=25, max_iterations=500,
                  gtol=1e-8)
    params.update(overrides)
    return GCONConfig(**params)


def serial_reference(config: GCONConfig, graph, epsilons, seed: int) -> list[GCON]:
    return [GCON(replace(config, epsilon=epsilon)).fit(graph, seed=seed)
            for epsilon in epsilons]


class TestSweepSolverAgainstSerialFit:
    """Property-style grid: every strategy matches per-epsilon fit."""

    @pytest.mark.parametrize("strategy", SWEEP_STRATEGIES)
    @pytest.mark.parametrize("graph_seed", [3, 11])
    def test_accuracies_match_serial_fits(self, strategy, graph_seed):
        graph = small_random_graph(graph_seed)
        config = base_config()
        seed = 5
        reference = serial_reference(config, graph, EPSILONS, seed)
        models = SweepSolver(config, strategy=strategy).fit_models(
            graph, EPSILONS, seed=seed)
        for model, ref in zip(models, reference):
            for mode in ("private", "public"):
                assert abs(model.score(graph, mode=mode)
                           - ref.score(graph, mode=mode)) <= ACCURACY_TOL

    @pytest.mark.parametrize("config_overrides", [
        dict(loss="pseudo_huber"),
        dict(propagation_steps=(1, "inf"), alpha=0.6),
        dict(use_pseudo_labels=True, pseudo_label_mode="balanced"),
        dict(non_private=True),
    ])
    def test_accuracies_match_across_configurations(self, config_overrides):
        graph = small_random_graph(7)
        config = base_config(**config_overrides)
        seed = 2
        reference = serial_reference(config, graph, EPSILONS, seed)
        for strategy in ("warm_start", "batched"):
            models = SweepSolver(config, strategy=strategy).fit_models(
                graph, EPSILONS, seed=seed)
            for model, ref in zip(models, reference):
                assert abs(model.score(graph) - ref.score(graph)) <= ACCURACY_TOL

    def test_serial_strategy_is_bitwise_identical(self):
        """strategy="serial" is the reference path: parameters, perturbation
        diagnostics and scores must all be bitwise equal to per-epsilon fit."""
        graph = small_random_graph(3)
        config = base_config()
        seed = 9
        reference = serial_reference(config, graph, EPSILONS, seed)
        solves = SweepSolver(config, strategy="serial").solve(graph, EPSILONS, seed=seed)
        for solve, ref in zip(solves, reference):
            assert np.array_equal(solve.theta, ref.theta_)
            assert solve.perturbation == ref.perturbation_
            assert solve.solver_result.objective_value \
                == ref.solver_result_.objective_value

    @pytest.mark.parametrize("strategy", ["warm_start", "batched"])
    def test_fast_strategies_reach_the_serial_minimiser(self, strategy):
        """Warm starts / batching change the path, never the destination: every
        solve converges and lands within solver tolerance of the cold minimiser."""
        graph = small_random_graph(5)
        config = base_config()
        seed = 1
        reference = serial_reference(config, graph, EPSILONS, seed)
        solves = SweepSolver(config, strategy=strategy).solve(graph, EPSILONS, seed=seed)
        for solve, ref in zip(solves, reference):
            assert solve.solver_result.converged
            # Strong convexity bounds the distance to the optimum by
            # gradient_norm / mu; both solves stop at gtol, so they agree to
            # ~2 * gtol / quadratic_coefficient.
            mu = solve.perturbation.total_quadratic_coefficient
            tolerance = 4 * config.gtol / mu
            assert float(np.max(np.abs(solve.theta - ref.theta_))) <= tolerance

    def test_rejects_mismatched_prepared_inputs(self):
        graph = small_random_graph(3)
        config = base_config()
        prepared = GCON(config).prepare(graph, seed=0)
        with pytest.raises(ConfigurationError):
            SweepSolver(base_config(alpha=0.5)).solve(
                graph, EPSILONS, seed=0, prepared=prepared)
        with pytest.raises(ConfigurationError):
            SweepSolver(config).solve(graph, EPSILONS, seed=1, prepared=prepared)

    def test_empty_epsilons_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSolver(base_config()).solve(small_random_graph(3), [])


class TestEngineFastPathEquivalence:
    """The engine's group dispatch produces the per-cell reference numbers."""

    def _settings(self, **overrides):
        from repro.evaluation.figures import FigureSettings

        # extra_gcon gtol: see base_config — keeps the fast-vs-reference
        # parameter gap far below any argmax decision margin.
        params = dict(scale=0.06, repeats=2, seed=0, epochs=20, encoder_epochs=25,
                      encoder_dim=8, encoder_hidden=16, datasets=("cora_ml",),
                      epsilons=tuple(EPSILONS), extra_gcon={"gtol": 1e-8})
        params.update(overrides)
        return FigureSettings(**params)

    def _run(self, runner, cells):
        clear_worker_memos()
        return ParallelExperimentRunner(runner).run(cells)

    def test_methods_by_datasets_by_epsilons_match_reference(self):
        """GCON takes the sweep solver, MLP falls back per cell; both must
        reproduce the reference path exactly."""
        settings = self._settings()
        cells = expand_cells(["GCON", "MLP"], settings.datasets, settings.epsilons,
                             settings.repeats, seed=settings.seed)
        reference = self._run(FigureCellRunner(settings=settings, fast_sweep=False),
                              cells)
        fast = self._run(FigureCellRunner(settings=settings), cells)
        for ref, got in zip(reference, fast):
            assert (ref.method, ref.dataset, ref.epsilon, ref.repeat) \
                == (got.method, got.dataset, got.epsilon, got.repeat)
            assert abs(ref.micro_f1 - got.micro_f1) <= ACCURACY_TOL

    @pytest.mark.parametrize("strategy", ["warm_start", "batched"])
    def test_sweep_strategies_match_reference(self, strategy):
        settings = self._settings(repeats=1)
        cells = expand_cells(["GCON"], settings.datasets, settings.epsilons,
                             settings.repeats, seed=settings.seed)
        reference = self._run(FigureCellRunner(settings=settings, fast_sweep=False),
                              cells)
        fast = self._run(
            FigureCellRunner(settings=settings, sweep_strategy=strategy), cells)
        for ref, got in zip(reference, fast):
            assert abs(ref.micro_f1 - got.micro_f1) <= ACCURACY_TOL

    def test_variant_runner_epsilon_axis_matches_reference(self):
        settings = self._settings(repeats=1)
        overrides = {"alpha=0.4": {"alpha": 0.4}, "alpha=0.8": {"alpha": 0.8}}
        cells = expand_cells(list(overrides), settings.datasets, settings.epsilons,
                             settings.repeats, seed=settings.seed)
        reference = self._run(
            GconVariantCellRunner(settings=settings, overrides=overrides,
                                  axis="epsilon", fast_sweep=False), cells)
        fast = self._run(
            GconVariantCellRunner(settings=settings, overrides=overrides,
                                  axis="epsilon"), cells)
        for ref, got in zip(reference, fast):
            assert abs(ref.micro_f1 - got.micro_f1) <= ACCURACY_TOL

    def test_variant_runner_steps_axis_uses_reference_path(self):
        """A steps-axis group changes the preparation per cell, so the fast
        path must decline it and produce bitwise reference results."""
        settings = self._settings(repeats=1)
        overrides = {"alpha=0.8": {"alpha": 0.8}}
        cells = expand_cells(list(overrides), settings.datasets, (1.0, 2.0),
                             settings.repeats, seed=settings.seed)
        reference = self._run(
            GconVariantCellRunner(settings=settings, overrides=overrides,
                                  axis="steps", fast_sweep=False), cells)
        fast = self._run(
            GconVariantCellRunner(settings=settings, overrides=overrides,
                                  axis="steps"), cells)
        for ref, got in zip(reference, fast):
            assert ref.micro_f1 == got.micro_f1

    def test_serial_fallback_groups_stream_per_cell(self, tmp_path):
        """Groups the fast path declines (here: MLP) must stream each finished
        cell to the store immediately in serial mode, so a crash mid-group
        loses at most the cell being solved."""
        from repro.runtime.store import JsonlResultStore

        settings = self._settings(repeats=1)
        cells = expand_cells(["MLP"], settings.datasets, settings.epsilons,
                             settings.repeats, seed=settings.seed)
        runner = FigureCellRunner(settings=settings)
        assert not runner.wants_group(cells)

        calls = {"count": 0}
        original = FigureCellRunner.__call__

        def exploding_call(self, cell):
            if calls["count"] == 2:
                raise RuntimeError("simulated crash on the third cell")
            calls["count"] += 1
            return original(self, cell)

        clear_worker_memos()
        path = tmp_path / "crash.jsonl"
        engine = ParallelExperimentRunner(runner, store=JsonlResultStore(path))
        FigureCellRunner.__call__ = exploding_call
        try:
            with pytest.raises(Exception, match="simulated crash"):
                engine.run(cells)
        finally:
            FigureCellRunner.__call__ = original
        # The two cells finished before the crash were persisted individually.
        assert len(JsonlResultStore(path).load()) == 2

    def test_resumed_partial_group_matches_full_run(self, tmp_path):
        """A group resumed with only a subset of its epsilons pending still
        solves the remaining budgets to the reference numbers."""
        from repro.runtime.store import JsonlResultStore

        settings = self._settings(repeats=1)
        cells = expand_cells(["GCON"], settings.datasets, settings.epsilons,
                             settings.repeats, seed=settings.seed)
        path = tmp_path / "resume.jsonl"
        reference = self._run(FigureCellRunner(settings=settings, fast_sweep=False),
                              cells)

        # First pass: persist only the two middle epsilon cells.
        store = JsonlResultStore(path)
        for record in reference[1:3]:
            store.append(record)
        store.close()

        clear_worker_memos()
        engine = ParallelExperimentRunner(FigureCellRunner(settings=settings),
                                          store=JsonlResultStore(path))
        resumed = engine.run(cells)
        assert len(resumed) == len(reference)
        for ref, got in zip(reference, resumed):
            assert abs(ref.micro_f1 - got.micro_f1) <= ACCURACY_TOL
