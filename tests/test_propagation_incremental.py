"""Property tests for incremental re-propagation after live edge deltas.

The acceptance bar of the graph-mutation subsystem: for insert, delete and
mixed edge batches, :func:`incremental_inference_features` on the *new*
graph is **bitwise identical** to recomputing
:func:`repro.core.inference.inference_features` from scratch, while every
row outside the reported touched set is byte-copied from the old epoch's
matrix.  The claims are exercised property-style across sampling seeds.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.inference import inference_features
from repro.core.propagation import (
    Propagator,
    bfs_neighborhood,
    incremental_inference_features,
)
from repro.exceptions import ConfigurationError
from repro.graphs.perturbations import sample_absent_edge, sample_present_edge
from repro.utils.math import row_normalize_l2
from repro.utils.random import as_rng

ALPHA = 0.8
INFERENCE_ALPHA = 0.6


def _encoded(graph, seed: int = 11) -> np.ndarray:
    """A stand-in for the encoder output: any row-normalised dense matrix.

    The propagation algebra never looks inside the feature values, so a
    random matrix exercises exactly the same code paths as a trained
    encoder while keeping the tests fast and deterministic."""
    rng = np.random.default_rng(seed)
    return row_normalize_l2(rng.standard_normal((graph.num_nodes, 6)))


def _delta(graph, kind: str, seed: int):
    """Apply a small edge-delta batch of the given kind; return
    ``(new_graph, endpoints)``."""
    rng = as_rng(seed)
    perturbed = graph
    endpoints: set[int] = set()
    inserts = {"insert": 3, "mixed": 2}.get(kind, 0)
    deletes = {"delete": 3, "mixed": 2}.get(kind, 0)
    for _ in range(inserts):
        u, v = sample_absent_edge(perturbed, rng)
        perturbed = perturbed.with_edge(u, v)
        endpoints.update((u, v))
    for _ in range(deletes):
        u, v = sample_present_edge(perturbed, rng)
        perturbed = perturbed.without_edge(u, v)
        endpoints.update((u, v))
    return perturbed, sorted(endpoints)


class TestBfsNeighborhood:
    def test_radius_zero_is_the_seed_set(self, tiny_graph):
        propagator = Propagator(tiny_graph.adjacency, ALPHA)
        rows = bfs_neighborhood(propagator.transition, [5, 2, 5], 0)
        assert rows.tolist() == [2, 5]

    def test_each_hop_is_monotone(self, tiny_graph):
        propagator = Propagator(tiny_graph.adjacency, ALPHA)
        previous = bfs_neighborhood(propagator.transition, [0], 0)
        for radius in (1, 2, 3):
            current = bfs_neighborhood(propagator.transition, [0], radius)
            assert set(previous) <= set(current)
            previous = current

    def test_large_radius_reaches_the_component(self, path_graph):
        rows = bfs_neighborhood(path_graph.adjacency.tocsr(), [0], 10)
        assert rows.tolist() == list(range(6))

    def test_empty_seeds_reach_nothing(self, tiny_graph):
        rows = bfs_neighborhood(tiny_graph.adjacency, [], 3)
        assert rows.size == 0

    def test_out_of_range_seed_rejected(self, tiny_graph):
        with pytest.raises(ConfigurationError):
            bfs_neighborhood(tiny_graph.adjacency, [tiny_graph.num_nodes], 1)


class TestBitwiseEquivalence:
    """incremental == full recompute, bit for bit, across seeds and kinds."""

    @pytest.mark.parametrize("kind", ["insert", "delete", "mixed"])
    @pytest.mark.parametrize("mode,steps_list", [
        ("private", [2]),
        ("private", [0, 2, 4]),
        ("public", [2]),
        ("public", [0, 2, 4]),
        ("public", [2, math.inf]),
    ])
    @given(seed=st.integers(0, 500))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_incremental_matches_full_recompute(self, tiny_graph, kind, mode,
                                                steps_list, seed):
        encoded = _encoded(tiny_graph)
        inference_alpha = INFERENCE_ALPHA if mode == "private" else None
        old = inference_features(Propagator(tiny_graph.adjacency, ALPHA),
                                 encoded, steps_list, mode=mode,
                                 inference_alpha=inference_alpha)
        new_graph, endpoints = _delta(tiny_graph, kind, seed)
        propagator = Propagator(new_graph.adjacency, ALPHA)
        incremental, touched = incremental_inference_features(
            propagator, encoded, old, endpoints, steps_list, mode=mode,
            inference_alpha=inference_alpha)
        full = inference_features(propagator, encoded, steps_list, mode=mode,
                                  inference_alpha=inference_alpha)
        assert np.array_equal(incremental, full)
        untouched = np.setdiff1d(np.arange(tiny_graph.num_nodes), touched)
        assert np.array_equal(incremental[untouched], old[untouched])

    def test_private_touches_exactly_the_endpoints(self, tiny_graph):
        encoded = _encoded(tiny_graph)
        old = inference_features(Propagator(tiny_graph.adjacency, ALPHA),
                                 encoded, [0, 2, 4], mode="private",
                                 inference_alpha=INFERENCE_ALPHA)
        new_graph, endpoints = _delta(tiny_graph, "mixed", seed=3)
        _features, touched = incremental_inference_features(
            Propagator(new_graph.adjacency, ALPHA), encoded, old, endpoints,
            [0, 2, 4], mode="private", inference_alpha=INFERENCE_ALPHA)
        assert touched.tolist() == endpoints

    def test_public_touch_radius_is_steps_minus_one(self, tiny_graph):
        encoded = _encoded(tiny_graph)
        steps = 3
        old = inference_features(Propagator(tiny_graph.adjacency, ALPHA),
                                 encoded, [steps], mode="public")
        new_graph, endpoints = _delta(tiny_graph, "insert", seed=4)
        propagator = Propagator(new_graph.adjacency, ALPHA)
        _features, touched = incremental_inference_features(
            propagator, encoded, old, endpoints, [steps], mode="public")
        halo = bfs_neighborhood(propagator.transition, endpoints, steps - 1)
        assert touched.tolist() == halo.tolist()

    def test_identity_block_is_never_touched(self, tiny_graph):
        encoded = _encoded(tiny_graph)
        old = inference_features(Propagator(tiny_graph.adjacency, ALPHA),
                                 encoded, [0], mode="public")
        new_graph, endpoints = _delta(tiny_graph, "mixed", seed=5)
        features, touched = incremental_inference_features(
            Propagator(new_graph.adjacency, ALPHA), encoded, old, endpoints,
            [0], mode="public")
        assert touched.size == 0
        assert np.array_equal(features, old)

    def test_empty_endpoints_return_a_copy(self, tiny_graph):
        encoded = _encoded(tiny_graph)
        propagator = Propagator(tiny_graph.adjacency, ALPHA)
        old = inference_features(propagator, encoded, [2], mode="public")
        features, touched = incremental_inference_features(
            propagator, encoded, old, [], [2], mode="public")
        assert touched.size == 0
        assert features is not old
        assert np.array_equal(features, old)

    def test_infinite_steps_recompute_every_row(self, tiny_graph):
        encoded = _encoded(tiny_graph)
        old = inference_features(Propagator(tiny_graph.adjacency, ALPHA),
                                 encoded, [math.inf], mode="public")
        new_graph, endpoints = _delta(tiny_graph, "insert", seed=6)
        propagator = Propagator(new_graph.adjacency, ALPHA)
        features, touched = incremental_inference_features(
            propagator, encoded, old, endpoints, [math.inf], mode="public")
        assert touched.size == tiny_graph.num_nodes
        full = inference_features(propagator, encoded, [math.inf],
                                  mode="public")
        assert np.array_equal(features, full)


class TestValidation:
    def test_rejects_shape_mismatch(self, tiny_graph):
        encoded = _encoded(tiny_graph)
        propagator = Propagator(tiny_graph.adjacency, ALPHA)
        wrong = np.zeros((tiny_graph.num_nodes, 5))
        with pytest.raises(ConfigurationError):
            incremental_inference_features(propagator, encoded, wrong, [0, 1],
                                           [2], mode="public")

    def test_rejects_out_of_range_endpoints(self, tiny_graph):
        encoded = _encoded(tiny_graph)
        propagator = Propagator(tiny_graph.adjacency, ALPHA)
        old = inference_features(propagator, encoded, [2], mode="public")
        with pytest.raises(ConfigurationError):
            incremental_inference_features(propagator, encoded, old,
                                           [tiny_graph.num_nodes], [2],
                                           mode="public")

    def test_rejects_bad_mode_and_missing_alpha(self, tiny_graph):
        encoded = _encoded(tiny_graph)
        propagator = Propagator(tiny_graph.adjacency, ALPHA)
        old = inference_features(propagator, encoded, [2], mode="public")
        with pytest.raises(ConfigurationError):
            incremental_inference_features(propagator, encoded, old, [0],
                                           [2], mode="both")
        with pytest.raises(ConfigurationError):
            incremental_inference_features(propagator, encoded, old, [0],
                                           [2], mode="private")

    def test_rejects_empty_steps_list(self, tiny_graph):
        encoded = _encoded(tiny_graph)
        propagator = Propagator(tiny_graph.adjacency, ALPHA)
        old = inference_features(propagator, encoded, [2], mode="public")
        with pytest.raises(ConfigurationError):
            incremental_inference_features(propagator, encoded, old, [0], [],
                                           mode="public")
