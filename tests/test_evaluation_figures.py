"""Smoke tests for the figure-regeneration harness on miniature settings.

These tests keep sizes tiny: their purpose is to ensure every experiment in
DESIGN.md's index can actually be generated end to end; the benchmarks run
the larger, more faithful versions.
"""

import math

import pytest

from repro.evaluation.figures import (
    FigureSettings,
    attack_auc_vs_epsilon,
    build_method_registry,
    default_gcon_config,
    figure1_accuracy_vs_epsilon,
    figure23_propagation_step,
    figure4_restart_probability,
    table2_dataset_statistics,
)

TINY = FigureSettings(
    scale=0.06,
    repeats=1,
    epochs=25,
    encoder_epochs=40,
    encoder_dim=8,
    encoder_hidden=16,
    datasets=("cora_ml",),
    epsilons=(1.0,),
)


class TestTable2:
    def test_contains_generated_and_reference(self):
        result = table2_dataset_statistics(FigureSettings(scale=0.05, datasets=("cora_ml", "actor")))
        assert {"generated", "reference"} <= set(result)
        assert result["reference"]["cora_ml"]["nodes"] == 2995
        names = {row["name"] for row in result["generated"]}
        assert names == {"cora_ml", "actor"}


class TestMethodRegistry:
    def test_all_eight_methods_present(self):
        registry = build_method_registry(TINY)
        assert set(registry) == {
            "GCON", "DP-SGD", "DPGCN", "LPGNet", "GAP", "ProGAP", "MLP", "GCN (non-DP)",
        }

    def test_gcon_config_overrides(self):
        config = default_gcon_config(2.0, 1e-4, TINY, alpha=0.3)
        assert config.epsilon == 2.0
        assert config.alpha == 0.3
        assert config.encoder_dim == TINY.encoder_dim


class TestFigure1:
    def test_series_structure(self):
        series = figure1_accuracy_vs_epsilon(TINY, methods=["GCON", "MLP"])
        assert set(series) == {"cora_ml"}
        assert set(series["cora_ml"]) == {"GCON", "MLP"}
        for values in series["cora_ml"].values():
            assert set(values) == {1.0}
            assert all(0.0 <= v <= 1.0 for v in values.values())


class TestFigures234:
    def test_propagation_step_series(self):
        series = figure23_propagation_step(TINY, steps=(1, math.inf), alphas=(0.5,), epsilon=4.0)
        values = series["cora_ml"]["alpha=0.5"]
        assert set(values) == {1.0, float("inf")}

    def test_public_mode_supported(self):
        series = figure23_propagation_step(TINY, inference_mode="public", steps=(1,),
                                            alphas=(0.8,), epsilon=4.0)
        assert "cora_ml" in series

    def test_restart_probability_series(self):
        series = figure4_restart_probability(TINY, alphas=(0.2, 0.8), epsilons=(1.0,))
        assert set(series["cora_ml"]) == {"alpha=0.2", "alpha=0.8"}


class TestAttackFigure:
    def test_attack_auc_series(self):
        series = attack_auc_vs_epsilon(TINY, epsilons=(1.0,), num_pairs=60)
        methods = series["cora_ml"]
        assert {"GCON", "GCN (non-DP)"} <= set(methods)
        for values in methods.values():
            for auc in values.values():
                assert 0.0 <= auc <= 1.0
