"""Tests for the content-addressed model registry."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.core.persistence import release_arrays, release_digest
from repro.exceptions import ConfigurationError
from repro.graphs.datasets import load_dataset
from repro.serving import ModelRegistry, parse_model_ref


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora_ml", scale=0.06, seed=0)


@pytest.fixture(scope="module")
def model(graph):
    config = GCONConfig(epsilon=2.0, alpha=0.8, encoder_epochs=20,
                        encoder_dim=8, encoder_hidden=16)
    return GCON(config).fit(graph, seed=7)


@pytest.fixture(scope="module")
def other_model(graph):
    config = GCONConfig(epsilon=0.5, alpha=0.8, encoder_epochs=20,
                        encoder_dim=8, encoder_hidden=16)
    return GCON(config).fit(graph, seed=7)


class TestParseModelRef:
    def test_bare_name_means_latest(self):
        assert parse_model_ref("demo") == ("demo", "latest")
        assert parse_model_ref("demo@latest") == ("demo", "latest")

    def test_digest_prefix(self):
        assert parse_model_ref("demo@AB12") == ("demo", "ab12")

    def test_invalid_refs_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_model_ref("")
        with pytest.raises(ConfigurationError):
            parse_model_ref("@abc")
        with pytest.raises(ConfigurationError):
            parse_model_ref("demo@not-hex!")


class TestPublishResolve:
    def test_publish_and_resolve_latest(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        record = registry.publish(model, "demo")
        assert record.name == "demo"
        resolved = registry.resolve("demo@latest")
        assert resolved.digest == record.digest
        assert registry.resolve("demo").digest == record.digest

    def test_digest_matches_release_content(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        record = registry.publish(model, "demo")
        assert record.digest == release_digest(release_arrays(model))

    def test_publish_is_idempotent(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        first = registry.publish(model, "demo")
        again = registry.publish(model, "demo")
        assert again.digest == first.digest
        assert len(registry.list("demo")) == 1

    def test_two_releases_coexist_and_latest_advances(self, tmp_path, model,
                                                      other_model):
        registry = ModelRegistry(tmp_path / "reg")
        first = registry.publish(model, "demo")
        second = registry.publish(other_model, "demo")
        assert first.digest != second.digest
        assert len(registry.list("demo")) == 2
        assert registry.resolve("demo@latest").digest == second.digest
        # The first version stays addressable by digest prefix.
        assert registry.resolve(f"demo@{first.digest[:10]}").digest == first.digest

    def test_republishing_an_old_version_is_an_explicit_rollback(self, tmp_path,
                                                                 model,
                                                                 other_model):
        registry = ModelRegistry(tmp_path / "reg")
        first = registry.publish(model, "demo")
        second = registry.publish(other_model, "demo")
        assert registry.resolve("demo@latest").digest == second.digest
        # Re-publishing v1 re-points latest at it (documented rollback path)
        # without rewriting the stored bundle.
        archive_mtime = first.archive_path.stat().st_mtime_ns
        registry.publish(model, "demo")
        assert registry.resolve("demo@latest").digest == first.digest
        assert first.archive_path.stat().st_mtime_ns == archive_mtime

    def test_prefix_resolution_errors(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(model, "demo")
        with pytest.raises(ConfigurationError, match="no version"):
            registry.resolve("demo@ffffffff")
        with pytest.raises(ConfigurationError, match="not in the registry"):
            registry.resolve("ghost@latest")

    def test_manifest_records_privacy_stamp(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        record = registry.publish(
            model, "demo", inference_mode="public",
            training={"dataset": "cora_ml", "sweep_context": "abc123"})
        privacy = record.manifest["privacy"]
        assert privacy["epsilon"] == model.perturbation_.epsilon
        assert privacy["delta"] == model.perturbation_.delta
        assert "objective perturbation" in privacy["mechanism"]
        assert record.manifest["inference"]["mode"] == "public"
        assert record.manifest["inference"]["propagation_steps"] == [2]
        assert record.manifest["training"]["sweep_context"] == "abc123"

    def test_invalid_names_and_modes_rejected(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(ConfigurationError, match="invalid model name"):
            registry.publish(model, "../evil")
        with pytest.raises(ConfigurationError, match="inference_mode"):
            registry.publish(model, "demo", inference_mode="telepathic")

    def test_unfitted_model_rejected(self, tmp_path):
        from repro.exceptions import NotFittedError

        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(NotFittedError):
            registry.publish(GCON(GCONConfig()), "demo")


class TestLoadVerify:
    def test_load_round_trips_theta_and_predictions(self, tmp_path, model, graph):
        registry = ModelRegistry(tmp_path / "reg")
        record = registry.publish(model, "demo")
        loaded, loaded_record = registry.load("demo@latest")
        assert loaded_record.digest == record.digest
        assert np.array_equal(loaded.theta_, model.theta_)
        assert np.array_equal(loaded.decision_scores(graph, mode="public"),
                              model.decision_scores(graph, mode="public"))

    def test_verify_accepts_intact_archive(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        record = registry.publish(model, "demo")
        assert registry.verify("demo@latest").digest == record.digest

    def test_verify_detects_tampering(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        record = registry.publish(model, "demo")
        # Flip the stored theta: same shapes, different bytes.
        with np.load(record.archive_path, allow_pickle=False) as archive:
            arrays = {key: archive[key].copy() for key in archive.files}
        arrays["theta"] = arrays["theta"] + 1e-9
        np.savez(record.archive_path, **arrays)
        with pytest.raises(ConfigurationError, match="integrity check failed"):
            registry.verify("demo@latest")

    def test_verify_rejects_truncated_archive(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        record = registry.publish(model, "demo")
        data = record.archive_path.read_bytes()
        record.archive_path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ConfigurationError, match="integrity check failed"):
            registry.verify("demo@latest")

    def test_torn_publish_is_invisible(self, tmp_path, model):
        """A version directory without a manifest (crash between archive and
        manifest write) must not resolve."""
        registry = ModelRegistry(tmp_path / "reg")
        record = registry.publish(model, "demo")
        torn = registry.version_dir("demo", "f" * 64)
        torn.mkdir(parents=True)
        (torn / "model.npz").write_bytes(record.archive_path.read_bytes())
        assert len(registry.list("demo")) == 1
        with pytest.raises(ConfigurationError, match="no version"):
            registry.resolve("demo@" + "f" * 8)


class TestListing:
    def test_names_and_list_cover_all_committed_versions(self, tmp_path, model,
                                                         other_model):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(model, "alpha")
        registry.publish(other_model, "beta")
        assert registry.names() == ["alpha", "beta"]
        records = registry.list()
        assert {record.name for record in records} == {"alpha", "beta"}
        for record in records:
            assert json.loads((record.path / "manifest.json").read_text())[
                "digest"] == record.digest

    @staticmethod
    def _write_version(registry, name, digest, created_unix=None):
        version_dir = registry.version_dir(name, digest)
        version_dir.mkdir(parents=True)
        manifest = {
            "format": 1, "name": name, "digest": digest,
            "privacy": {"epsilon": 1.0, "delta": 1e-5, "mechanism": "test"},
            "inference": {"mode": "private"},
            "training": {},
        }
        if created_unix is not None:
            manifest["created_unix"] = created_unix
        (version_dir / "manifest.json").write_text(json.dumps(manifest))

    def test_list_orders_by_publish_time_not_digest_hex(self, tmp_path):
        """Publish history, not hash order: a later publish whose digest
        sorts lexicographically *first* must still come last."""
        registry = ModelRegistry(tmp_path / "reg")
        self._write_version(registry, "demo", "f" * 64, created_unix=100.0)
        self._write_version(registry, "demo", "0" * 64, created_unix=200.0)
        self._write_version(registry, "demo", "a" * 64, created_unix=150.0)
        digests = [record.digest for record in registry.list("demo")]
        assert digests == ["f" * 64, "a" * 64, "0" * 64]

    def test_list_breaks_publish_time_ties_by_digest(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        self._write_version(registry, "demo", "b" * 64, created_unix=100.0)
        self._write_version(registry, "demo", "a" * 64, created_unix=100.0)
        # And a pre-stamp manifest (no created_unix) sorts before both.
        self._write_version(registry, "demo", "c" * 64)
        digests = [record.digest for record in registry.list("demo")]
        assert digests == ["c" * 64, "a" * 64, "b" * 64]

    def test_names_skips_name_dirs_without_a_committed_version(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        self._write_version(registry, "good", "a" * 64, created_unix=1.0)
        # A torn publish: version dir exists, manifest never landed.
        torn = registry.version_dir("torn", "b" * 64)
        torn.mkdir(parents=True)
        (torn / "model.npz").write_bytes(b"partial")
        # An empty name dir (all versions garbage-collected by hand).
        (registry.models_dir / "empty").mkdir(parents=True)
        assert registry.names() == ["good"]
        assert [record.name for record in registry.list()] == ["good"]


class TestAmbiguousDigestPrefix:
    """A prefix matching two committed versions must raise, never pick one."""

    @staticmethod
    def _write_version(registry, name, digest):
        version_dir = registry.version_dir(name, digest)
        version_dir.mkdir(parents=True)
        (version_dir / "manifest.json").write_text(json.dumps({
            "format": 1, "name": name, "digest": digest,
            "privacy": {"epsilon": 1.0, "delta": 1e-5, "mechanism": "test"},
            "inference": {"mode": "private"},
            "training": {},
        }))

    def test_shared_prefix_raises_clear_error(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        self._write_version(registry, "demo", "deadbeef" + "0" * 56)
        self._write_version(registry, "demo", "deadbeef" + "1" * 56)
        with pytest.raises(ConfigurationError,
                           match="ambiguous.*use more digits"):
            registry.resolve("demo@deadbeef")
        # One more digit disambiguates; the right version comes back.
        record = registry.resolve("demo@deadbeef0")
        assert record.digest == "deadbeef" + "0" * 56
        record = registry.resolve("demo@deadbeef1")
        assert record.digest == "deadbeef" + "1" * 56
