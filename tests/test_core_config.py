"""Tests for GCONConfig validation and normalisation."""

import math

import pytest

from repro.core.config import GCONConfig
from repro.exceptions import ConfigurationError


class TestGCONConfig:
    def test_defaults_are_valid(self):
        config = GCONConfig()
        assert config.num_hops == 1
        assert config.effective_inference_alpha == config.alpha

    def test_step_normalisation(self):
        config = GCONConfig(propagation_steps=(0, 2, "inf", None, math.inf))
        assert config.normalized_steps == (0, 2, math.inf, math.inf, math.inf)
        assert config.num_hops == 5

    def test_invalid_step_string(self):
        with pytest.raises(ConfigurationError):
            GCONConfig(propagation_steps=("two",))

    def test_negative_step(self):
        with pytest.raises(ConfigurationError):
            GCONConfig(propagation_steps=(-1,))

    def test_fractional_step(self):
        with pytest.raises(ConfigurationError):
            GCONConfig(propagation_steps=(1.5,))

    def test_empty_steps(self):
        with pytest.raises(ConfigurationError):
            GCONConfig(propagation_steps=())

    @pytest.mark.parametrize("field,value", [
        ("epsilon", 0.0),
        ("delta", 1.0),
        ("alpha", 0.0),
        ("alpha", 1.5),
        ("loss", "hinge"),
        ("huber_delta", 0.0),
        ("lambda_reg", -1.0),
        ("omega", 1.0),
        ("encoder_dim", 0),
        ("inference_alpha", 2.0),
        ("xi", 0.0),
        ("max_iterations", 0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            GCONConfig(**{field: value})

    def test_inference_alpha_override(self):
        config = GCONConfig(alpha=0.6, inference_alpha=0.1)
        assert config.effective_inference_alpha == 0.1

    def test_delta_none_allowed(self):
        assert GCONConfig(delta=None).delta is None
