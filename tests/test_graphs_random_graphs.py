"""Tests for the classic random-graph dataset factories."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphDataError
from repro.graphs.random_graphs import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    planted_partition_graph,
    ring_of_cliques,
)
from repro.graphs.statistics import compute_statistics, edge_homophily_ratio


class TestErdosRenyi:
    def test_basic_shape_and_splits(self):
        graph = erdos_renyi_graph(120, edge_probability=0.05, num_classes=3,
                                  num_features=10, seed=0)
        assert graph.num_nodes == 120
        assert graph.num_features == 10
        assert graph.num_classes <= 3
        splits = np.concatenate([graph.train_idx, graph.val_idx, graph.test_idx])
        assert np.array_equal(np.sort(splits), np.arange(120))

    def test_edge_count_close_to_expectation(self):
        n, p = 200, 0.05
        graph = erdos_renyi_graph(n, p, seed=1)
        expected = p * n * (n - 1) / 2
        assert abs(graph.num_edges - expected) < 4 * np.sqrt(expected)

    def test_zero_probability_gives_empty_graph(self):
        graph = erdos_renyi_graph(30, 0.0, seed=0)
        assert graph.num_edges == 0

    def test_probability_one_gives_complete_graph(self):
        graph = erdos_renyi_graph(15, 1.0, seed=0)
        assert graph.num_edges == 15 * 14 // 2

    def test_determinism_with_seed(self):
        first = erdos_renyi_graph(60, 0.08, seed=42)
        second = erdos_renyi_graph(60, 0.08, seed=42)
        assert (first.adjacency != second.adjacency).nnz == 0
        assert np.array_equal(first.labels, second.labels)

    def test_validation(self):
        with pytest.raises(GraphDataError):
            erdos_renyi_graph(0, 0.5)
        with pytest.raises(GraphDataError):
            erdos_renyi_graph(10, 1.5)


class TestBarabasiAlbert:
    def test_node_and_edge_counts(self):
        graph = barabasi_albert_graph(150, attachment=2, seed=0)
        assert graph.num_nodes == 150
        # Each of the (n - attachment) added nodes brings `attachment` edges.
        assert graph.num_edges <= (150 - 2) * 2
        assert graph.num_edges >= 150 - 2

    def test_heavy_tail_degrees(self):
        graph = barabasi_albert_graph(400, attachment=2, seed=3)
        statistics = compute_statistics(graph)
        assert statistics.max_degree > 4 * statistics.average_degree

    def test_validation(self):
        with pytest.raises(GraphDataError):
            barabasi_albert_graph(1, attachment=1)
        with pytest.raises(GraphDataError):
            barabasi_albert_graph(10, attachment=10)


class TestPlantedPartition:
    def test_homophilous_regime(self):
        graph = planted_partition_graph(250, num_classes=4, intra_probability=0.08,
                                        inter_probability=0.005, seed=0)
        assert edge_homophily_ratio(graph) > 0.6

    def test_heterophilous_regime(self):
        graph = planted_partition_graph(250, num_classes=4, intra_probability=0.004,
                                        inter_probability=0.05, seed=0)
        assert edge_homophily_ratio(graph) < 0.4

    def test_validation(self):
        with pytest.raises(GraphDataError):
            planted_partition_graph(3, num_classes=5)
        with pytest.raises(GraphDataError):
            planted_partition_graph(50, intra_probability=2.0)

    def test_labels_sorted_into_blocks(self):
        graph = planted_partition_graph(100, num_classes=3, seed=0)
        assert np.all(np.diff(graph.labels) >= 0)


class TestRingOfCliques:
    def test_structure(self):
        graph = ring_of_cliques(num_cliques=4, clique_size=5, seed=0)
        assert graph.num_nodes == 20
        assert graph.num_classes == 4
        # 4 cliques of C(5,2)=10 edges plus 4 bridges.
        assert graph.num_edges == 4 * 10 + 4

    def test_high_homophily(self):
        graph = ring_of_cliques(num_cliques=5, clique_size=6, seed=0)
        assert edge_homophily_ratio(graph) > 0.9

    def test_validation(self):
        with pytest.raises(GraphDataError):
            ring_of_cliques(1, 5)
        with pytest.raises(GraphDataError):
            ring_of_cliques(3, 1)


class TestRandomGraphProperties:
    @given(seed=st.integers(0, 50), p=st.floats(0.01, 0.2))
    @settings(max_examples=15, deadline=None)
    def test_erdos_renyi_always_valid(self, seed, p):
        graph = erdos_renyi_graph(50, p, seed=seed)
        graph.validate()
        assert graph.adjacency.diagonal().sum() == 0
        difference = graph.adjacency - graph.adjacency.T
        assert difference.nnz == 0

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_barabasi_albert_connected_core(self, seed):
        graph = barabasi_albert_graph(80, attachment=2, seed=seed)
        degrees = graph.degrees
        # Preferential attachment never produces isolated added nodes.
        assert np.all(degrees[2:] >= 1)
