"""Tests for the selector-loop HTTP frontend (framing, 400s, keep-alive,
bounded connections, graceful drain)."""

from __future__ import annotations

import json
import socket
import threading
import urllib.request

import pytest

from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.exceptions import ConfigurationError
from repro.graphs.datasets import load_dataset
from repro.serving import (
    InferenceService,
    ModelRegistry,
    parse_predict_payload,
    serve_http,
)
from repro.serving.httpd import _BadRequest, _parse_request


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora_ml", scale=0.06, seed=0)


@pytest.fixture(scope="module")
def model(graph):
    config = GCONConfig(epsilon=2.0, alpha=0.8, encoder_epochs=20,
                        encoder_dim=8, encoder_hidden=16)
    return GCON(config).fit(graph, seed=7)


@pytest.fixture()
def service(tmp_path, model, graph):
    registry = ModelRegistry(tmp_path / "reg")
    registry.publish(model, "demo", inference_mode="private",
                     training={"dataset": "cora_ml", "scale": 0.06,
                               "graph_seed": 0})
    return InferenceService(registry, graph=graph)


@pytest.fixture()
def server(service):
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    service.close()


def _raw(server, payload: bytes, *, reads: int = 1) -> list[bytes]:
    """One blocking socket conversation: send bytes, read ``reads`` responses."""
    port = server.server_address[1]
    with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
        sock.sendall(payload)
        responses, buf = [], b""
        while len(responses) < reads:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
            while True:
                split = _split_one_response(buf)
                if split is None:
                    break
                response, buf = split
                responses.append(response)
        return responses


def _split_one_response(buf: bytes):
    head_end = buf.find(b"\r\n\r\n")
    if head_end < 0:
        return None
    head = buf[:head_end].decode("latin-1")
    length = 0
    for line in head.split("\r\n")[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    total = head_end + 4 + length
    if len(buf) < total:
        return None
    return buf[:total], buf[total:]


def _status(response: bytes) -> int:
    return int(response.split(b" ", 2)[1])


def _body(response: bytes) -> dict:
    return json.loads(response.split(b"\r\n\r\n", 1)[1])


class TestParseRequest:
    def test_incomplete_returns_none_and_consumes_nothing(self):
        buf = bytearray(b"GET /healthz HTTP/1.1\r\nHost: x")
        assert _parse_request(buf) is None
        assert bytes(buf).startswith(b"GET")

    def test_complete_request_is_popped_from_buffer(self):
        buf = bytearray(b"POST /v1/predict HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}"
                        b"GET /stats HTTP/1.1\r\n\r\n")
        method, path, headers, body, keep_alive = _parse_request(buf)
        assert (method, path, body, keep_alive) == ("POST", "/v1/predict",
                                                    b"{}", True)
        method, path, _headers, body, _ka = _parse_request(buf)
        assert (method, path, body) == ("GET", "/stats", b"")
        assert not buf

    def test_keep_alive_defaults_by_version(self):
        http11 = bytearray(b"GET / HTTP/1.1\r\n\r\n")
        assert _parse_request(http11)[4] is True
        closing = bytearray(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert _parse_request(closing)[4] is False
        http10 = bytearray(b"GET / HTTP/1.0\r\n\r\n")
        assert _parse_request(http10)[4] is False

    @pytest.mark.parametrize("raw", [
        b"NONSENSE\r\n\r\n",
        b"GET /x HTTP/1.1\r\nBroken-Header-No-Colon\r\n\r\n",
        b"GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        b"GET /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    ])
    def test_malformed_framing_raises_bad_request(self, raw):
        with pytest.raises(_BadRequest):
            _parse_request(bytearray(raw))

    def test_oversized_header_rejected(self):
        with pytest.raises(_BadRequest) as excinfo:
            _parse_request(bytearray(b"GET /" + b"a" * 40000))
        assert excinfo.value.status == 431


class TestPredictPayloadValidation:
    """Every malformed payload is a ConfigurationError (→ 400), never a 500."""

    @pytest.mark.parametrize("payload", [
        ["not", "a", "dict"],
        {},
        {"model": 7, "nodes": [0]},
        {"model": "demo"},
        {"model": "demo", "nodes": []},
        {"model": "demo", "nodes": [0, "one"]},
        {"model": "demo", "nodes": [0, 1.5]},
        {"model": "demo", "nodes": [True]},
        {"model": "demo", "nodes": [2 ** 63]},   # overflows int64 -> 400, not 500
        {"model": "demo", "nodes": [-(2 ** 63) - 1]},
        {"model": "demo", "nodes": [0], "mode": 3},
        {"model": "demo", "nodes": [0], "top_k": 0},
        {"model": "demo", "nodes": [0], "top_k": "two"},
        {"model": "demo", "nodes": [0], "top_k": True},
    ])
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(ConfigurationError):
            parse_predict_payload(payload)

    def test_valid_payload_parses(self):
        request = parse_predict_payload(
            {"model": "demo@latest", "nodes": [0, 3], "top_k": 2,
             "proba": True})
        assert request.ref == "demo@latest"
        assert request.nodes == [0, 3]
        assert request.top_k == 2
        assert request.proba is True
        assert request.mode is None


class TestHttpFraming:
    def test_malformed_json_body_is_400_with_message(self, server):
        responses = _raw(server,
                         b"POST /v1/predict HTTP/1.1\r\n"
                         b"Content-Length: 9\r\n\r\n{not json")
        assert _status(responses[0]) == 400
        assert "JSON" in _body(responses[0])["error"]

    def test_non_integer_nodes_are_400_not_500(self, server):
        body = json.dumps({"model": "demo", "nodes": [0, 2.5]}).encode()
        responses = _raw(server,
                         b"POST /v1/predict HTTP/1.1\r\n"
                         b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
        assert _status(responses[0]) == 400
        assert "non-empty list of integers" in _body(responses[0])["error"]

    def test_overflowing_node_index_is_400_not_500(self, server):
        body = json.dumps({"model": "demo", "nodes": [2 ** 80]}).encode()
        responses = _raw(server,
                         b"POST /v1/predict HTTP/1.1\r\n"
                         b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
        assert _status(responses[0]) == 400
        assert "64-bit" in _body(responses[0])["error"]

    def test_keep_alive_serves_many_requests_on_one_connection(self, server):
        body = json.dumps({"model": "demo", "nodes": [0, 1]}).encode()
        request = (b"POST /v1/predict HTTP/1.1\r\n"
                   b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
        responses = _raw(server, request * 3 + b"GET /stats HTTP/1.1\r\n\r\n",
                         reads=4)
        assert len(responses) == 4
        assert all(_status(r) == 200 for r in responses)
        assert b"Connection: keep-alive" in responses[0]
        predictions = [_body(r) for r in responses[:3]]
        assert all(p["labels"] == predictions[0]["labels"]
                   for p in predictions)
        assert _body(responses[3])["batcher"]["requests"] >= 3

    def test_connection_close_is_honoured(self, server):
        responses = _raw(server, b"GET /healthz HTTP/1.1\r\n"
                                 b"Connection: close\r\n\r\n")
        assert _status(responses[0]) == 200
        assert b"Connection: close" in responses[0]

    def test_unknown_method_is_405(self, server):
        responses = _raw(server, b"DELETE /stats HTTP/1.1\r\n\r\n")
        assert _status(responses[0]) == 405

    def test_malformed_request_line_is_400_and_closes(self, server):
        responses = _raw(server, b"GARBAGE\r\n\r\n")
        assert _status(responses[0]) == 400
        assert b"Connection: close" in responses[0]


class TestConnectionBounds:
    def test_excess_connections_get_503(self, service):
        server = serve_http(service, port=0, max_connections=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=5.0) as first:
                # Make sure the first connection is registered by the loop.
                first.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
                assert first.recv(65536)
                with socket.create_connection(("127.0.0.1", port),
                                              timeout=5.0) as second:
                    data = second.recv(65536)
                    assert b"503" in data.split(b"\r\n", 1)[0]
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_shutdown_drains_inflight_requests(self, service):
        server = serve_http(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        try:
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/predict",
                data=json.dumps({"model": "demo", "nodes": [0]}).encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=10.0) as response:
                assert response.status == 200
        finally:
            server.shutdown()
            server.server_close()
            service.close()
        assert not thread.is_alive() or thread.join(5.0) is None
