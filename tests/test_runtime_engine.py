"""Tests for the parallel experiment engine: expansion, determinism, resume.

The synthetic cell runner below is a module-level class so the process pool
can pickle it; its score is a pure function of the cell identity and seed,
which makes bitwise comparisons between schedules meaningful.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.runner import ExperimentRunner, aggregate_results
from repro.exceptions import ConfigurationError
from repro.runtime.cells import (
    ExperimentResult,
    derive_cell_seed,
    expand_cells,
    result_key,
)
from repro.runtime.engine import ParallelExperimentRunner, SweepExecutionError
from repro.runtime.store import JsonlResultStore
from repro.utils.random import as_rng, spawn_rngs


class SeededStubRunner:
    """Deterministic, picklable cell runner: score derived from the cell seed."""

    def __call__(self, cell):
        score = float(np.random.default_rng(cell.seed).random())
        return ExperimentResult(method=cell.method, dataset=cell.dataset,
                                epsilon=cell.epsilon, repeat=cell.repeat,
                                micro_f1=score)


class FailingRunner:
    def __call__(self, cell):
        raise RuntimeError("boom")


class TestExpandCells:
    def test_canonical_order_and_indices(self):
        cells = expand_cells(["m1", "m2"], ["d1"], [0.5, 1.0], repeats=2, seed=0)
        assert [c.index for c in cells] == list(range(8))
        assert [c.key() for c in cells[:4]] == [
            ("m1", "d1", 0.5, 0), ("m1", "d1", 0.5, 1),
            ("m1", "d1", 1.0, 0), ("m1", "d1", 1.0, 1),
        ]

    def test_repeat_axis_seeds_are_epsilon_independent(self):
        cells = expand_cells(["m"], ["d"], [0.5, 1.0, 2.0], repeats=2, seed=7)
        by_repeat = {}
        for cell in cells:
            by_repeat.setdefault(cell.repeat, set()).add(cell.seed)
        # One shared seed per repeat across all three epsilons...
        assert all(len(seeds) == 1 for seeds in by_repeat.values())
        # ...but different seeds across repeats, methods and master seeds.
        assert by_repeat[0] != by_repeat[1]
        other_master = expand_cells(["m"], ["d"], [0.5], repeats=1, seed=8)
        assert other_master[0].seed != cells[0].seed
        other_method = expand_cells(["m2"], ["d"], [0.5], repeats=1, seed=7)
        assert other_method[0].seed != cells[0].seed

    def test_repeat_axis_derivation_is_stable(self):
        # Pure function of the identifiers: independent of expansion order,
        # process and PYTHONHASHSEED.
        assert derive_cell_seed(7, "d", "m", 0) == \
            expand_cells(["m"], ["d"], [0.5], 1, seed=7)[0].seed

    def test_epsilon_axis_matches_legacy_serial_derivation(self):
        repeats = 2
        cells = expand_cells(["m1", "m2"], ["d1", "d2"], [0.5, 1.0], repeats,
                             seed=3, seed_axis="epsilon")
        master = as_rng(3)
        expected = []
        for _dataset in ("d1", "d2"):
            for _method in ("m1", "m2"):
                for _epsilon in (0.5, 1.0):
                    for rng in spawn_rngs(master, repeats):
                        expected.append(int(rng.integers(0, 2**31 - 1)))
        assert [c.seed for c in cells] == expected

    def test_group_shared_across_epsilons(self):
        cells = expand_cells(["m"], ["d"], [0.5, 1.0], repeats=2, seed=0)
        groups = {}
        for cell in cells:
            groups.setdefault((cell.dataset, cell.method, cell.repeat), set()).add(cell.group)
        assert all(len(g) == 1 for g in groups.values())
        assert len({next(iter(g)) for g in groups.values()}) == 2

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_cells([], ["d"], [1.0], 1)
        with pytest.raises(ConfigurationError):
            expand_cells(["m"], [], [1.0], 1)
        with pytest.raises(ConfigurationError):
            expand_cells(["m"], ["d"], [], 1)
        with pytest.raises(ConfigurationError):
            expand_cells(["m"], ["d"], [1.0], 0)
        with pytest.raises(ConfigurationError):
            expand_cells(["m"], ["d"], [1.0], 1, seed_axis="bogus")


class TestEngine:
    def _cells(self, repeats=3):
        return expand_cells(["m1", "m2"], ["d1", "d2"], [0.5, 1.0, 2.0],
                            repeats=repeats, seed=11)

    def test_serial_results_in_canonical_order(self):
        cells = self._cells()
        results = ParallelExperimentRunner(SeededStubRunner()).run(cells)
        assert [result_key(r) for r in results] == [c.key() for c in cells]

    def test_jobs4_bitwise_equals_serial(self):
        cells = self._cells()
        serial = ParallelExperimentRunner(SeededStubRunner(), jobs=1).run(cells)
        parallel = ParallelExperimentRunner(SeededStubRunner(), jobs=4).run(cells)
        assert [r.micro_f1 for r in parallel] == [r.micro_f1 for r in serial]
        # Aggregates (mean/std/min/max) are bitwise identical too.
        assert aggregate_results(parallel) == aggregate_results(serial)

    def test_empty_cell_list(self):
        assert ParallelExperimentRunner(SeededStubRunner()).run([]) == []

    def test_duplicate_cells_rejected(self):
        cells = self._cells(repeats=1)
        with pytest.raises(ConfigurationError):
            ParallelExperimentRunner(SeededStubRunner()).run(cells + cells[:1])

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExperimentRunner(SeededStubRunner(), jobs=0)

    def test_cell_failure_is_wrapped(self):
        cells = self._cells(repeats=1)
        with pytest.raises(SweepExecutionError, match="failed"):
            ParallelExperimentRunner(FailingRunner()).run(cells)


class TestResume:
    def test_resume_skips_completed_cells(self, tmp_path):
        cells = expand_cells(["m"], ["d"], [0.5, 1.0, 2.0], repeats=2, seed=5)
        path = tmp_path / "results.jsonl"

        store = JsonlResultStore(path)
        full = ParallelExperimentRunner(SeededStubRunner(), store=store).run(cells)
        assert len(store.load()) == len(cells)

        # A second run against the same store recomputes nothing: a runner
        # that would fail on any executed cell returns the stored results.
        resumed = ParallelExperimentRunner(FailingRunner(),
                                           store=JsonlResultStore(path)).run(cells)
        assert [r.micro_f1 for r in resumed] == [r.micro_f1 for r in full]

    def test_resume_from_partial_store_with_truncated_tail(self, tmp_path):
        cells = expand_cells(["m"], ["d"], [0.5, 1.0, 2.0], repeats=2, seed=5)
        path = tmp_path / "results.jsonl"

        # Record only the first half, then simulate a crash mid-append.
        store = JsonlResultStore(path)
        half = cells[: len(cells) // 2]
        for result in ParallelExperimentRunner(SeededStubRunner()).run(half):
            store.append(result)
        store.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"method": "m", "dataset"')

        resumed = ParallelExperimentRunner(SeededStubRunner(),
                                           store=JsonlResultStore(path)).run(cells)
        fresh = ParallelExperimentRunner(SeededStubRunner()).run(cells)
        assert [r.micro_f1 for r in resumed] == [r.micro_f1 for r in fresh]
        # The store now holds every cell exactly once.
        assert len(JsonlResultStore(path).load()) == len(cells)

    def test_store_results_only_used_for_matching_cells(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = JsonlResultStore(path)
        store.append(ExperimentResult("other", "d", 0.5, 0, 0.99))
        store.close()
        cells = expand_cells(["m"], ["d"], [0.5], repeats=1, seed=5)
        results = ParallelExperimentRunner(SeededStubRunner(),
                                           store=JsonlResultStore(path)).run(cells)
        assert results[0].method == "m"
        assert results[0].micro_f1 != 0.99


class TestExperimentRunnerDelegation:
    """The registry front-end must keep its legacy serial numbers."""

    class _SeedRecorder:
        def __init__(self):
            self.calls = set()

        def factory(self, epsilon, delta, seed):
            self.calls.add((epsilon, seed))
            return self

        def fit(self, graph, seed=None):
            return self

        def predict(self, graph, mode=None):
            return graph.labels

    def test_legacy_seed_stream_preserved(self, tiny_graph):
        # Execution order is schedule-dependent (cells are grouped by repeat),
        # but every cell must receive exactly the seed the original serial
        # nested loop would have drawn for it.
        recorder = self._SeedRecorder()
        runner = ExperimentRunner(repeats=2, seed=9)
        runner.register("m", recorder.factory)
        runner.run({"tiny": tiny_graph}, epsilons=[0.5, 1.0])

        master = as_rng(9)
        expected = set()
        for epsilon in (0.5, 1.0):
            for rng in spawn_rngs(master, 2):
                expected.add((epsilon, int(rng.integers(0, 2**31 - 1))))
        assert recorder.calls == expected

    def test_jobs_parameter_validated(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(jobs=0)


class TestFigureCellRunnerIntegration:
    """End-to-end: real GCON/MLP cells through the engine, serial vs pooled."""

    def _settings(self):
        from repro.evaluation.figures import FigureSettings

        return FigureSettings(scale=0.06, repeats=1, epochs=20, encoder_epochs=25,
                              encoder_dim=8, encoder_hidden=16,
                              datasets=("cora_ml",), epsilons=(0.5, 2.0))

    def test_jobs2_bitwise_equals_serial_with_real_models(self):
        from repro.runtime.workers import FigureCellRunner, clear_worker_memos

        settings = self._settings()
        cells = expand_cells(["GCON", "MLP"], settings.datasets, settings.epsilons,
                             settings.repeats, seed=settings.seed)
        clear_worker_memos()
        serial = ParallelExperimentRunner(FigureCellRunner(settings=settings),
                                          jobs=1).run(cells)
        clear_worker_memos()
        parallel = ParallelExperimentRunner(FigureCellRunner(settings=settings),
                                            jobs=2).run(cells)
        assert [r.micro_f1 for r in parallel] == [r.micro_f1 for r in serial]
        assert aggregate_results(parallel) == aggregate_results(serial)

    def test_preparation_reused_across_epsilon_axis(self):
        from repro.runtime import workers
        from repro.runtime.workers import FigureCellRunner, clear_worker_memos

        settings = self._settings()
        cells = expand_cells(["GCON"], settings.datasets, settings.epsilons,
                             settings.repeats, seed=settings.seed)
        clear_worker_memos()
        ParallelExperimentRunner(FigureCellRunner(settings=settings)).run(cells)
        # Two epsilons, one (method, dataset, repeat) group: exactly one
        # preparation (encoder + propagation) for the whole epsilon sweep.
        assert len(workers._PREP_MEMO) == 1


class TestResumeContext:
    def test_changed_context_recomputes_instead_of_reusing(self, tmp_path):
        cells = expand_cells(["m"], ["d"], [0.5, 1.0], repeats=1, seed=5)
        path = tmp_path / "results.jsonl"

        first = ParallelExperimentRunner(
            SeededStubRunner(), store=JsonlResultStore(path),
            resume_context={"scale": 0.06}).run(cells)

        # Same context: everything is reused (a failing runner proves it).
        reused = ParallelExperimentRunner(
            FailingRunner(), store=JsonlResultStore(path),
            resume_context={"scale": 0.06}).run(cells)
        assert [r.micro_f1 for r in reused] == [r.micro_f1 for r in first]

        # Different context: the stored records must NOT satisfy the sweep.
        with pytest.raises(SweepExecutionError):
            ParallelExperimentRunner(
                FailingRunner(), store=JsonlResultStore(path),
                resume_context={"scale": 0.25}).run(cells)

    def test_no_context_keeps_plain_key_matching(self, tmp_path):
        cells = expand_cells(["m"], ["d"], [0.5], repeats=1, seed=5)
        path = tmp_path / "results.jsonl"
        ParallelExperimentRunner(SeededStubRunner(),
                                 store=JsonlResultStore(path)).run(cells)
        reused = ParallelExperimentRunner(FailingRunner(),
                                          store=JsonlResultStore(path)).run(cells)
        assert len(reused) == 1


class SlowFailingRunner:
    """Fails on method 'bad' (after a delay); succeeds instantly otherwise."""

    def __call__(self, cell):
        if cell.method == "bad":
            import time

            time.sleep(0.3)
            raise RuntimeError("boom")
        return SeededStubRunner()(cell)


class TestPartialFailurePersistence:
    def test_completed_groups_are_stored_before_the_failure_raises(self, tmp_path):
        cells = expand_cells(["good", "bad"], ["d"], [0.5, 1.0], repeats=1, seed=5)
        path = tmp_path / "results.jsonl"
        with pytest.raises(SweepExecutionError):
            ParallelExperimentRunner(SlowFailingRunner(), jobs=2,
                                     store=JsonlResultStore(path)).run(cells)
        stored = JsonlResultStore(path).load()
        # The 'good' group finished well before 'bad' failed; its two cells
        # must survive in the store so a resume does not recompute them.
        assert {result_key(r) for r in stored} == {
            ("good", "d", 0.5, 0), ("good", "d", 1.0, 0),
        }
