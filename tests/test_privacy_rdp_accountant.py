"""Tests for RDP accounting, noise calibration and the budget ledger."""

import numpy as np
import pytest

from repro.exceptions import PrivacyBudgetError
from repro.privacy.accountant import BudgetLedger, RdpAccountant
from repro.privacy.rdp import (
    DEFAULT_ORDERS,
    calibrate_gaussian_noise_rdp,
    rdp_gaussian,
    rdp_subsampled_gaussian,
    rdp_to_dp,
)


class TestRdpGaussian:
    def test_matches_closed_form(self):
        orders = np.array([2.0, 4.0, 8.0])
        np.testing.assert_allclose(rdp_gaussian(2.0, orders), orders / 8.0)

    def test_sensitivity_scaling(self):
        orders = np.array([2.0])
        base = rdp_gaussian(2.0, orders, sensitivity=1.0)
        scaled = rdp_gaussian(2.0, orders, sensitivity=2.0)
        assert scaled[0] == pytest.approx(4 * base[0])

    def test_invalid_sigma(self):
        with pytest.raises(PrivacyBudgetError):
            rdp_gaussian(0.0)


class TestSubsampledGaussian:
    def test_zero_sampling_rate_gives_zero(self):
        rdp = rdp_subsampled_gaussian(0.0, 1.0, 100)
        assert np.all(rdp == 0.0)

    def test_full_sampling_equals_gaussian(self):
        orders = np.array([2.0, 8.0])
        np.testing.assert_allclose(
            rdp_subsampled_gaussian(1.0, 1.5, 10, orders),
            10 * rdp_gaussian(1.5, orders),
        )

    def test_subsampling_amplifies_privacy(self):
        orders = np.array([4.0])
        subsampled = rdp_subsampled_gaussian(0.01, 1.0, 1, orders)[0]
        full = rdp_gaussian(1.0, orders)[0]
        assert subsampled < full

    def test_monotone_in_steps(self):
        few = rdp_subsampled_gaussian(0.1, 1.0, 10)
        many = rdp_subsampled_gaussian(0.1, 1.0, 100)
        assert np.all(many >= few)

    def test_invalid_inputs(self):
        with pytest.raises(PrivacyBudgetError):
            rdp_subsampled_gaussian(1.5, 1.0, 10)
        with pytest.raises(PrivacyBudgetError):
            rdp_subsampled_gaussian(0.5, 1.0, -1)


class TestRdpToDp:
    def test_smaller_delta_gives_larger_epsilon(self):
        rdp = rdp_gaussian(1.0)
        eps_loose, _ = rdp_to_dp(rdp, 1e-3)
        eps_tight, _ = rdp_to_dp(rdp, 1e-8)
        assert eps_tight > eps_loose

    def test_returns_an_available_order(self):
        rdp = rdp_gaussian(2.0)
        _, order = rdp_to_dp(rdp, 1e-5)
        assert order in np.asarray(DEFAULT_ORDERS)

    def test_invalid_delta(self):
        with pytest.raises(PrivacyBudgetError):
            rdp_to_dp(rdp_gaussian(1.0), 0.0)


class TestCalibration:
    def test_calibrated_sigma_meets_budget(self):
        sigma = calibrate_gaussian_noise_rdp(2.0, 1e-5, q=0.1, steps=100)
        rdp = rdp_subsampled_gaussian(0.1, sigma, 100)
        epsilon, _ = rdp_to_dp(rdp, 1e-5)
        assert epsilon <= 2.0 + 1e-6

    def test_smaller_epsilon_needs_more_noise(self):
        tight = calibrate_gaussian_noise_rdp(0.5, 1e-5, q=0.1, steps=50)
        loose = calibrate_gaussian_noise_rdp(4.0, 1e-5, q=0.1, steps=50)
        assert tight > loose


class TestRdpAccountant:
    def test_accumulates_epsilon(self):
        accountant = RdpAccountant()
        accountant.add_gaussian(sigma=2.0)
        first = accountant.get_epsilon(1e-5)
        accountant.add_gaussian(sigma=2.0)
        second = accountant.get_epsilon(1e-5)
        assert second > first

    def test_empty_accountant_is_free(self):
        assert RdpAccountant().get_epsilon(1e-5) == 0.0

    def test_subsampled_event_recorded(self):
        accountant = RdpAccountant()
        accountant.add_subsampled_gaussian(q=0.2, sigma=1.0, steps=10)
        assert accountant.events[0]["kind"] == "subsampled_gaussian"
        assert accountant.get_epsilon(1e-5) > 0


class TestBudgetLedger:
    def test_spend_within_budget(self):
        ledger = BudgetLedger(total_epsilon=1.0, total_delta=1e-5)
        ledger.spend(0.4, label="stage 1")
        ledger.spend(0.6, label="stage 2")
        assert ledger.remaining_epsilon == pytest.approx(0.0)

    def test_overspend_raises(self):
        ledger = BudgetLedger(total_epsilon=1.0, total_delta=0.0)
        ledger.spend(0.9)
        with pytest.raises(PrivacyBudgetError):
            ledger.spend(0.2)

    def test_delta_overspend_raises(self):
        ledger = BudgetLedger(total_epsilon=1.0, total_delta=1e-6)
        with pytest.raises(PrivacyBudgetError):
            ledger.spend(0.1, delta=1e-5)

    def test_negative_spend_rejected(self):
        ledger = BudgetLedger(total_epsilon=1.0, total_delta=0.0)
        with pytest.raises(PrivacyBudgetError):
            ledger.spend(-0.1)

    def test_entries_record_labels(self):
        ledger = BudgetLedger(total_epsilon=1.0, total_delta=0.0)
        ledger.spend(0.5, label="adjacency")
        assert ledger.entries[0]["label"] == "adjacency"
