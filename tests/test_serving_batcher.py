"""Tests for the micro-batching request queue."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serving import MicroBatcher


class CountingScorer:
    """Scores node i as [i, 2i]; counts every (model, batch) execution."""

    def __init__(self):
        self.calls: list[tuple[object, np.ndarray]] = []
        self.lock = threading.Lock()

    def __call__(self, model_key, nodes: np.ndarray) -> np.ndarray:
        with self.lock:
            self.calls.append((model_key, nodes.copy()))
        return np.stack([nodes.astype(float), 2.0 * nodes], axis=1)


class TestRunOnce:
    """Deterministic batching semantics via the synchronous drain."""

    def test_queued_requests_coalesce_into_one_matmul(self):
        scorer = CountingScorer()
        batcher = MicroBatcher(scorer, max_batch_size=64)
        tickets = [batcher.submit("m", [i]) for i in range(5)]
        assert batcher.run_once() == 5
        assert len(scorer.calls) == 1  # one stacked matmul for all five
        np.testing.assert_array_equal(scorer.calls[0][1], np.arange(5))
        for i, ticket in enumerate(tickets):
            np.testing.assert_array_equal(ticket.result(1.0), [[i, 2 * i]])
        assert batcher.stats.batches == 1
        assert batcher.stats.matmuls == 1
        assert batcher.stats.coalesced_requests == 5

    def test_one_matmul_per_model_in_a_mixed_batch(self):
        scorer = CountingScorer()
        batcher = MicroBatcher(scorer, max_batch_size=64)
        t1 = batcher.submit("model-a", [1, 2])
        t2 = batcher.submit("model-b", [3])
        t3 = batcher.submit("model-a", [4])
        batcher.run_once()
        assert len(scorer.calls) == 2  # one per model, not one per request
        by_model = {key: nodes for key, nodes in scorer.calls}
        np.testing.assert_array_equal(by_model["model-a"], [1, 2, 4])
        np.testing.assert_array_equal(by_model["model-b"], [3])
        np.testing.assert_array_equal(t1.result(1.0), [[1, 2], [2, 4]])
        np.testing.assert_array_equal(t2.result(1.0), [[3, 6]])
        np.testing.assert_array_equal(t3.result(1.0), [[4, 8]])

    def test_multi_node_requests_are_split_back_correctly(self):
        scorer = CountingScorer()
        batcher = MicroBatcher(scorer, max_batch_size=64)
        t1 = batcher.submit("m", [10, 11, 12])
        t2 = batcher.submit("m", [20])
        t3 = batcher.submit("m", [30, 31])
        batcher.run_once()
        np.testing.assert_array_equal(t1.result(1.0)[:, 0], [10, 11, 12])
        np.testing.assert_array_equal(t2.result(1.0)[:, 0], [20])
        np.testing.assert_array_equal(t3.result(1.0)[:, 0], [30, 31])

    def test_scorer_error_propagates_to_every_caller_of_that_model(self):
        def scorer(model_key, nodes):
            if model_key == "bad":
                raise ValueError("poisoned model")
            return np.zeros((nodes.size, 2))

        batcher = MicroBatcher(scorer, max_batch_size=64)
        good = batcher.submit("good", [1])
        bad1 = batcher.submit("bad", [2])
        bad2 = batcher.submit("bad", [3])
        batcher.run_once()
        assert good.result(1.0).shape == (1, 2)
        for ticket in (bad1, bad2):
            with pytest.raises(ValueError, match="poisoned model"):
                ticket.result(1.0)

    def test_invalid_submissions_rejected(self):
        batcher = MicroBatcher(CountingScorer())
        with pytest.raises(ValueError):
            batcher.submit("m", [])
        with pytest.raises(ValueError):
            MicroBatcher(CountingScorer(), max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(CountingScorer(), max_latency=-1)

    def test_inline_execution_without_a_thread(self):
        """predict_scores works with no dispatch thread running."""
        scorer = CountingScorer()
        batcher = MicroBatcher(scorer)
        np.testing.assert_array_equal(
            batcher.predict_scores("m", [7]), [[7, 14]])


class TestDispatchThread:
    def test_concurrent_callers_coalesce(self):
        scorer = CountingScorer()
        # A generous latency window so all threads land in one batch.
        with MicroBatcher(scorer, max_batch_size=1024,
                          max_latency=0.25) as batcher:
            results = [None] * 16
            errors = []

            def query(i):
                try:
                    results[i] = batcher.predict_scores("m", [i], timeout=10.0)
                except Exception as error:  # pragma: no cover - diagnostics
                    errors.append(error)

            threads = [threading.Thread(target=query, args=(i,))
                       for i in range(16)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        for i, scores in enumerate(results):
            np.testing.assert_array_equal(scores, [[i, 2 * i]])
        # 16 requests cannot have taken 16 separate batches: the window
        # coalesces them (leave slack for scheduling jitter).
        assert batcher.stats.batches < 16
        assert batcher.stats.coalesced_requests > 0

    def test_max_batch_size_flushes_early(self):
        scorer = CountingScorer()
        batcher = MicroBatcher(scorer, max_batch_size=4, max_latency=30.0)
        batcher.start()
        try:
            tickets = [batcher.submit("m", [i]) for i in range(4)]
            # With max_latency=30s, only the size trigger can flush this.
            for ticket in tickets:
                assert ticket.result(10.0) is not None
        finally:
            batcher.close()

    def test_close_flushes_stragglers(self):
        scorer = CountingScorer()
        batcher = MicroBatcher(scorer, max_batch_size=64, max_latency=30.0)
        batcher.start()
        ticket = batcher.submit("m", [5])
        batcher.close()
        np.testing.assert_array_equal(ticket.result(1.0), [[5, 10]])
