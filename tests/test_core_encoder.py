"""Tests for the public MLP feature encoder (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.encoder import MLPEncoder
from repro.exceptions import ConfigurationError, NotFittedError


class TestMLPEncoder:
    def test_requires_fit_before_encode(self):
        encoder = MLPEncoder(output_dim=4)
        with pytest.raises(NotFittedError):
            encoder.encode(np.zeros((3, 5)))

    def test_encode_shape(self, tiny_graph):
        encoder = MLPEncoder(output_dim=8, hidden_dim=16, epochs=30, seed=0)
        encoder.fit(tiny_graph.features, tiny_graph.labels, tiny_graph.train_idx)
        encoded = encoder.encode(tiny_graph.features)
        assert encoded.shape == (tiny_graph.num_nodes, 8)

    def test_predict_proba_rows_sum_to_one(self, tiny_graph):
        encoder = MLPEncoder(output_dim=8, hidden_dim=16, epochs=30, seed=0)
        encoder.fit(tiny_graph.features, tiny_graph.labels, tiny_graph.train_idx)
        proba = encoder.predict_proba(tiny_graph.features)
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(tiny_graph.num_nodes), atol=1e-9)

    def test_training_loss_decreases(self, tiny_graph):
        encoder = MLPEncoder(output_dim=8, hidden_dim=32, epochs=80, seed=0)
        encoder.fit(tiny_graph.features, tiny_graph.labels, tiny_graph.train_idx)
        assert encoder.history_[-1] < encoder.history_[0]

    def test_learns_separable_problem(self):
        """On trivially separable features the encoder should fit the training set."""
        rng = np.random.default_rng(0)
        labels = np.repeat(np.arange(3), 30)
        features = np.zeros((90, 6))
        features[np.arange(90), labels] = 1.0
        features += 0.05 * rng.normal(size=features.shape)
        encoder = MLPEncoder(output_dim=4, hidden_dim=16, epochs=150, dropout=0.0, seed=0)
        encoder.fit(features, labels, np.arange(90))
        accuracy = np.mean(encoder.predict(features) == labels)
        assert accuracy > 0.95

    def test_beats_chance_on_tiny_graph(self, tiny_graph):
        encoder = MLPEncoder(output_dim=8, hidden_dim=32, epochs=120, seed=0)
        encoder.fit(tiny_graph.features, tiny_graph.labels, tiny_graph.train_idx)
        predictions = encoder.predict(tiny_graph.features)
        test_accuracy = np.mean(predictions[tiny_graph.test_idx]
                                == tiny_graph.labels[tiny_graph.test_idx])
        assert test_accuracy > 1.5 / tiny_graph.num_classes

    def test_deterministic_given_seed(self, tiny_graph):
        def run():
            encoder = MLPEncoder(output_dim=4, hidden_dim=8, epochs=20, dropout=0.0, seed=3)
            encoder.fit(tiny_graph.features, tiny_graph.labels, tiny_graph.train_idx)
            return encoder.encode(tiny_graph.features)

        np.testing.assert_allclose(run(), run())

    def test_empty_train_idx_rejected(self, tiny_graph):
        encoder = MLPEncoder(output_dim=4, epochs=5)
        with pytest.raises(ConfigurationError):
            encoder.fit(tiny_graph.features, tiny_graph.labels, np.array([], dtype=int))

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ConfigurationError):
            MLPEncoder(output_dim=0)
        with pytest.raises(ConfigurationError):
            MLPEncoder(epochs=0)
