"""Tests for the Theorem-1 parameter chain (Eqs. 17-24) and noise sampling."""

import numpy as np
import pytest
from scipy import special

from repro.core.losses import MultiLabelSoftMarginLoss, PseudoHuberLoss
from repro.core.perturbation import (
    compute_perturbation_parameters,
    erlang_quantile,
    sample_noise_matrix,
)
from repro.exceptions import ConfigurationError, PrivacyBudgetError


def make_params(**overrides):
    defaults = dict(
        epsilon=1.0,
        delta=1e-4,
        omega=0.9,
        loss=MultiLabelSoftMarginLoss(num_classes=5),
        sensitivity=0.5,
        num_labeled=500,
        num_classes=5,
        dimension=16,
        lambda_reg=0.2,
    )
    defaults.update(overrides)
    return compute_perturbation_parameters(**defaults)


class TestErlangQuantile:
    def test_matches_scipy_inverse_gamma(self):
        value = erlang_quantile(10, 0.999)
        assert special.gammainc(10, value) == pytest.approx(0.999, rel=1e-9)

    def test_monotone_in_probability(self):
        assert erlang_quantile(8, 0.999) > erlang_quantile(8, 0.9)

    def test_monotone_in_dimension(self):
        assert erlang_quantile(32, 0.99) > erlang_quantile(8, 0.99)

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            erlang_quantile(0, 0.9)
        with pytest.raises(ConfigurationError):
            erlang_quantile(4, 1.0)


class TestParameterChain:
    def test_equation_21_csf(self):
        params = make_params()
        expected = special.gammaincinv(params.dimension, 1.0 - params.delta / params.num_classes)
        assert params.c_sf == pytest.approx(expected)

    def test_equation_22_lambda_bar_floor(self):
        params = make_params(lambda_reg=1e-6)
        floor = (params.num_classes * params.c2 * params.sensitivity * params.c_sf
                 / (params.num_labeled * params.omega * params.epsilon))
        assert params.lambda_bar >= floor
        assert params.lambda_bar > params.lambda_input

    def test_lambda_bar_keeps_user_value_when_large_enough(self):
        params = make_params(lambda_reg=5.0)
        assert params.lambda_bar == 5.0

    def test_equation_23_c_theta_positive(self):
        params = make_params()
        assert params.c_theta > 0

    def test_equation_24_epsilon_lambda(self):
        params = make_params()
        expected = params.num_classes * params.dimension * np.log(
            1.0 + (2 * params.c2 + params.c3 * params.c_theta) * params.sensitivity
            / (params.dimension * params.num_labeled * params.lambda_bar)
        )
        assert params.epsilon_lambda == pytest.approx(expected)

    def test_equation_17_lambda_prime_zero_when_budget_suffices(self):
        params = make_params(num_labeled=5000, epsilon=4.0)
        assert params.epsilon_lambda <= (1 - params.omega) * params.epsilon
        assert params.lambda_prime == 0.0

    def test_equation_18_beta_positive_and_monotone_in_epsilon(self):
        loose = make_params(epsilon=4.0)
        tight = make_params(epsilon=0.5)
        assert loose.beta > tight.beta > 0

    def test_beta_decreases_with_sensitivity(self):
        low = make_params(sensitivity=0.2)
        high = make_params(sensitivity=2.0)
        assert low.beta > high.beta

    def test_more_labeled_nodes_reduce_required_regularisation(self):
        small = make_params(num_labeled=100, lambda_reg=1e-6)
        large = make_params(num_labeled=10_000, lambda_reg=1e-6)
        assert large.lambda_bar <= small.lambda_bar

    def test_total_quadratic_coefficient(self):
        params = make_params()
        assert params.total_quadratic_coefficient == pytest.approx(
            params.lambda_bar + params.lambda_prime
        )

    def test_zero_sensitivity_means_no_noise(self):
        params = make_params(sensitivity=0.0)
        assert not params.requires_noise
        assert params.lambda_prime == 0.0
        assert params.lambda_bar == params.lambda_input
        assert params.beta == float("inf")

    def test_pseudo_huber_loss_supported(self):
        params = make_params(loss=PseudoHuberLoss(num_classes=5, huber_delta=0.2))
        assert params.beta > 0

    def test_invalid_inputs(self):
        with pytest.raises(PrivacyBudgetError):
            make_params(epsilon=0.0)
        with pytest.raises(PrivacyBudgetError):
            make_params(delta=0.0)
        with pytest.raises(ConfigurationError):
            make_params(omega=1.0)
        with pytest.raises(ConfigurationError):
            make_params(num_labeled=0)
        with pytest.raises(ConfigurationError):
            make_params(sensitivity=-1.0)
        with pytest.raises(ConfigurationError):
            make_params(lambda_reg=0.0)


class TestNoiseSampling:
    def test_shape_matches_dimension_and_classes(self):
        params = make_params(dimension=12, num_classes=4)
        noise = sample_noise_matrix(params, rng=0)
        assert noise.shape == (12, 4)

    def test_zero_noise_when_not_required(self):
        params = make_params(sensitivity=0.0)
        noise = sample_noise_matrix(params, rng=0)
        assert np.all(noise == 0.0)

    def test_column_radii_follow_erlang_mean(self):
        params = make_params(dimension=24, num_classes=3, epsilon=2.0)
        radii = []
        for seed in range(300):
            noise = sample_noise_matrix(params, rng=seed)
            radii.extend(np.linalg.norm(noise, axis=0).tolist())
        assert np.mean(radii) == pytest.approx(params.dimension / params.beta, rel=0.1)

    def test_deterministic_given_rng(self):
        params = make_params()
        first = sample_noise_matrix(params, rng=5)
        second = sample_noise_matrix(params, rng=5)
        np.testing.assert_array_equal(first, second)
