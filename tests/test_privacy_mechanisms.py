"""Tests for the classical DP mechanisms and the budget specification."""

import numpy as np
import pytest
from scipy import stats

from repro.exceptions import PrivacyBudgetError
from repro.privacy.definitions import PrivacySpec
from repro.privacy.mechanisms import (
    analytic_gaussian_sigma,
    gaussian_mechanism,
    gaussian_sigma,
    laplace_mechanism,
    randomized_response_matrix,
)


class TestPrivacySpec:
    def test_valid(self):
        spec = PrivacySpec(1.0, 1e-4)
        assert str(spec).startswith("(ε=1")

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacySpec(0.0, 1e-4)

    def test_invalid_delta(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacySpec(1.0, 1.0)

    def test_for_graph_uses_inverse_edge_count(self, tiny_graph):
        spec = PrivacySpec.for_graph(2.0, tiny_graph)
        assert spec.delta == pytest.approx(1.0 / tiny_graph.num_edges)

    def test_split_sums_to_total(self):
        first, second = PrivacySpec(2.0, 1e-4).split(0.25)
        assert first.epsilon + second.epsilon == pytest.approx(2.0)
        with pytest.raises(PrivacyBudgetError):
            PrivacySpec(2.0, 1e-4).split(1.5)


class TestLaplaceMechanism:
    def test_noise_scale_matches_theory(self):
        rng = np.random.default_rng(0)
        values = np.zeros(200_000)
        noisy = laplace_mechanism(values, sensitivity=2.0, epsilon=0.5, rng=rng)
        # Laplace(b) has std b * sqrt(2) with b = sensitivity / epsilon = 4.
        assert noisy.std() == pytest.approx(4.0 * np.sqrt(2.0), rel=0.02)
        assert abs(noisy.mean()) < 0.05

    def test_invalid_parameters(self):
        with pytest.raises(PrivacyBudgetError):
            laplace_mechanism(np.zeros(3), sensitivity=0.0, epsilon=1.0)
        with pytest.raises(PrivacyBudgetError):
            laplace_mechanism(np.zeros(3), sensitivity=1.0, epsilon=-1.0)

    def test_preserves_shape(self):
        out = laplace_mechanism(np.zeros((3, 4)), 1.0, 1.0, rng=0)
        assert out.shape == (3, 4)


class TestGaussianMechanism:
    def test_classical_sigma_formula(self):
        sigma = gaussian_sigma(sensitivity=1.0, epsilon=1.0, delta=1e-5)
        assert sigma == pytest.approx(np.sqrt(2 * np.log(1.25e5)), rel=1e-9)

    def test_analytic_sigma_is_tighter_for_large_epsilon(self):
        classical = gaussian_sigma(1.0, 4.0, 1e-5)
        analytic = analytic_gaussian_sigma(1.0, 4.0, 1e-5)
        assert analytic < classical

    def test_analytic_sigma_satisfies_definition(self):
        sensitivity, epsilon, delta = 1.0, 1.5, 1e-4
        sigma = analytic_gaussian_sigma(sensitivity, epsilon, delta)
        a = sensitivity / (2 * sigma)
        b = epsilon * sigma / sensitivity
        achieved = stats.norm.cdf(a - b) - np.exp(epsilon) * stats.norm.cdf(-a - b)
        assert achieved == pytest.approx(delta, rel=1e-6)

    def test_sigma_decreases_with_epsilon(self):
        sigmas = [analytic_gaussian_sigma(1.0, eps, 1e-5) for eps in (0.5, 1.0, 2.0, 4.0)]
        assert sigmas == sorted(sigmas, reverse=True)

    def test_mechanism_adds_noise(self):
        values = np.zeros(1000)
        noisy = gaussian_mechanism(values, 1.0, 1.0, 1e-5, rng=0)
        assert noisy.std() > 0

    def test_invalid_parameters(self):
        with pytest.raises(PrivacyBudgetError):
            gaussian_sigma(1.0, 1.0, 0.0)
        with pytest.raises(PrivacyBudgetError):
            analytic_gaussian_sigma(-1.0, 1.0, 1e-5)


class TestRandomizedResponse:
    def test_output_is_symmetric_binary_no_diagonal(self):
        adjacency = np.zeros((20, 20))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        out = randomized_response_matrix(adjacency, epsilon=1.0, rng=0)
        np.testing.assert_array_equal(out, out.T)
        assert np.all(np.diag(out) == 0)
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_high_epsilon_preserves_graph(self):
        rng = np.random.default_rng(0)
        adjacency = (rng.random((30, 30)) < 0.1).astype(float)
        adjacency = np.triu(adjacency, 1)
        adjacency = adjacency + adjacency.T
        out = randomized_response_matrix(adjacency, epsilon=12.0, rng=1)
        np.testing.assert_array_equal(out, adjacency)

    def test_flip_rate_matches_theory(self):
        adjacency = np.zeros((120, 120))
        epsilon = 1.0
        out = randomized_response_matrix(adjacency, epsilon=epsilon, rng=0)
        expected_flip = 1.0 / (np.exp(epsilon) + 1.0)
        upper = np.triu_indices(120, k=1)
        assert out[upper].mean() == pytest.approx(expected_flip, rel=0.1)

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            randomized_response_matrix(np.zeros((3, 3)), epsilon=0.0)
