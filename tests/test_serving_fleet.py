"""Tests for the replica-sharded serving fleet: lease-backed membership,
consistent-hash routing, proxy/redirect forwarding, failover and the
registry watcher's pre-warm-then-retire hot reload."""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.exceptions import ConfigurationError
from repro.graphs.datasets import load_dataset
from repro.serving import (
    FleetMember,
    FleetRouter,
    FleetView,
    InferenceService,
    ModelRegistry,
    RegistryWatcher,
    default_replica_id,
    serve_http,
)


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora_ml", scale=0.06, seed=0)


@pytest.fixture(scope="module")
def model(graph):
    config = GCONConfig(epsilon=2.0, alpha=0.8, encoder_epochs=20,
                        encoder_dim=8, encoder_hidden=16)
    return GCON(config).fit(graph, seed=7)


@pytest.fixture(scope="module")
def other_model(graph):
    config = GCONConfig(epsilon=0.5, alpha=0.8, encoder_epochs=20,
                        encoder_dim=8, encoder_hidden=16)
    return GCON(config).fit(graph, seed=11)


def _member(fleet_dir, rid, port, clock, *, ttl=10.0, digests=("d" * 64,)):
    member = FleetMember(fleet_dir, rid, "127.0.0.1", port,
                         ttl=ttl, clock=clock)
    member.join(digests)
    return member


class TestFleetMembership:
    def test_join_is_visible_in_the_view(self, tmp_path):
        clock = FakeClock()
        fleet_dir = tmp_path / "fleet"
        member = _member(fleet_dir, "r0", 8100, clock, digests=("abc",))
        view = FleetView(fleet_dir, clock=clock)
        replicas = view.replicas()
        assert [r.replica_id for r in replicas] == ["r0"]
        assert replicas[0].address == "127.0.0.1:8100"
        assert replicas[0].base_url == "http://127.0.0.1:8100"
        assert replicas[0].digests == ("abc",)
        member.leave()
        assert view.replicas() == []

    def test_duplicate_replica_id_is_rejected(self, tmp_path):
        clock = FakeClock()
        _member(tmp_path / "fleet", "r0", 8100, clock)
        with pytest.raises(ConfigurationError, match="already holds"):
            _member(tmp_path / "fleet", "r0", 8200, clock)

    def test_advertise_updates_the_lease_payload(self, tmp_path):
        clock = FakeClock()
        fleet_dir = tmp_path / "fleet"
        member = _member(fleet_dir, "r0", 8100, clock, digests=("old",))
        member.advertise(["new1", "new2"])
        view = FleetView(fleet_dir, clock=clock)
        assert view.replicas()[0].digests == ("new1", "new2")

    def test_expired_replica_routes_to_nobody(self, tmp_path):
        """The failover rule: once a dead replica's lease expires, no
        request may map to it — the survivors' ring absorbs its keys."""
        clock = FakeClock()
        fleet_dir = tmp_path / "fleet"
        alive = _member(fleet_dir, "alive", 8100, clock, ttl=5.0)
        dead = _member(fleet_dir, "dead", 8200, clock, ttl=5.0)
        view = FleetView(fleet_dir, clock=clock)
        digests = ["%064x" % i for i in range(64)]
        before = {d: view.owner(d).replica_id for d in digests}
        assert set(before.values()) == {"alive", "dead"}
        # The dead replica stops heartbeating; alive keeps pumping.
        clock.advance(3.0)
        assert alive.heartbeat_now()
        clock.advance(3.0)  # dead's heartbeat is now 6s old, TTL 5s
        after = {d: view.owner(d).replica_id for d in digests}
        assert set(after.values()) == {"alive"}
        for d in digests:
            assert dead.replica_id not in [
                r.replica_id for r in view.route(d, count=2)]
        # The expired lease still shows up in the census, marked as such.
        census = view.replicas(include_expired=True)
        assert {r.replica_id: r.expired for r in census} == {
            "alive": False, "dead": True}
        alive.leave()
        dead.leave()

    def test_membership_self_heals_after_a_reap(self, tmp_path):
        clock = FakeClock()
        member = _member(tmp_path / "fleet", "r0", 8100, clock, ttl=5.0)
        clock.advance(6.0)  # partitioned long enough to be reaped
        old_nonce = member.lease.nonce
        assert member.heartbeat_now()  # refresh fails -> re-acquire
        assert member.rejoins == 1
        assert member.lease.nonce != old_nonce
        view = FleetView(tmp_path / "fleet", clock=clock)
        assert [r.replica_id for r in view.replicas()] == ["r0"]
        member.leave()

    def test_status_summary_names_replicas_and_routing(self, tmp_path):
        clock = FakeClock()
        fleet_dir = tmp_path / "fleet"
        digest = "f" * 64
        member = _member(fleet_dir, "r0", 8100, clock, digests=(digest,))
        status = FleetView(fleet_dir, clock=clock).status()
        text = status.summary()
        assert "1 live" in text
        assert "r0" in text and "127.0.0.1:8100" in text
        assert digest[:12] in text and "routing" in text
        member.leave()

    def test_view_cache_ttl_defers_rescans(self, tmp_path):
        clock = FakeClock()
        fleet_dir = tmp_path / "fleet"
        member = _member(fleet_dir, "r0", 8100, clock)
        view = FleetView(fleet_dir, clock=clock, cache_ttl=1.0)
        assert len(view.replicas()) == 1
        _member(fleet_dir, "r1", 8200, clock)
        assert len(view.replicas()) == 1  # cached scan still in force
        clock.advance(1.5)
        assert len(view.replicas()) == 2
        member.leave()

    def test_router_peers_exclude_self_and_the_dead(self, tmp_path):
        clock = FakeClock()
        fleet_dir = tmp_path / "fleet"
        a = _member(fleet_dir, "ra", 8100, clock, ttl=5.0)
        b = _member(fleet_dir, "rb", 8200, clock, ttl=5.0)
        router = FleetRouter(a, cache_ttl=0.0)
        view = FleetView(fleet_dir, clock=clock)
        digests = ["%064x" % i for i in range(32)]
        owned_by_a = [d for d in digests if view.owner(d).replica_id == "ra"]
        owned_by_b = [d for d in digests if view.owner(d).replica_id == "rb"]
        assert owned_by_a and owned_by_b
        for d in owned_by_a:
            assert router.peers_for(d) == []  # we own it: serve locally
        for d in owned_by_b:
            peers = router.peers_for(d)
            assert [p.replica_id for p in peers] == ["rb"]
        # b dies; after expiry every digest is served locally again.
        clock.advance(3.0)
        a.heartbeat_now()
        clock.advance(3.0)
        for d in digests:
            assert router.peers_for(d) == []
        payload = router.as_dict()
        assert payload["self"] == "ra"
        assert payload["mode"] == "proxy"
        a.leave()
        b.leave()

    def test_default_replica_id_is_filename_safe_and_unique(self):
        first = default_replica_id("::1", 8100)
        second = default_replica_id("::1", 8100)
        assert first != second
        assert "/" not in first and ":" not in first


class TestRegistryWatcher:
    @pytest.fixture()
    def setup(self, tmp_path, model, graph):
        registry = ModelRegistry(tmp_path / "reg")
        training = {"dataset": "cora_ml", "scale": 0.06, "graph_seed": 0}
        record = registry.publish(model, "demo", inference_mode="private",
                                  training=training)
        service = InferenceService(registry, graph=graph)
        service.prewarm("demo@latest")
        yield registry, service, record, training
        service.close()

    def test_primed_watcher_reports_no_flip_at_startup(self, setup):
        registry, service, _record, _training = setup
        watcher = RegistryWatcher(registry, service, ["demo"])
        assert watcher.poll_once() == []
        assert watcher.flips == 0

    def test_flip_prewarms_new_and_retires_old(self, setup, other_model,
                                               graph):
        registry, service, record, training = setup
        watcher = RegistryWatcher(registry, service, ["demo"])
        seen = []
        watcher.on_flip = lambda name, old, new: seen.append((name, old, new))
        new_record = registry.publish(other_model, "demo",
                                      inference_mode="private",
                                      training=training)
        flips = watcher.poll_once()
        assert flips == [("demo", record.digest, new_record.digest)]
        assert seen == flips
        assert watcher.flips == 1
        loaded = service.loaded_digests()
        assert new_record.digest in loaded
        assert record.digest not in loaded  # old sessions retired
        # @latest traffic now resolves to the new version, bitwise equal to
        # its offline reference — the serving layers never change numbers.
        nodes = [0, 5, 9]
        served = service.predict_scores("demo@latest", nodes)
        offline = other_model.decision_scores(graph, mode="private")[nodes]
        assert np.array_equal(served, offline)
        # A second poll is quiescent.
        assert watcher.poll_once() == []

    def test_pinned_versions_survive_the_flip(self, setup, other_model,
                                              model, graph):
        registry, service, record, training = setup
        watcher = RegistryWatcher(registry, service, ["demo"])
        registry.publish(other_model, "demo", inference_mode="private",
                         training=training)
        watcher.poll_once()
        # Pinning the superseded digest still works: retire only dropped the
        # warm sessions, not the registry bundle.
        nodes = [1, 2]
        pinned = service.predict_scores(f"demo@{record.digest}", nodes)
        offline = model.decision_scores(graph, mode="private")[nodes]
        assert np.array_equal(pinned, offline)


def _post_predict(port, payload, *, forwarded=False, timeout=30.0):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/predict",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    if forwarded:
        req.add_header("X-Fleet-Forwarded", "1")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def _get_json(port, path, timeout=10.0):
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=timeout) as resp:
        return json.loads(resp.read())


def _raw_post(port, path, payload) -> bytes:
    body = json.dumps(payload).encode()
    head = (f"POST {path} HTTP/1.1\r\nHost: x\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n")
    with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
        sock.sendall(head.encode() + body)
        buf = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return buf
            buf += chunk


class _Replica:
    """One in-process serving replica: service + HTTP loop + fleet lease."""

    def __init__(self, registry, graph, fleet_dir, rid, *, ttl):
        self.service = InferenceService(registry, graph=graph)
        self.service.prewarm("demo@latest")
        self.server = serve_http(self.service, port=0)
        self.port = self.server.server_address[1]
        self.member = FleetMember(fleet_dir, rid, "127.0.0.1", self.port,
                                  ttl=ttl)
        self.member.join(self.service.loaded_digests())
        self.member.start()  # heartbeat pump at ttl/3
        self.server.fleet = FleetRouter(self.member, cache_ttl=0.0)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()

    def kill(self):
        """SIGKILL stand-in: stop serving and heartbeating, release nothing."""
        self.member._stop.set()
        self.server.shutdown()
        self.server.server_close()
        self.service.close()

    def close(self):
        self.member.leave()
        self.server.shutdown()
        self.server.server_close()
        self.service.close()


TTL = 1.5


@pytest.fixture()
def fleet(tmp_path, model, graph):
    registry = ModelRegistry(tmp_path / "reg")
    registry.publish(model, "demo", inference_mode="private",
                     training={"dataset": "cora_ml", "scale": 0.06,
                               "graph_seed": 0})
    fleet_dir = tmp_path / "fleet"
    replicas = [_Replica(registry, graph, fleet_dir, f"r{i}", ttl=TTL)
                for i in range(2)]
    digest = registry.resolve("demo@latest").digest
    yield {"replicas": replicas, "digest": digest, "registry": registry,
           "fleet_dir": fleet_dir}
    for replica in replicas:
        try:
            replica.close()
        except Exception:  # noqa: BLE001 - already killed in the test
            pass


def _split_by_ownership(fleet):
    view = FleetView(fleet["fleet_dir"])
    owner_id = view.owner(fleet["digest"]).replica_id
    by_id = {r.member.replica_id: r for r in fleet["replicas"]}
    owner = by_id.pop(owner_id)
    (peer,) = by_id.values()
    return owner, peer


class TestFleetHTTP:
    def test_fleet_endpoint_reports_membership(self, fleet):
        for replica in fleet["replicas"]:
            payload = _get_json(replica.port, "/fleet")
            assert payload["enabled"] is True
            assert payload["self"] == replica.member.replica_id
            assert len(payload["replicas"]) == 2
            assert payload["routing"][fleet["digest"]] in {"r0", "r1"}
            assert payload["mode"] == "proxy"
        # A fleetless server still answers the endpoint.
        view = FleetView(fleet["fleet_dir"])
        assert view.as_dict()["routing"] == {
            fleet["digest"]: view.owner(fleet["digest"]).replica_id}

    def test_non_owner_proxies_to_owner_bitwise(self, fleet, model, graph):
        owner, peer = _split_by_ownership(fleet)
        nodes = [0, 4, 2]
        status, body = _post_predict(
            peer.port, {"model": "demo", "nodes": nodes})
        assert status == 200
        offline = model.decision_scores(graph, mode="private")[nodes]
        assert np.array_equal(np.asarray(body["scores"]), offline)
        assert peer.server.fleet_stats["proxied"] == 1
        assert owner.server.fleet_stats["received_forwards"] == 1
        # The owner serves its own traffic without another hop.
        status, body2 = _post_predict(
            owner.port, {"model": "demo", "nodes": nodes})
        assert status == 200
        assert body2["scores"] == body["scores"]
        assert owner.server.fleet_stats["proxied"] == 0

    def test_forwarded_requests_always_terminate_locally(self, fleet, model,
                                                         graph):
        _owner, peer = _split_by_ownership(fleet)
        nodes = [3, 1]
        status, body = _post_predict(
            peer.port, {"model": "demo", "nodes": nodes}, forwarded=True)
        assert status == 200
        offline = model.decision_scores(graph, mode="private")[nodes]
        assert np.array_equal(np.asarray(body["scores"]), offline)
        assert peer.server.fleet_stats["proxied"] == 0  # no relay chains
        assert peer.server.fleet_stats["received_forwards"] == 1

    def test_redirect_mode_sends_307_to_the_owner(self, fleet):
        owner, peer = _split_by_ownership(fleet)
        peer.server.fleet.proxy = False
        raw = _raw_post(peer.port, "/v1/predict",
                        {"model": "demo", "nodes": [0]})
        head = raw.split(b"\r\n\r\n", 1)[0].decode("latin-1")
        assert head.startswith("HTTP/1.1 307")
        assert f"http://127.0.0.1:{owner.port}/v1/predict" in head
        assert peer.server.fleet_stats["redirected"] == 1

    def test_owner_death_fails_over_within_one_ttl(self, fleet, model, graph):
        """Kill the owner mid-traffic: the survivor first falls back locally
        (lease still live, socket dead), and once the lease expires no
        request maps to the dead replica at all — same bitwise scores
        throughout."""
        owner, peer = _split_by_ownership(fleet)
        nodes = [6, 0, 8]
        offline = model.decision_scores(graph, mode="private")[nodes]
        owner.kill()
        # Phase 1: the lease is still valid, so the survivor tries the owner,
        # hits the dead socket and serves locally.
        status, body = _post_predict(peer.port,
                                     {"model": "demo", "nodes": nodes})
        assert status == 200
        assert np.array_equal(np.asarray(body["scores"]), offline)
        assert peer.server.fleet_stats["failover_local"] == 1
        # Phase 2: past the TTL the dead lease is excluded from routing —
        # no proxy attempt, no request maps to the dead replica.
        deadline = time.time() + 4.0 * TTL
        while time.time() < deadline:
            view = FleetView(fleet["fleet_dir"])
            if [r.replica_id for r in view.route(fleet["digest"])] == \
                    [peer.member.replica_id]:
                break
            time.sleep(0.1)
        else:
            pytest.fail("dead lease never expired out of the routing table")
        proxied_before = peer.server.fleet_stats["proxied"]
        status, body = _post_predict(peer.port,
                                     {"model": "demo", "nodes": nodes})
        assert status == 200
        assert np.array_equal(np.asarray(body["scores"]), offline)
        assert peer.server.fleet_stats["proxied"] == proxied_before
        assert peer.server.fleet_stats["failover_local"] == 1  # unchanged
