"""Tests for the SLO control plane: AIMD adaptive batching, queue-depth
admission control, atomic reconfiguration under load, the memory-mapped
bundle path and the fused response renderer.

The bar is the same as the rest of the serving stack: every mechanism here
changes *latency and availability* only.  Scores stay bitwise equal to
offline ``GCON.decision_scores`` in every configuration — adaptive or
static, mapped or eager, mid-reconfiguration or not.
"""

from __future__ import annotations

import bisect
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.graphs.datasets import load_dataset
from repro.serving import (
    InferenceService,
    MicroBatcher,
    ModelRegistry,
    OverloadedError,
    SloController,
    format_prediction,
    format_prediction_body,
    serve_http,
)
from repro.serving.metrics import LATENCY_BUCKETS, bucket_quantile
from repro.serving.service import PredictRequest
from repro.serving.slo import estimate_drain_seconds


# --------------------------------------------------------------------------- #
# controller fakes: a hand-fed metrics source and a budget-recording router
# --------------------------------------------------------------------------- #
class FakeMetrics:
    """A ServingMetrics stand-in whose histograms the test sets directly."""

    def __init__(self):
        self._counts: dict[str, list[int]] = {}
        self._max: dict[str, float] = {}

    def observe(self, label: str, seconds: float, n: int = 1) -> None:
        counts = self._counts.setdefault(
            label, [0] * (len(LATENCY_BUCKETS) + 1))
        counts[bisect.bisect_left(LATENCY_BUCKETS, seconds)] += n
        self._max[label] = max(self._max.get(label, 0.0), seconds)

    def latency_snapshot(self):
        return {label: (tuple(counts), self._max[label], sum(counts))
                for label, counts in self._counts.items()}


class FakeRouter:
    """Records configure_model calls; reports limits like a ModelRouter."""

    def __init__(self, max_batch_size: int = 64, max_latency: float = 0.005):
        self.max_batch_size = max_batch_size
        self.max_latency = max_latency
        self.metrics = FakeMetrics()
        self.overrides: dict[str, tuple[int, float]] = {}
        self.calls: list[tuple[str, int, float]] = []

    def model_limits(self, label: str) -> tuple[int, float]:
        return self.overrides.get(label,
                                  (self.max_batch_size, self.max_latency))

    def configure_model(self, label: str, *, max_batch_size=None,
                        max_latency=None) -> None:
        self.calls.append((label, max_batch_size, max_latency))
        self.overrides[label] = (max_batch_size, max_latency)


def controller(router=None, **kwargs):
    router = router if router is not None else FakeRouter()
    kwargs.setdefault("target_p99", 0.050)
    kwargs.setdefault("metrics", FakeMetrics())
    return SloController(router, **kwargs)


class TestAimdController:
    def test_over_target_window_backs_off_multiplicatively(self):
        router = FakeRouter(max_batch_size=64, max_latency=0.005)
        metrics = FakeMetrics()
        ctl = controller(router, metrics=metrics, target_p99=0.050)
        metrics.observe("demo", 0.200, n=100)  # p99 ~ 200ms, way over
        decisions = ctl.tick()
        assert decisions["demo"]["action"] == "backoff"
        size, latency = router.overrides["demo"]
        assert size == 32            # 64 * 0.5
        assert latency == 0.0025     # 0.005 * 0.5
        state = ctl.state()["models"]["demo"]
        assert state["windows_over_slo"] == 1
        assert state["backed_off"] == 1
        assert state["last_window_requests"] == 100

    def test_under_target_window_grows_additively(self):
        router = FakeRouter(max_batch_size=64, max_latency=0.004)
        metrics = FakeMetrics()
        ctl = controller(router, metrics=metrics, target_p99=0.050,
                         increase_by=8, max_batch_size=4096)
        metrics.observe("demo", 0.001, n=100)
        decisions = ctl.tick()
        assert decisions["demo"]["action"] == "grow"
        size, latency = router.overrides["demo"]
        assert size == 72            # 64 + 8
        assert latency == 0.004      # already at the base ceiling: held

    def test_repeated_overload_converges_to_the_floors(self):
        router = FakeRouter(max_batch_size=64, max_latency=0.005)
        metrics = FakeMetrics()
        ctl = controller(router, metrics=metrics, target_p99=0.001,
                         min_batch_size=1, min_latency=0.0005)
        for _ in range(20):
            metrics.observe("demo", 0.500, n=10)  # every window violates
            ctl.tick()
        size, latency = router.overrides["demo"]
        assert size == 1
        assert latency == 0.0005

    def test_recovery_after_backoff_is_additive_and_capped(self):
        router = FakeRouter(max_batch_size=64, max_latency=0.004)
        metrics = FakeMetrics()
        ctl = controller(router, metrics=metrics, target_p99=0.050,
                         increase_by=8, backoff=0.5, max_batch_size=64)
        metrics.observe("demo", 0.300, n=50)   # crash the budgets
        ctl.tick()
        for _ in range(50):                     # then run fast forever
            metrics.observe("demo", 0.001, n=50)
            ctl.tick()
        size, latency = router.overrides["demo"]
        assert size == 64              # grew back, capped at the size ceiling
        assert latency == 0.004        # deadline never exceeds the base
        state = ctl.state()["models"]["demo"]
        assert state["grown"] >= 4     # (32 -> 64 in +8 steps)

    def test_growth_respects_the_configured_size_cap(self):
        router = FakeRouter(max_batch_size=64, max_latency=0.004)
        metrics = FakeMetrics()
        ctl = controller(router, metrics=metrics, target_p99=0.050,
                         increase_by=100, max_batch_size=100)
        metrics.observe("demo", 0.001, n=10)
        ctl.tick()
        assert router.overrides["demo"][0] == 100

    def test_idle_window_holds_the_budgets(self):
        """No new samples since the last tick -> no decision, no changes."""
        router = FakeRouter()
        metrics = FakeMetrics()
        ctl = controller(router, metrics=metrics, target_p99=0.050)
        metrics.observe("demo", 0.200, n=10)
        assert "demo" in ctl.tick()
        calls_before = len(router.calls)
        assert ctl.tick() == {}                # same cumulative counts: idle
        assert len(router.calls) == calls_before

    def test_p99_is_windowed_not_lifetime(self):
        """A slow past must not poison a fast present: after one bad window,
        an all-fast window grows even though the lifetime histogram is still
        dominated by slow samples."""
        router = FakeRouter()
        metrics = FakeMetrics()
        ctl = controller(router, metrics=metrics, target_p99=0.050)
        metrics.observe("demo", 0.400, n=1000)  # terrible first window
        assert ctl.tick()["demo"]["action"] == "backoff"
        metrics.observe("demo", 0.001, n=10)    # tiny, but all-fast, window
        assert ctl.tick()["demo"]["action"] == "grow"

    def test_models_are_tuned_independently(self):
        router = FakeRouter()
        metrics = FakeMetrics()
        ctl = controller(router, metrics=metrics, target_p99=0.050)
        metrics.observe("slow", 0.300, n=50)
        metrics.observe("fast", 0.001, n=50)
        decisions = ctl.tick()
        assert decisions["slow"]["action"] == "backoff"
        assert decisions["fast"]["action"] == "grow"

    def test_state_exposes_the_stats_block(self):
        ctl = controller(target_p99=0.050)
        state = ctl.state()
        assert state["target_p99_ms"] == 50.0
        assert state["last_error"] is None
        for key in ("interval_seconds", "increase_by", "backoff",
                    "base_max_latency_seconds", "ticks", "models"):
            assert key in state

    def test_attainment_counts_windows(self):
        router = FakeRouter()
        metrics = FakeMetrics()
        ctl = controller(router, metrics=metrics, target_p99=0.050)
        metrics.observe("demo", 0.001, n=10)
        ctl.tick()
        metrics.observe("demo", 0.400, n=10)
        ctl.tick()
        metrics.observe("demo", 0.001, n=10)
        ctl.tick()
        state = ctl.state()["models"]["demo"]
        assert state["windows_under_slo"] == 2
        assert state["windows_over_slo"] == 1
        assert state["slo_attainment"] == pytest.approx(2 / 3)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="target_p99"):
            controller(target_p99=0.0)
        with pytest.raises(ValueError, match="backoff"):
            controller(backoff=1.0)
        with pytest.raises(ValueError, match="increase_by"):
            controller(increase_by=0)
        with pytest.raises(ValueError, match="min_batch_size"):
            controller(min_batch_size=10, max_batch_size=5)

    def test_background_loop_ticks_and_survives_errors(self):
        class ExplodingMetrics:
            def latency_snapshot(self):
                raise RuntimeError("boom")

        ctl = controller(metrics=ExplodingMetrics(), interval=0.005)
        with ctl:
            deadline = time.monotonic() + 2.0
            while ctl.last_error is None and time.monotonic() < deadline:
                time.sleep(0.005)
        assert ctl.last_error == "RuntimeError('boom')"
        # close() is idempotent and the thread is gone.
        ctl.close()
        assert ctl._thread is None


class TestAdmissionPrimitives:
    def test_retry_after_header_is_ceiled_whole_seconds(self):
        def shed(retry_after):
            return OverloadedError("full", retry_after=retry_after,
                                   label="m", depth=9, max_queue_depth=8)
        assert shed(0.06).retry_after_header == 1
        assert shed(3.2).retry_after_header == 4
        assert shed(2.0).retry_after_header == 2

    def test_estimate_drain_seconds(self):
        # 100 deep / 10 per flush = 10 flushes; 10ms floor per flush.
        assert estimate_drain_seconds(100, 10, 0.005) == pytest.approx(0.100)
        assert estimate_drain_seconds(100, 10, 0.020) == pytest.approx(0.200)
        # Empty/degenerate queues still produce a positive hint.
        assert estimate_drain_seconds(0, 10, 0.0) > 0
        assert estimate_drain_seconds(5, 0, 0.0) > 0


# --------------------------------------------------------------------------- #
# a real model end to end
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora_ml", scale=0.06, seed=0)


@pytest.fixture(scope="module")
def model(graph):
    config = GCONConfig(epsilon=2.0, alpha=0.8, encoder_epochs=20,
                        encoder_dim=8, encoder_hidden=16)
    return GCON(config).fit(graph, seed=7)


@pytest.fixture()
def registry(tmp_path, model):
    registry = ModelRegistry(tmp_path / "reg")
    registry.publish(model, "demo", inference_mode="private",
                     training={"dataset": "cora_ml"})
    return registry


class TestAdmissionControl:
    def test_shed_happens_before_the_queue(self, registry, graph):
        """A shed request costs a counter bump, never a batcher ticket."""
        service = InferenceService(registry, graph=graph,
                                   max_queue_depth=0)
        with pytest.raises(OverloadedError) as excinfo:
            service.predict_batch("demo", [0, 1])
        error = excinfo.value
        assert error.retry_after > 0
        assert error.max_queue_depth == 0
        assert service.batcher.stats.requests == 0   # nothing was enqueued
        admission = service.stats()["admission"]
        assert admission["max_queue_depth"] == 0
        assert admission["shed_total"] == 1
        assert admission["shed_per_model"] == {"demo@latest": 1} or \
            sum(admission["shed_per_model"].values()) == 1

    def test_no_cap_means_no_shedding(self, registry, graph, model):
        service = InferenceService(registry, graph=graph,
                                   max_queue_depth=None)
        offline = model.decision_scores(graph, mode="private")
        served = service.predict_scores("demo", [0, 1, 2])
        assert np.array_equal(served, offline[[0, 1, 2]])
        assert service.stats()["admission"]["shed_total"] == 0

    def test_http_429_with_retry_after(self, registry, graph):
        """Overload is answered with 429 + Retry-After on the wire."""
        service = InferenceService(registry, graph=graph, max_queue_depth=0)
        server = serve_http(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/predict",
                data=json.dumps({"model": "demo", "nodes": [0]}).encode(),
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10.0)
            response = excinfo.value
            assert response.code == 429
            assert int(response.headers["Retry-After"]) >= 1
            body = json.loads(response.read())
            assert body["retry_after_seconds"] > 0
            assert "error" in body
            # The shed shows up in /stats over the same wire.
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/stats", timeout=10.0) as reply:
                stats = json.loads(reply.read())
            assert stats["admission"]["shed_total"] >= 1
            assert stats["slo"] == {"enabled": False}
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestMmapBundles:
    def test_mapped_load_is_bitwise_equal_to_eager(self, registry, graph):
        eager, _ = registry.load("demo", mmap=False)
        mapped, _ = registry.load("demo", mmap=True)
        assert isinstance(mapped.theta_, np.memmap)
        assert not isinstance(eager.theta_, np.memmap)
        assert np.array_equal(np.asarray(mapped.theta_), eager.theta_)
        for mode in ("private", "public"):
            assert np.array_equal(mapped.decision_scores(graph, mode=mode),
                                  eager.decision_scores(graph, mode=mode))

    def test_mapped_service_serves_bitwise_offline_scores(self, registry,
                                                          graph, model):
        offline = model.decision_scores(graph, mode="private")
        nodes = [0, 5, 9, 3]
        mapped = InferenceService(registry, graph=graph, mmap_bundles=True)
        eager = InferenceService(registry, graph=graph, mmap_bundles=False)
        assert np.array_equal(mapped.predict_scores("demo", nodes),
                              offline[nodes])
        assert np.array_equal(eager.predict_scores("demo", nodes),
                              offline[nodes])


class TestReconfigurationUnderLoad:
    def test_concurrent_per_field_configures_never_lose_an_update(self):
        batcher = MicroBatcher(lambda key, nodes: np.zeros((nodes.size, 2)))
        barrier = threading.Barrier(2)

        def set_size():
            barrier.wait()
            for _ in range(500):
                batcher.configure(max_batch_size=7)

        def set_latency():
            barrier.wait()
            for _ in range(500):
                batcher.configure(max_latency=0.007)

        threads = [threading.Thread(target=set_size),
                   threading.Thread(target=set_latency)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Without the limits lock, interleaved read-modify-writes could
        # resurrect a stale field; with it, both final values survive.
        assert batcher.max_batch_size == 7
        assert batcher.max_latency == 0.007

    def test_configure_validates_and_keeps_old_limits_on_error(self):
        batcher = MicroBatcher(lambda key, nodes: np.zeros((nodes.size, 2)),
                               max_batch_size=16, max_latency=0.004)
        with pytest.raises(ValueError):
            batcher.configure(max_batch_size=0)
        with pytest.raises(ValueError):
            batcher.configure(max_latency=-1.0)
        assert (batcher.max_batch_size, batcher.max_latency) == (16, 0.004)

    def test_results_stay_correct_while_limits_flap(self):
        """Hammer a live batcher while another thread flips both limits:
        every ticket still gets exactly its own rows back."""
        def scorer(model_key, nodes):
            return np.stack([nodes.astype(float), 2.0 * nodes], axis=1)

        batcher = MicroBatcher(scorer, max_batch_size=8, max_latency=0.0)
        stop = threading.Event()

        def flap():
            flip = False
            while not stop.is_set():
                if flip:
                    batcher.configure(max_batch_size=1, max_latency=0.0)
                else:
                    batcher.configure(max_batch_size=64, max_latency=0.002)
                flip = not flip

        flapper = threading.Thread(target=flap, daemon=True)
        with batcher:
            flapper.start()
            try:
                tickets = [(i, batcher.submit("m", [i, i + 1]))
                           for i in range(300)]
                for i, ticket in tickets:
                    result = ticket.result(10.0)
                    np.testing.assert_array_equal(result[:, 0], [i, i + 1])
            finally:
                stop.set()
                flapper.join()
        assert batcher.depth() == 0  # everything drained and accounted

    def test_slo_controller_drives_a_real_router_safely(self, registry,
                                                        graph, model):
        """End to end: a controller ticking against a live service while
        requests flow — budgets move, scores never do."""
        service = InferenceService(registry, graph=graph)
        ctl = SloController(service.batcher, target_p99=1e-6,  # everything
                            metrics=service.metrics)           # violates
        service.attach_slo(ctl)
        offline = model.decision_scores(graph, mode="private")
        try:
            for i in range(10):
                nodes = [i, i + 2]
                assert np.array_equal(
                    service.predict_scores("demo", nodes), offline[nodes])
                ctl.tick()
            state = service.stats()["slo"]
            assert state["enabled"] is True
            (label, budget), = state["models"].items()
            assert budget["windows_over_slo"] >= 1   # it did intervene
            assert budget["max_batch_size"] >= 1
        finally:
            service.close()


class TestFusedResponseRenderer:
    """The zero-copy body renderer must be byte-identical to the canonical
    ``json.dumps(format_prediction(...), sort_keys=True)`` encoding."""

    @pytest.mark.parametrize("proba", [False, True])
    @pytest.mark.parametrize("top_k", [None, 2])
    def test_bytes_match_canonical_json(self, registry, graph, proba, top_k):
        service = InferenceService(registry, graph=graph)
        scores, record, mode = service.predict_batch("demo", [0, 1, 7])
        request = PredictRequest(ref="demo", nodes=[0, 1, 7], mode=None,
                                 top_k=top_k, proba=proba)
        canonical = (json.dumps(
            format_prediction(request, scores, record, mode),
            sort_keys=True) + "\n").encode("utf-8")
        fused = format_prediction_body(request, scores, record, mode)
        assert fused == canonical

    def test_awkward_floats_roundtrip(self, registry, graph):
        service = InferenceService(registry, graph=graph)
        _, record, mode = service.predict_batch("demo", [0])
        scores = np.array([[1e-17, -0.0], [1234567890.123456, 3.14]])
        request = PredictRequest(ref="demo", nodes=[4, 5], mode=None,
                                 top_k=None, proba=False)
        canonical = (json.dumps(
            format_prediction(request, scores, record, mode),
            sort_keys=True) + "\n").encode("utf-8")
        assert format_prediction_body(request, scores, record, mode) == canonical


class TestBucketQuantile:
    def test_empty_counts_is_zero(self):
        assert bucket_quantile((1.0, 2.0), [0, 0, 0], 0.99) == 0.0

    def test_overflow_bucket_uses_the_observed_max(self):
        bounds = (1.0, 2.0)
        counts = [0, 0, 5]      # all samples past the last bound
        assert bucket_quantile(bounds, counts, 0.99,
                               overflow_value=7.5) == 7.5

    def test_interpolates_within_a_bucket(self):
        bounds = (1.0, 2.0, 4.0)
        counts = [0, 100, 0, 0]  # uniform inside (1, 2]
        p50 = bucket_quantile(bounds, counts, 0.50)
        assert 1.0 < p50 <= 2.0


# --------------------------------------------------------------------------- #
# SLO error-budget accounting (burn rate, budget gauges, /metrics series)
# --------------------------------------------------------------------------- #
class TestErrorBudget:
    def _controller(self, *, objective=0.9, budget_window=100.0,
                    target_p99=0.050):
        from repro.serving.metrics import ServingMetrics

        self.now = [0.0]
        router = FakeRouter()
        metrics = ServingMetrics()
        ctl = SloController(router, target_p99=target_p99, metrics=metrics,
                            objective=objective, budget_window=budget_window,
                            clock=lambda: self.now[0])
        return ctl, metrics

    def _observe(self, metrics, label, seconds, n):
        hist = metrics.model(label).latency
        for _ in range(n):
            hist.observe(seconds)

    def test_good_bad_split_burn_and_remaining(self):
        # Objective 90% under 50ms -> budget 10%.  100 requests, 20 over
        # target: error rate 0.20, burn 2x, budget consumed 2x (overspent).
        ctl, metrics = self._controller(objective=0.9)
        self._observe(metrics, "m", 0.001, 80)
        self._observe(metrics, "m", 0.200, 20)
        ctl.tick()
        state = ctl.state()["models"]["m"]
        assert state["good_requests"] == 80
        assert state["bad_requests"] == 20
        assert state["burn_rate"] == pytest.approx(2.0)
        assert state["error_budget_consumed"] == pytest.approx(2.0)
        assert state["error_budget_remaining"] == pytest.approx(-1.0)

    def test_counters_accumulate_and_ride_metrics_registry(self):
        ctl, metrics = self._controller(objective=0.9)
        self._observe(metrics, "m", 0.001, 50)
        ctl.tick()
        self.now[0] = 10.0
        self._observe(metrics, "m", 0.200, 50)
        ctl.tick()
        families = {name: (kind, dict(
            (tuple(sorted(labels.items())), value)
            for labels, value in entries))
            for name, kind, _help, entries in metrics.external_families()}
        good_kind, good = families["repro_slo_good_requests_total"]
        bad_kind, bad = families["repro_slo_bad_requests_total"]
        assert good_kind == bad_kind == "counter"
        key = (("model", "m"),)
        assert good[key] == 50.0
        assert bad[key] == 50.0
        assert families["repro_slo_target_p99_seconds"][1][()] == 0.050
        assert families["repro_slo_objective_ratio"][1][()] == 0.9
        remaining = families["repro_slo_error_budget_remaining_ratio"][1][key]
        # 100 requests in the window, 50 bad, 10% allowance -> 5x consumed.
        assert remaining == pytest.approx(1.0 - 5.0)

    def test_budget_window_rolls_off_old_spend(self):
        ctl, metrics = self._controller(objective=0.9, budget_window=100.0)
        self._observe(metrics, "m", 0.200, 100)  # all bad at t=0
        ctl.tick()
        assert ctl.state()["models"]["m"]["burn_rate"] == pytest.approx(10.0)
        # 200s later the spike has aged out of the window; a clean window
        # restores the full budget even though cumulative counters remember.
        self.now[0] = 200.0
        self._observe(metrics, "m", 0.001, 100)
        ctl.tick()
        state = ctl.state()["models"]["m"]
        assert state["burn_rate"] == pytest.approx(0.0)
        assert state["error_budget_remaining"] == pytest.approx(1.0)
        assert state["bad_requests"] == 100  # cumulative history intact

    def test_idle_windows_do_not_charge_the_budget(self):
        ctl, metrics = self._controller()
        self._observe(metrics, "m", 0.001, 10)
        ctl.tick()
        ctl.tick()  # idle window
        state = ctl.state()["models"]["m"]
        assert state["good_requests"] == 10
        assert state["error_budget_remaining"] == pytest.approx(1.0)

    def test_objective_validation(self):
        with pytest.raises(ValueError, match="objective"):
            controller(objective=1.5)
        with pytest.raises(ValueError, match="budget_window"):
            controller(budget_window=0.0)
