"""Tests for learning-rate schedulers, early stopping and the generic fit loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import Adam, Linear, ReLU, SGD, Sequential, Tensor, softmax_cross_entropy
from repro.nn.schedulers import CosineAnnealingLR, ExponentialLR, LinearWarmupLR, StepLR
from repro.nn.training import EarlyStopping, TrainingHistory, fit_full_batch


def _tiny_model(rng=None):
    rng = np.random.default_rng(0) if rng is None else rng
    return Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 3, rng=rng))


def _toy_data(rng=None):
    rng = np.random.default_rng(1) if rng is None else rng
    inputs = rng.normal(size=(30, 4))
    labels = rng.integers(0, 3, size=30)
    return inputs, labels


# --------------------------------------------------------------------------- #
# schedulers
# --------------------------------------------------------------------------- #
class TestSchedulers:
    def test_step_lr_halves_at_boundaries(self):
        optimizer = SGD(_tiny_model().parameters(), lr=0.1)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        rates = [scheduler.step() for _ in range(5)]
        assert rates == pytest.approx([0.1, 0.05, 0.05, 0.025, 0.025])

    def test_exponential_lr_decays_geometrically(self):
        optimizer = SGD(_tiny_model().parameters(), lr=1.0)
        scheduler = ExponentialLR(optimizer, gamma=0.9)
        for expected_epoch in range(1, 4):
            rate = scheduler.step()
            assert rate == pytest.approx(0.9 ** expected_epoch)

    def test_cosine_annealing_reaches_min_lr(self):
        optimizer = SGD(_tiny_model().parameters(), lr=0.2)
        scheduler = CosineAnnealingLR(optimizer, total_epochs=10, min_lr=0.01)
        rates = [scheduler.step() for _ in range(10)]
        assert rates[-1] == pytest.approx(0.01)
        assert all(earlier >= later - 1e-12 for earlier, later in zip(rates, rates[1:]))

    def test_linear_warmup_reaches_base_lr(self):
        optimizer = Adam(_tiny_model().parameters(), lr=0.05)
        scheduler = LinearWarmupLR(optimizer, warmup_epochs=5)
        rates = [scheduler.step() for _ in range(7)]
        assert rates[0] == pytest.approx(0.01)
        assert rates[4] == pytest.approx(0.05)
        assert rates[-1] == pytest.approx(0.05)

    def test_scheduler_updates_optimizer_in_place(self):
        optimizer = SGD(_tiny_model().parameters(), lr=0.1)
        scheduler = ExponentialLR(optimizer, gamma=0.5)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.05)
        assert scheduler.current_lr == pytest.approx(0.05)

    def test_validation(self):
        optimizer = SGD(_tiny_model().parameters(), lr=0.1)
        with pytest.raises(ConfigurationError):
            StepLR(optimizer, step_size=0)
        with pytest.raises(ConfigurationError):
            ExponentialLR(optimizer, gamma=1.5)
        with pytest.raises(ConfigurationError):
            CosineAnnealingLR(optimizer, total_epochs=0)
        with pytest.raises(ConfigurationError):
            LinearWarmupLR(optimizer, warmup_epochs=0)


# --------------------------------------------------------------------------- #
# early stopping
# --------------------------------------------------------------------------- #
class TestEarlyStopping:
    def test_stops_after_patience_without_improvement(self):
        stopper = EarlyStopping(patience=3, mode="max")
        values = [0.5, 0.6, 0.59, 0.58, 0.57]
        stops = [stopper.update(v, epoch=i) for i, v in enumerate(values)]
        assert stops == [False, False, False, False, True]
        assert stopper.best_value == pytest.approx(0.6)
        assert stopper.best_epoch == 1

    def test_min_mode(self):
        stopper = EarlyStopping(patience=2, mode="min")
        assert not stopper.update(1.0)
        assert not stopper.update(0.5)
        assert not stopper.update(0.7)
        assert stopper.update(0.8)

    def test_min_delta_requires_meaningful_improvement(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1, mode="max")
        stopper.update(0.5)
        assert stopper.update(0.55)  # below min_delta -> counts as no improvement

    def test_restores_best_model_state(self):
        model = _tiny_model()
        stopper = EarlyStopping(patience=1, mode="max")
        stopper.update(1.0, model=model, epoch=0)
        best_state = {k: v.copy() for k, v in model.state_dict().items()}
        for parameter in model.parameters():
            parameter.data += 1.0
        stopper.update(0.5, model=model, epoch=1)
        stopper.restore(model)
        for key, value in model.state_dict().items():
            assert np.allclose(value, best_state[key])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EarlyStopping(patience=0)
        with pytest.raises(ConfigurationError):
            EarlyStopping(min_delta=-1.0)
        with pytest.raises(ConfigurationError):
            EarlyStopping(mode="best")


# --------------------------------------------------------------------------- #
# fit loop
# --------------------------------------------------------------------------- #
class TestFitFullBatch:
    def _loss_fn(self, inputs, labels):
        tensor = Tensor(inputs)

        def loss_fn(model):
            return softmax_cross_entropy(model(tensor), labels)

        return loss_fn

    def test_loss_decreases(self):
        inputs, labels = _toy_data()
        model = _tiny_model()
        optimizer = Adam(model.parameters(), lr=0.05)
        history = fit_full_batch(model, optimizer, self._loss_fn(inputs, labels), epochs=40)
        assert isinstance(history, TrainingHistory)
        assert history.num_epochs == 40
        assert history.train_loss[-1] < history.train_loss[0]

    def test_early_stopping_halts_training(self):
        inputs, labels = _toy_data()
        model = _tiny_model()
        optimizer = Adam(model.parameters(), lr=0.05)

        constant_metric = iter([0.5] * 100)

        history = fit_full_batch(
            model, optimizer, self._loss_fn(inputs, labels), epochs=100,
            val_fn=lambda _model: next(constant_metric),
            early_stopping=EarlyStopping(patience=3),
        )
        assert history.stopped_epoch is not None
        assert history.num_epochs < 100
        assert history.best_val_metric == pytest.approx(0.5)

    def test_scheduler_is_applied(self):
        inputs, labels = _toy_data()
        model = _tiny_model()
        optimizer = SGD(model.parameters(), lr=0.1)
        scheduler = ExponentialLR(optimizer, gamma=0.5)
        history = fit_full_batch(model, optimizer, self._loss_fn(inputs, labels),
                                 epochs=3, scheduler=scheduler)
        assert history.learning_rate[0] == pytest.approx(0.1)
        assert optimizer.lr == pytest.approx(0.1 * 0.5 ** 3)

    def test_gradient_clipping_runs(self):
        inputs, labels = _toy_data()
        model = _tiny_model()
        optimizer = SGD(model.parameters(), lr=0.1)
        history = fit_full_batch(model, optimizer, self._loss_fn(inputs, labels),
                                 epochs=5, grad_clip=0.5)
        assert history.num_epochs == 5

    def test_validation_errors(self):
        inputs, labels = _toy_data()
        model = _tiny_model()
        optimizer = SGD(model.parameters(), lr=0.1)
        with pytest.raises(ConfigurationError):
            fit_full_batch(model, optimizer, self._loss_fn(inputs, labels), epochs=0)
        with pytest.raises(ConfigurationError):
            fit_full_batch(model, optimizer, self._loss_fn(inputs, labels), epochs=5,
                           early_stopping=EarlyStopping(patience=2))
