"""End-to-end integration tests across the whole library.

These exercise the same pipelines the examples and benchmarks use, on tiny
graphs, and assert the qualitative relationships the paper's evaluation is
built on.
"""

import numpy as np
import pytest

from repro import GCON, GCONConfig, load_dataset, micro_f1
from repro.baselines import DPGCN, GCNClassifier, MLPClassifier
from repro.core.sensitivity import concatenated_sensitivity
from repro.evaluation.runner import ExperimentRunner, series_from_results


@pytest.fixture(scope="module")
def small_cora():
    return load_dataset("cora_ml", scale=0.08, seed=0)


class TestPackageSurface:
    def test_top_level_exports(self):
        import repro

        for name in ("GCON", "GCONConfig", "GraphDataset", "load_dataset", "micro_f1"):
            assert hasattr(repro, name)
        assert repro.__version__

    def test_load_dataset_round_trip(self, small_cora):
        assert small_cora.num_classes == 7
        assert small_cora.train_idx.size > 0


class TestGCONPipeline:
    def test_gcon_learns_at_generous_budget(self, small_cora):
        config = GCONConfig(epsilon=8.0, alpha=0.8, propagation_steps=(2,), encoder_dim=8,
                            encoder_hidden=32, encoder_epochs=80, lambda_reg=0.2,
                            use_pseudo_labels=True)
        model = GCON(config).fit(small_cora, seed=0)
        majority = np.bincount(small_cora.labels[small_cora.test_idx]).max() \
            / small_cora.test_idx.size
        assert model.score() > majority

    def test_noise_grows_as_budget_shrinks(self, small_cora):
        def beta_for(epsilon):
            config = GCONConfig(epsilon=epsilon, alpha=0.8, propagation_steps=(2,),
                                encoder_dim=8, encoder_hidden=16, encoder_epochs=20)
            return GCON(config).fit(small_cora, seed=0).perturbation_.beta

        assert beta_for(0.5) < beta_for(2.0) < beta_for(8.0)

    def test_sensitivity_driven_noise_tradeoff(self):
        """Larger alpha means lower sensitivity, hence less perturbation (Lemma 2)."""
        low_alpha = concatenated_sensitivity(0.2, [2])
        high_alpha = concatenated_sensitivity(0.8, [2])
        assert high_alpha < low_alpha


class TestRunnerIntegration:
    def test_miniature_figure1_row(self, small_cora):
        runner = ExperimentRunner(repeats=1, seed=0)
        runner.register(
            "GCON",
            lambda eps, delta, seed: GCON(GCONConfig(
                epsilon=eps, delta=delta, alpha=0.8, propagation_steps=(2,), encoder_dim=8,
                encoder_hidden=16, encoder_epochs=40, lambda_reg=0.2, use_pseudo_labels=True,
            )),
        )
        runner.register("MLP", lambda eps, delta, seed: MLPClassifier(hidden_dim=16, epochs=40))
        runner.register("GCN (non-DP)",
                        lambda eps, delta, seed: GCNClassifier(hidden_dim=16, epochs=40))
        runner.register("DPGCN",
                        lambda eps, delta, seed: DPGCN(epsilon=eps, hidden_dim=16, epochs=40))
        results = runner.run({"cora": small_cora}, epsilons=[4.0])
        series = series_from_results(results)["cora"]
        # Structure: one value per method, all valid micro-F1 scores, and the
        # non-private GCN upper bound dominates the adjacency-perturbation
        # baseline (the robust part of Figure 1's ordering at this tiny scale).
        assert set(series) == {"GCON", "MLP", "GCN (non-DP)", "DPGCN"}
        assert all(0.0 <= v[4.0] <= 1.0 for v in series.values())
        assert series["GCN (non-DP)"][4.0] >= series["DPGCN"][4.0]
        majority = np.bincount(small_cora.labels[small_cora.test_idx]).max() \
            / small_cora.test_idx.size
        assert series["GCON"][4.0] > majority


class TestPrivacyIsEndToEnd:
    def test_released_parameters_differ_across_noise_draws_only(self, small_cora):
        """With the same seed the pipeline is deterministic; the DP noise is the
        only stochastic component distinguishing two releases with different seeds."""
        config = GCONConfig(epsilon=1.0, alpha=0.8, propagation_steps=(2,), encoder_dim=8,
                            encoder_hidden=16, encoder_epochs=20)
        same_a = GCON(config).fit(small_cora, seed=5).theta_
        same_b = GCON(config).fit(small_cora, seed=5).theta_
        other = GCON(config).fit(small_cora, seed=6).theta_
        np.testing.assert_allclose(same_a, same_b)
        assert not np.allclose(same_a, other)

    def test_gcon_score_uses_micro_f1(self, small_cora):
        config = GCONConfig(epsilon=4.0, alpha=0.8, propagation_steps=(2,), encoder_dim=8,
                            encoder_hidden=16, encoder_epochs=30)
        model = GCON(config).fit(small_cora, seed=0)
        manual = micro_f1(small_cora.labels[small_cora.test_idx],
                          model.predict(small_cora)[small_cora.test_idx])
        assert model.score() == pytest.approx(manual)
