"""Tests for the DP composition theorems and the composition plan helper."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PrivacyBudgetError
from repro.privacy.composition import (
    CompositionPlan,
    advanced_composition,
    basic_composition,
    heterogeneous_advanced_composition,
    optimal_homogeneous_composition,
    parallel_composition,
)


class TestBasicComposition:
    def test_sums_budgets(self):
        epsilon, delta = basic_composition([(0.5, 1e-6), (1.5, 2e-6)])
        assert epsilon == pytest.approx(2.0)
        assert delta == pytest.approx(3e-6)

    def test_empty_sequence_is_free(self):
        assert basic_composition([]) == (0.0, 0.0)

    def test_delta_is_capped_at_one(self):
        _, delta = basic_composition([(0.1, 0.7), (0.1, 0.7)])
        assert delta == 1.0

    def test_rejects_negative_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            basic_composition([(-0.1, 0.0)])

    def test_rejects_invalid_delta(self):
        with pytest.raises(PrivacyBudgetError):
            basic_composition([(0.1, 1.5)])


class TestParallelComposition:
    def test_takes_maximum(self):
        epsilon, delta = parallel_composition([(0.5, 1e-6), (1.5, 5e-7)])
        assert epsilon == pytest.approx(1.5)
        assert delta == pytest.approx(1e-6)

    def test_empty_sequence(self):
        assert parallel_composition([]) == (0.0, 0.0)

    def test_never_exceeds_basic(self):
        budgets = [(0.3, 1e-7), (0.2, 1e-7), (0.9, 0.0)]
        par_eps, par_delta = parallel_composition(budgets)
        seq_eps, seq_delta = basic_composition(budgets)
        assert par_eps <= seq_eps
        assert par_delta <= seq_delta


class TestAdvancedComposition:
    def test_beats_basic_for_many_small_mechanisms(self):
        epsilon, _ = advanced_composition(0.01, 0.0, num_mechanisms=10_000, delta_prime=1e-6)
        basic_epsilon, _ = basic_composition([(0.01, 0.0)] * 10_000)
        assert epsilon < basic_epsilon

    def test_single_mechanism_not_smaller_than_its_own_budget(self):
        epsilon, delta = advanced_composition(0.5, 1e-6, num_mechanisms=1, delta_prime=1e-6)
        assert epsilon >= 0.5
        assert delta == pytest.approx(2e-6)

    def test_delta_accumulates(self):
        _, delta = advanced_composition(0.1, 1e-6, num_mechanisms=10, delta_prime=1e-7)
        assert delta == pytest.approx(10 * 1e-6 + 1e-7)

    def test_rejects_bad_inputs(self):
        with pytest.raises(PrivacyBudgetError):
            advanced_composition(0.1, 0.0, num_mechanisms=0, delta_prime=1e-6)
        with pytest.raises(PrivacyBudgetError):
            advanced_composition(0.1, 0.0, num_mechanisms=5, delta_prime=0.0)

    @given(epsilon=st.floats(0.001, 0.5), k=st.integers(1, 500))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_number_of_mechanisms(self, epsilon, k):
        first, _ = advanced_composition(epsilon, 0.0, k, delta_prime=1e-6)
        second, _ = advanced_composition(epsilon, 0.0, k + 1, delta_prime=1e-6)
        assert second >= first


class TestOptimalComposition:
    def test_never_worse_than_naive(self):
        epsilon, _ = optimal_homogeneous_composition(0.2, 0.0, num_mechanisms=100,
                                                     delta_slack=1e-6)
        assert epsilon <= 100 * 0.2 + 1e-12

    def test_reduces_to_naive_for_one_mechanism(self):
        epsilon, _ = optimal_homogeneous_composition(0.7, 0.0, num_mechanisms=1,
                                                     delta_slack=1e-9)
        assert epsilon == pytest.approx(0.7)

    @given(epsilon=st.floats(0.01, 1.0), k=st.integers(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_at_most_advanced_or_naive(self, epsilon, k):
        optimal, _ = optimal_homogeneous_composition(epsilon, 0.0, k, delta_slack=1e-6)
        naive = k * epsilon
        assert optimal <= naive + 1e-9


class TestHeterogeneousComposition:
    def test_matches_homogeneous_form(self):
        budgets = [(0.1, 0.0)] * 25
        hetero, _ = heterogeneous_advanced_composition(budgets, delta_prime=1e-6)
        homo, _ = advanced_composition(0.1, 0.0, 25, delta_prime=1e-6)
        assert hetero == pytest.approx(homo)

    def test_mixed_budgets(self):
        epsilon, delta = heterogeneous_advanced_composition(
            [(0.1, 1e-7), (0.2, 1e-7), (0.3, 0.0)], delta_prime=1e-6,
        )
        expected_sq = 0.1 ** 2 + 0.2 ** 2 + 0.3 ** 2
        expected_drift = sum(e * (math.exp(e) - 1.0) for e in (0.1, 0.2, 0.3))
        assert epsilon == pytest.approx(
            math.sqrt(2 * math.log(1e6) * expected_sq) + expected_drift
        )
        assert delta == pytest.approx(2e-7 + 1e-6)


class TestCompositionPlan:
    def test_add_is_chainable_and_counts(self):
        plan = CompositionPlan().add(0.1, 1e-7, count=3).add(0.2)
        assert len(plan) == 4

    def test_basic_and_advanced_agree_with_functions(self):
        plan = CompositionPlan().add(0.05, 0.0, count=100)
        assert plan.basic() == basic_composition([(0.05, 0.0)] * 100)
        assert plan.advanced(1e-6) == heterogeneous_advanced_composition(
            [(0.05, 0.0)] * 100, 1e-6
        )

    def test_best_picks_smaller_epsilon(self):
        many_small = CompositionPlan().add(0.01, 0.0, count=5000)
        assert many_small.best(1e-6)[0] == many_small.advanced(1e-6)[0]
        few_large = CompositionPlan().add(1.0, 0.0, count=2)
        assert few_large.best(1e-6)[0] == few_large.basic()[0]

    def test_rejects_invalid_count(self):
        with pytest.raises(PrivacyBudgetError):
            CompositionPlan().add(0.1, count=0)
