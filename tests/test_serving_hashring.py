"""Tests for the consistent-hash ring the fleet routes model digests over."""

from __future__ import annotations

import hashlib

import pytest

from repro.serving import HashRing

KEYS = [hashlib.sha256(f"model-{i}".encode()).hexdigest() for i in range(2000)]


def _owners(ring):
    return {key: ring.owner(key) for key in KEYS}


class TestHashRing:
    def test_deterministic_across_instances(self):
        a = HashRing(["r0", "r1", "r2"])
        b = HashRing(["r2", "r0", "r1"])  # insertion order must not matter
        assert _owners(a) == _owners(b)

    def test_owner_is_always_a_member(self):
        ring = HashRing(["r0", "r1", "r2"])
        assert set(_owners(ring).values()) <= {"r0", "r1", "r2"}

    def test_every_member_owns_a_fair_share(self):
        ring = HashRing([f"r{i}" for i in range(5)])
        counts = {}
        for owner in _owners(ring).values():
            counts[owner] = counts.get(owner, 0) + 1
        # 64 vnodes: each of 5 nodes should land within a loose 2x band of
        # the fair share (400 of 2000).
        for node, count in counts.items():
            assert 150 <= count <= 800, (node, count)

    def test_adding_a_replica_moves_about_one_over_n_keys(self):
        ring = HashRing([f"r{i}" for i in range(5)])
        before = _owners(ring)
        ring.add("r5")
        after = _owners(ring)
        moved = [key for key in KEYS if before[key] != after[key]]
        # ~1/6 of 2000 ≈ 333 keys should move; a modulo map would move ~5/6.
        assert 100 <= len(moved) <= 700, len(moved)
        # Consistency: every moved key moved *to* the new node, none between
        # the old nodes.
        assert all(after[key] == "r5" for key in moved)

    def test_removing_a_replica_restores_the_prior_map_exactly(self):
        ring = HashRing([f"r{i}" for i in range(5)])
        before = _owners(ring)
        ring.add("r5")
        ring.remove("r5")
        assert _owners(ring) == before
        # And removing an original member re-homes only that member's keys.
        dead = "r2"
        ring.remove(dead)
        after = _owners(ring)
        for key in KEYS:
            if before[key] != dead:
                assert after[key] == before[key]
            else:
                assert after[key] != dead

    def test_preference_lists_are_distinct_and_owner_first(self):
        ring = HashRing(["r0", "r1", "r2", "r3"])
        for key in KEYS[:50]:
            preferred = ring.preference(key, 3)
            assert len(preferred) == 3
            assert len(set(preferred)) == 3
            assert preferred[0] == ring.owner(key)
        assert len(ring.preference(KEYS[0], None)) == 4
        assert len(ring.preference(KEYS[0], 99)) == 4

    def test_empty_and_single_node_rings(self):
        empty = HashRing()
        assert empty.owner("anything") is None
        assert empty.preference("anything", 2) == []
        solo = HashRing(["only"])
        assert solo.owner("anything") == "only"
        assert solo.preference("anything", 5) == ["only"]

    def test_membership_surface(self):
        ring = HashRing(["b", "a"])
        assert ring.nodes == ["a", "b"]
        assert len(ring) == 2
        assert "a" in ring and "z" not in ring
        ring.add("a")  # idempotent
        assert len(ring) == 2
        ring.remove("z")  # absent: no-op
        assert ring.nodes == ["a", "b"]

    def test_invalid_vnodes_rejected(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
