"""Tests for structural graph statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphDataError
from repro.graphs.adjacency import build_adjacency
from repro.graphs.graph import GraphDataset
from repro.graphs.random_graphs import planted_partition_graph, ring_of_cliques
from repro.graphs.statistics import (
    average_clustering,
    clustering_coefficients,
    component_sizes,
    compute_statistics,
    degree_histogram,
    edge_homophily_ratio,
    graph_density,
    label_entropy,
    statistics_table,
    to_networkx,
)


def _triangle_with_pendant() -> GraphDataset:
    edges = np.array([[0, 1], [1, 2], [0, 2], [2, 3]])
    return GraphDataset(
        adjacency=build_adjacency(edges, 4),
        features=np.eye(4),
        labels=np.array([0, 0, 1, 1]),
        name="triangle_pendant",
    )


class TestDegreeAndDensity:
    def test_degree_histogram_path_graph(self, path_graph):
        histogram = degree_histogram(path_graph)
        # A 6-node path has two degree-1 endpoints and four degree-2 nodes.
        assert histogram[1] == 2
        assert histogram[2] == 4

    def test_density_of_complete_triangle(self):
        graph = _triangle_with_pendant()
        # 4 nodes, 4 edges -> density 4 / 6
        assert graph_density(graph) == pytest.approx(4.0 / 6.0)

    def test_density_of_single_node(self):
        graph = GraphDataset(
            adjacency=np.zeros((1, 1)), features=np.ones((1, 2)), labels=np.array([0]),
        )
        assert graph_density(graph) == 0.0


class TestClustering:
    def test_triangle_nodes_have_coefficient_one(self):
        graph = _triangle_with_pendant()
        coefficients = clustering_coefficients(graph)
        assert coefficients[0] == pytest.approx(1.0)
        assert coefficients[1] == pytest.approx(1.0)
        # Node 2 has degree 3 and one triangle out of three possible pairs.
        assert coefficients[2] == pytest.approx(1.0 / 3.0)
        # The pendant node has degree 1 -> coefficient 0.
        assert coefficients[3] == 0.0

    def test_average_clustering_of_path_is_zero(self, path_graph):
        assert average_clustering(path_graph) == 0.0

    def test_cliques_have_high_clustering(self):
        graph = ring_of_cliques(num_cliques=3, clique_size=5, seed=0)
        assert average_clustering(graph) > 0.7


class TestComponentsAndLabels:
    def test_connected_path_is_one_component(self, path_graph):
        sizes = component_sizes(path_graph)
        assert sizes.tolist() == [6]

    def test_disconnected_graph_components(self):
        edges = np.array([[0, 1], [2, 3]])
        graph = GraphDataset(
            adjacency=build_adjacency(edges, 5),
            features=np.eye(5),
            labels=np.zeros(5, dtype=int),
        )
        sizes = component_sizes(graph)
        assert sizes.tolist() == [2, 2, 1]

    def test_edge_homophily_matches_manual_count(self):
        graph = _triangle_with_pendant()
        # Edges: (0,1) same, (1,2) diff, (0,2) diff, (2,3) same -> 0.5
        assert edge_homophily_ratio(graph) == pytest.approx(0.5)

    def test_label_entropy_uniform_labels(self):
        graph = _triangle_with_pendant()
        assert label_entropy(graph) == pytest.approx(np.log(2.0))

    def test_label_entropy_single_class_is_zero(self, path_graph):
        graph = GraphDataset(
            adjacency=path_graph.adjacency,
            features=path_graph.features,
            labels=np.zeros(6, dtype=int),
        )
        assert label_entropy(graph) == 0.0


class TestComputeStatistics:
    def test_full_record_on_tiny_graph(self, tiny_graph):
        statistics = compute_statistics(tiny_graph)
        assert statistics.num_nodes == tiny_graph.num_nodes
        assert statistics.num_edges == tiny_graph.num_edges
        assert 0.0 <= statistics.node_homophily <= 1.0
        assert 0.0 <= statistics.edge_homophily <= 1.0
        assert statistics.max_degree >= statistics.min_degree
        assert statistics.largest_component_fraction <= 1.0
        assert set(statistics.as_dict()) >= {"name", "density", "label_entropy"}

    def test_homophilous_sbm_is_detected(self):
        graph = planted_partition_graph(300, num_classes=3, intra_probability=0.08,
                                        inter_probability=0.005, seed=0)
        statistics = compute_statistics(graph)
        assert statistics.edge_homophily > 0.7

    def test_heterophilous_sbm_is_detected(self):
        graph = planted_partition_graph(300, num_classes=3, intra_probability=0.005,
                                        inter_probability=0.05, seed=0)
        statistics = compute_statistics(graph)
        assert statistics.edge_homophily < 0.4

    def test_empty_graph_rejected(self):
        graph = GraphDataset(
            adjacency=np.zeros((0, 0)), features=np.zeros((0, 3)),
            labels=np.zeros(0, dtype=int),
        )
        with pytest.raises(GraphDataError):
            compute_statistics(graph)

    def test_statistics_table_shape(self, tiny_graph, path_graph):
        headers, rows = statistics_table([tiny_graph, path_graph])
        assert len(rows) == 2
        assert all(len(row) == len(headers) for row in rows)

    def test_networkx_roundtrip_preserves_counts(self, tiny_graph):
        nx_graph = to_networkx(tiny_graph)
        assert nx_graph.number_of_nodes() == tiny_graph.num_nodes
        assert nx_graph.number_of_edges() == tiny_graph.num_edges
        assert nx_graph.nodes[0]["label"] == int(tiny_graph.labels[0])


class TestStatisticsProperties:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_density_and_homophily_in_unit_interval(self, seed):
        graph = planted_partition_graph(80, num_classes=3, intra_probability=0.1,
                                        inter_probability=0.02, seed=seed)
        statistics = compute_statistics(graph)
        assert 0.0 <= statistics.density <= 1.0
        assert 0.0 <= statistics.edge_homophily <= 1.0
        assert 0.0 <= statistics.average_clustering <= 1.0

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_degree_histogram_sums_to_node_count(self, seed):
        graph = planted_partition_graph(60, num_classes=2, intra_probability=0.1,
                                        inter_probability=0.05, seed=seed)
        assert int(degree_histogram(graph).sum()) == graph.num_nodes
