"""Tests for Lemma-1 clipping and the empirical theory-verification helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clipping import (
    ClippedPropagator,
    clipped_transition_matrix,
    verify_lemma1_properties,
)
from repro.core.losses import get_loss
from repro.core.objective import PerturbedObjective
from repro.core.propagation import Propagator
from repro.core.sensitivity import aggregate_sensitivity
from repro.core.theory import (
    check_convexity,
    check_gradient,
    column_norm_cap_violations,
    empirical_aggregate_sensitivity,
    implied_noise_matrix,
    noise_log_density_ratio,
)
from repro.exceptions import ConfigurationError
from repro.graphs.adjacency import row_stochastic_normalize
from repro.utils.math import one_hot, row_normalize_l2


# --------------------------------------------------------------------------- #
# clipping
# --------------------------------------------------------------------------- #
class TestClippedTransition:
    def test_default_clip_matches_row_stochastic(self, tiny_graph):
        clipped = clipped_transition_matrix(tiny_graph.adjacency, clip=0.5)
        reference = row_stochastic_normalize(tiny_graph.adjacency, add_loops=True)
        assert np.allclose(clipped.toarray(), reference.toarray())

    def test_rows_sum_to_one_for_any_clip(self, tiny_graph):
        for clip in (0.05, 0.2, 0.5):
            clipped = clipped_transition_matrix(tiny_graph.adjacency, clip=clip)
            assert np.allclose(np.asarray(clipped.sum(axis=1)).ravel(), 1.0)

    def test_off_diagonal_entries_bounded_by_clip(self, tiny_graph):
        clip = 0.1
        clipped = clipped_transition_matrix(tiny_graph.adjacency, clip=clip).toarray()
        off_diagonal = clipped - np.diag(np.diag(clipped))
        assert off_diagonal.max() <= clip + 1e-12

    def test_invalid_clip_rejected(self, tiny_graph):
        with pytest.raises(ConfigurationError):
            clipped_transition_matrix(tiny_graph.adjacency, clip=0.0)
        with pytest.raises(ConfigurationError):
            clipped_transition_matrix(tiny_graph.adjacency, clip=0.6)

    def test_lemma1_properties_hold(self, tiny_graph):
        for clip in (0.1, 0.3, 0.5):
            transition = clipped_transition_matrix(tiny_graph.adjacency, clip=clip)
            result = verify_lemma1_properties(transition, tiny_graph.degrees,
                                              clip=clip, max_power=3)
            assert all(result.values()), result

    def test_lemma1_properties_on_path_graph(self, path_graph):
        transition = clipped_transition_matrix(path_graph.adjacency, clip=0.5)
        result = verify_lemma1_properties(transition, path_graph.degrees, max_power=4)
        assert all(result.values())

    def test_clipped_propagator_propagates(self, tiny_graph, rng):
        features = rng.normal(size=(tiny_graph.num_nodes, 8))
        propagator = ClippedPropagator(tiny_graph.adjacency, alpha=0.5, clip=0.2)
        for steps in (0, 1, 3, math.inf):
            aggregated = propagator.propagate(features, steps)
            assert aggregated.shape == features.shape
            assert np.all(np.isfinite(aggregated))

    def test_clipped_propagator_equals_default_at_half(self, tiny_graph, rng):
        features = rng.normal(size=(tiny_graph.num_nodes, 4))
        default = Propagator(tiny_graph.adjacency, alpha=0.6).propagate(features, 2)
        clipped = ClippedPropagator(tiny_graph.adjacency, alpha=0.6, clip=0.5).propagate(
            features, 2,
        )
        assert np.allclose(default, clipped)


# --------------------------------------------------------------------------- #
# Lemma 2: empirical sensitivity
# --------------------------------------------------------------------------- #
class TestEmpiricalSensitivity:
    @pytest.mark.parametrize("alpha", [0.2, 0.5, 0.8])
    @pytest.mark.parametrize("steps", [1, 2, 5, math.inf])
    def test_bound_holds_on_tiny_graph(self, tiny_graph, alpha, steps):
        check = empirical_aggregate_sensitivity(tiny_graph, alpha, steps,
                                                num_pairs=6, rng=0)
        assert check.holds
        assert check.empirical_max <= check.theoretical_bound + 1e-9
        assert check.theoretical_bound == pytest.approx(aggregate_sensitivity(alpha, steps))

    def test_bound_holds_for_edge_additions(self, tiny_graph):
        check = empirical_aggregate_sensitivity(tiny_graph, alpha=0.4, steps=3,
                                                num_pairs=6, kind="add", rng=1)
        assert check.holds

    def test_zero_steps_gives_zero_difference(self, tiny_graph):
        check = empirical_aggregate_sensitivity(tiny_graph, alpha=0.5, steps=0,
                                                num_pairs=3, rng=0)
        assert check.empirical_max == 0.0
        assert check.theoretical_bound == 0.0

    def test_tightness_reported(self, tiny_graph):
        check = empirical_aggregate_sensitivity(tiny_graph, alpha=0.5, steps=2,
                                                num_pairs=5, rng=0)
        assert 0.0 <= check.tightness <= 1.0

    def test_rejects_bad_pair_count(self, tiny_graph):
        with pytest.raises(ConfigurationError):
            empirical_aggregate_sensitivity(tiny_graph, 0.5, 1, num_pairs=0)

    @given(alpha=st.sampled_from([0.3, 0.6, 0.9]), steps=st.integers(1, 4),
           seed=st.integers(0, 20))
    @settings(max_examples=12, deadline=None)
    def test_property_bound_never_violated(self, tiny_graph, alpha, steps, seed):
        check = empirical_aggregate_sensitivity(tiny_graph, alpha, steps,
                                                num_pairs=2, kind="either", rng=seed)
        assert check.holds


# --------------------------------------------------------------------------- #
# convexity, gradients and implied noise
# --------------------------------------------------------------------------- #
def _small_objective(rng, num_classes=3, dimension=6, num_samples=40,
                     quadratic=0.5, noise_scale=0.1):
    features = row_normalize_l2(rng.normal(size=(num_samples, dimension)))
    labels = one_hot(rng.integers(0, num_classes, size=num_samples), num_classes)
    loss = get_loss("soft_margin", num_classes)
    noise = noise_scale * rng.normal(size=(dimension, num_classes))
    return PerturbedObjective(
        features=features, labels_one_hot=labels, loss=loss,
        quadratic_coefficient=quadratic, noise=noise,
    ), loss, features, labels, quadratic


class TestObjectiveChecks:
    def test_convexity_holds(self, rng):
        objective, *_ = _small_objective(rng)
        assert check_convexity(objective, num_probes=15, rng=1)

    def test_strong_convexity_with_modulus(self, rng):
        objective, _, _, _, quadratic = _small_objective(rng)
        assert check_convexity(objective, num_probes=10, strong_modulus=quadratic, rng=2)

    def test_too_large_modulus_fails(self, rng):
        objective, *_ = _small_objective(rng, quadratic=0.01)
        assert not check_convexity(objective, num_probes=30, strong_modulus=50.0, rng=3)

    def test_gradient_matches_finite_differences(self, rng):
        objective, *_ = _small_objective(rng)
        assert check_gradient(objective, num_probes=4, rng=4)

    def test_validation(self, rng):
        objective, *_ = _small_objective(rng)
        with pytest.raises(ConfigurationError):
            check_convexity(objective, num_probes=0)
        with pytest.raises(ConfigurationError):
            check_gradient(objective, num_probes=0)


class TestImpliedNoise:
    def test_minimizer_recovers_injected_noise(self, rng):
        """At the exact minimiser of L_priv, Eq. (40) recovers the injected B."""
        from repro.core.solver import minimize_objective

        objective, loss, features, labels, quadratic = _small_objective(rng, noise_scale=0.2)
        result = minimize_objective(objective, max_iterations=800, gtol=1e-10)
        implied = implied_noise_matrix(result.theta, features, labels, loss, quadratic)
        assert np.allclose(implied, objective.noise, atol=5e-3)

    def test_log_ratio_zero_for_identical_noise(self, rng):
        noise = rng.normal(size=(5, 3))
        assert noise_log_density_ratio(noise, noise, beta=2.0) == 0.0

    def test_log_ratio_sign(self, rng):
        small = np.zeros((5, 3))
        large = np.ones((5, 3))
        assert noise_log_density_ratio(small, large, beta=1.0) > 0.0
        assert noise_log_density_ratio(large, small, beta=1.0) < 0.0

    def test_log_ratio_validates(self, rng):
        with pytest.raises(ConfigurationError):
            noise_log_density_ratio(np.zeros((2, 2)), np.zeros((3, 2)), beta=1.0)
        with pytest.raises(ConfigurationError):
            noise_log_density_ratio(np.zeros((2, 2)), np.zeros((2, 2)), beta=-1.0)

    def test_column_norm_cap_violations(self):
        theta = np.zeros((4, 3))
        theta[:, 2] = 10.0
        assert column_norm_cap_violations(theta, cap=1.0) == 1
        assert column_norm_cap_violations(theta, cap=100.0) == 0
        with pytest.raises(ConfigurationError):
            column_norm_cap_violations(theta, cap=0.0)


class TestGconReleaseRespectsTheory:
    """End-to-end: the released GCON parameters satisfy the Lemma-9 norm cap."""

    def test_theta_columns_within_cap(self, tiny_graph):
        from repro.core.config import GCONConfig
        from repro.core.model import GCON

        config = GCONConfig(epsilon=2.0, alpha=0.8, propagation_steps=(2,),
                            encoder_epochs=30, max_iterations=200)
        model = GCON(config).fit(tiny_graph, seed=0)
        cap = model.perturbation_.c_theta
        assert column_norm_cap_violations(model.theta_, cap) == 0
