"""The docs are part of the interface: dead links and undocumented CLI
surface fail the build (CI runs this module as the ``docs`` job).

Two claims are pinned:

* every relative markdown link in ``README.md`` and ``docs/*.md`` resolves
  to a real file in the repo;
* ``docs/cli.md`` names every registered ``repro`` subcommand (including
  the ``dist`` sub-subcommands) and every long option flag, discovered by
  walking the live argparse tree — the reference cannot silently drift
  from the code.
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path

import pytest

from repro.cli.main import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO_ROOT / "README.md",
                    *(REPO_ROOT / "docs").glob("*.md")])

# [text](target) — excluding images and in-page anchors.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def _relative_links(text: str) -> list[str]:
    links = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target.split("#", 1)[0])
    return links


def test_doc_files_exist():
    names = {path.name for path in DOC_FILES}
    assert {"README.md", "architecture.md", "serving.md", "cli.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_relative_links_resolve(doc):
    dead = [target for target in _relative_links(doc.read_text(encoding="utf-8"))
            if not (doc.parent / target).exists()]
    assert not dead, f"dead relative links in {doc.name}: {dead}"


def _subcommand_tree(parser: argparse.ArgumentParser, prefix: str = "repro"):
    """Yield ``(command_name, subparser)`` for every registered subcommand,
    recursing into nested subparsers (``repro dist submit`` etc.)."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                yield f"{prefix} {name}", sub
                yield from _subcommand_tree(sub, prefix=f"{prefix} {name}")


@pytest.fixture(scope="module")
def cli_doc() -> str:
    return (REPO_ROOT / "docs" / "cli.md").read_text(encoding="utf-8")


def test_cli_doc_names_every_subcommand(cli_doc):
    missing = [command for command, _ in _subcommand_tree(build_parser())
               if f"`{command}`" not in cli_doc]
    assert not missing, f"docs/cli.md does not mention: {missing}"


def test_cli_doc_names_every_long_flag(cli_doc):
    missing = []
    for command, sub in _subcommand_tree(build_parser()):
        for action in sub._actions:
            if isinstance(action, argparse._HelpAction):
                continue
            for option in action.option_strings:
                if option.startswith("--") and option not in cli_doc:
                    missing.append(f"{command} {option}")
    assert not missing, f"docs/cli.md does not mention: {sorted(set(missing))}"


def test_readme_links_into_docs():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for page in ("docs/architecture.md", "docs/serving.md", "docs/cli.md"):
        assert page in readme, f"README.md quickstart must link {page}"
