"""Tests for the tracing core: spans, context propagation, the bounded
store, the wire header, and the distributed worker's group traces."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.distributed import Coordinator, DistributedWorker, SweepSpec
from repro.obs.trace import (
    TRACE_HEADER,
    Span,
    TraceStore,
    Tracer,
    current_span,
    current_trace_id,
    format_trace_header,
    get_tracer,
    new_span_id,
    new_trace_id,
    parse_trace_header,
    set_tracer,
)
from repro.runtime import ExperimentResult


class FakeClock:
    """Deterministic monotonic-ns source."""

    def __init__(self, start: int = 1_000_000):
        self.now = start

    def __call__(self) -> int:
        self.now += 1_000  # every read advances 1µs: spans never zero-width
        return self.now


class TestIdsAndHeader:
    def test_ids_are_hex_of_the_wire_width(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        int(new_trace_id(), 16)
        int(new_span_id(), 16)

    def test_header_round_trip(self):
        span = Span(new_trace_id(), new_span_id(), None, "root", 1)
        value = format_trace_header(span)
        assert parse_trace_header(value) == (span.trace_id, span.span_id)

    @pytest.mark.parametrize("garbage", [
        None, "", "nonsense", "a" * 32, f"{'a' * 32}-{'b' * 15}",
        f"{'a' * 31}-{'b' * 16}", f"{'g' * 32}-{'b' * 16}",
        f"{'a' * 32}_{'b' * 16}",
    ])
    def test_garbage_headers_parse_to_none(self, garbage):
        assert parse_trace_header(garbage) is None

    def test_header_name_is_stable(self):
        # The wire contract the fleet proxy and CI smoke job rely on.
        assert TRACE_HEADER == "X-Repro-Trace"


class TestTracerSpans:
    def test_context_manager_spans_nest(self):
        tracer = Tracer(clock_ns=FakeClock())
        with tracer.span("outer") as outer:
            assert current_span() is outer
            assert current_trace_id() == outer.trace_id
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert current_span() is None
        trace = tracer.store.get(outer.trace_id)
        assert [span["name"] for span in trace["spans"]] == ["outer", "inner"]
        assert trace["status"] == "ok"
        assert trace["duration_ms"] > 0.0

    def test_exception_marks_error_status(self):
        tracer = Tracer(clock_ns=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError("nope")
        assert tracer.store.get(span.trace_id)["status"] == "error"

    def test_explicit_parent_threading(self):
        # The selector-loop form: no contextvars, spans threaded by hand.
        tracer = Tracer(clock_ns=FakeClock())
        root = tracer.start_trace("predict", attrs={"replica": "r0"})
        child = tracer.start_span("proxy", parent=root)
        tracer.end(child)
        tracer.end(root)
        trace = tracer.store.get(root.trace_id)
        spans = {span["name"]: span for span in trace["spans"]}
        assert spans["proxy"]["parent_id"] == root.span_id
        assert spans["predict"]["attrs"] == {"replica": "r0"}

    def test_remote_parent_continues_the_trace(self):
        tracer = Tracer(clock_ns=FakeClock())
        trace_id, parent_id = new_trace_id(), new_span_id()
        root = tracer.start_trace("predict", trace_id=trace_id,
                                  parent_id=parent_id)
        assert root.trace_id == trace_id
        assert root.parent_id == parent_id

    def test_add_span_records_and_guards_bad_timestamps(self):
        tracer = Tracer(clock_ns=FakeClock())
        root = tracer.start_trace("predict")
        good = tracer.add_span("queue", parent=root,
                               start_ns=10_000, end_ns=20_000)
        assert good.duration_ms == pytest.approx(0.01)
        # Unset or inverted timestamps drop the span, never raise.
        assert tracer.add_span("batch", parent=root,
                               start_ns=0, end_ns=5) is None
        assert tracer.add_span("batch", parent=root,
                               start_ns=10, end_ns=5) is None
        tracer.end(root)
        names = [span["name"]
                 for span in tracer.store.get(root.trace_id)["spans"]]
        assert names == ["predict", "queue"]

    def test_end_is_idempotent(self):
        tracer = Tracer(clock_ns=FakeClock())
        root = tracer.start_trace("predict")
        tracer.end(root, status="error")
        first_end = root.end_ns
        tracer.end(root)  # defensive double-end: no-op
        assert root.end_ns == first_end
        assert root.status == "error"
        assert tracer.counters()["traces_finished"] == 1

    def test_spans_feed_stage_histograms(self):
        tracer = Tracer(clock_ns=FakeClock())
        root = tracer.start_trace("predict")
        tracer.add_span("compute", parent=root,
                        start_ns=1, end_ns=2_000_001)  # 2ms
        tracer.end(root)
        export = tracer.stages.export()
        assert export["compute"]["count"] == 1
        assert export["compute"]["sum"] == pytest.approx(2e-3)
        assert "predict" in export

    def test_active_cap_flushes_oldest_as_incomplete(self):
        tracer = Tracer(clock_ns=FakeClock(), max_active=2)
        first = tracer.start_trace("a")
        tracer.start_trace("b")
        tracer.start_trace("c")  # evicts the never-finished "a"
        assert tracer.active_count() == 2
        flushed = tracer.store.get(first.trace_id)
        assert flushed["incomplete"] is True
        assert tracer.counters()["traces_flushed"] == 1

    def test_straggler_span_after_export_is_dropped(self):
        tracer = Tracer(clock_ns=FakeClock())
        root = tracer.start_trace("predict")
        tracer.end(root)
        tracer.add_span("late", parent=root, start_ns=1, end_ns=2)
        names = [span["name"]
                 for span in tracer.store.get(root.trace_id)["spans"]]
        assert names == ["predict"]

    def test_thread_safety_under_concurrent_traces(self):
        tracer = Tracer(clock_ns=FakeClock())  # shared unlocked clock is fine
        errors = []

        def hammer(worker: int):
            try:
                for _ in range(50):
                    with tracer.span(f"root-{worker}"):
                        with tracer.span("child"):
                            pass
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        counters = tracer.counters()
        assert counters["traces_started"] == 400
        assert counters["traces_finished"] == 400
        assert counters["traces_active"] == 0
        assert len(tracer.store) == tracer.store.capacity

    def test_global_tracer_is_lazy_and_replaceable(self):
        try:
            set_tracer(None)
            first = get_tracer()
            assert get_tracer() is first
            mine = Tracer()
            set_tracer(mine)
            assert get_tracer() is mine
        finally:
            set_tracer(None)


class TestTraceStore:
    def test_ring_evicts_oldest(self):
        store = TraceStore(capacity=2)
        for index in range(3):
            store.add({"trace_id": f"t{index}", "root": "r", "span_count": 1,
                       "duration_ms": 1.0, "status": "ok", "spans": []})
        assert len(store) == 2
        assert store.get("t0") is None
        assert [row["trace_id"] for row in store.recent()] == ["t2", "t1"]

    def test_duplicate_id_merges_spans(self):
        # The failover shape: a proxied trace finished on the relay first,
        # then the local fallback adds its own spans under the same id.
        store = TraceStore()
        store.add({"trace_id": "t", "root": "predict", "span_count": 1,
                   "duration_ms": 1.0, "status": "ok",
                   "spans": [{"span_id": "a"}]})
        store.add({"trace_id": "t", "root": "predict", "span_count": 1,
                   "duration_ms": 2.0, "status": "ok",
                   "spans": [{"span_id": "b"}]})
        merged = store.get("t")
        assert merged["span_count"] == 2
        assert [span["span_id"] for span in merged["spans"]] == ["a", "b"]
        assert len(store) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class _TracedStubRunner:
    """Deterministic runner; also proves cell spans wrap runner calls."""

    def __call__(self, cell):
        assert current_span() is not None
        assert current_span().name == "cell.run"
        score = float(np.random.default_rng(cell.seed).random())
        return ExperimentResult(method=cell.method, dataset=cell.dataset,
                                epsilon=cell.epsilon, repeat=cell.repeat,
                                micro_f1=score)


class TestWorkerTraces:
    def test_worker_emits_one_trace_per_group(self, tmp_path):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            coordinator = Coordinator(tmp_path / "q")
            coordinator.submit(SweepSpec(methods=("m1",), datasets=("d1",),
                                         epsilons=(0.5, 1.0), repeats=1))
            report = DistributedWorker(
                tmp_path / "q", "w1",
                cell_runner=_TracedStubRunner()).run()
            assert report.groups_completed == 1
            traces = [tracer.store.get(row["trace_id"])
                      for row in tracer.store.recent()]
            groups = [t for t in traces if t["root"] == "dist.group"]
            assert len(groups) == 1
            names = [span["name"] for span in groups[0]["spans"]]
            assert names[0] == "dist.group"
            assert "lease.claim" in names
            assert "group.run" in names
            assert names.count("cell.run") == 2
            assert "shard.publish" in names
            root = groups[0]["spans"][0]
            assert root["attrs"]["outcome"] == "completed"
            assert root["attrs"]["worker_id"] == "w1"
            assert groups[0]["status"] == "ok"
        finally:
            set_tracer(None)

    def test_failed_group_traces_record_the_outcome(self, tmp_path):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            coordinator = Coordinator(tmp_path / "q")
            coordinator.submit(SweepSpec(methods=("m1",), datasets=("d1",),
                                         epsilons=(0.5,), repeats=1))

            def exploding(cell):
                raise RuntimeError("cell exploded")

            report = DistributedWorker(tmp_path / "q", "w1", max_groups=1,
                                       cell_runner=exploding,
                                       wait_for_completion=False).run()
            # max_attempts failures, the last one quarantining the group.
            assert report.groups_failed == 3
            assert report.groups_quarantined == 1
            outcomes = [tracer.store.get(row["trace_id"])["spans"][0]
                        ["attrs"].get("outcome")
                        for row in tracer.store.recent()]
            assert outcomes.count("failed") == 2
            assert outcomes.count("quarantined") == 1
            statuses = [tracer.store.get(row["trace_id"])["status"]
                        for row in tracer.store.recent()]
            assert set(statuses) == {"error"}
        finally:
            set_tracer(None)
