"""Group-level scaling of the distributed work queue with local workers.

The distributed subsystem's pitch is that a sweep's wall-clock divides by
the number of machines draining the queue.  This benchmark submits one
multi-dataset GCON+MLP sweep into a fresh queue per configuration and
drains it with 1, 2 and 4 local worker processes — the exact protocol
(spec file, group tasks, leases, per-group shards, merge) a multi-machine
deployment runs, just with every "machine" on this host:

* the merged stores of every worker count are bitwise identical to each
  other and to a single-process engine run of the same spec (the queue may
  change *when* work happens, never *what* comes out);
* with enough cores, 2 and 4 workers approach 2x and 4x on the group
  level; worker start-up (a fresh interpreter per worker, as on a real
  second machine) is part of the measured time, so the small smoke grid
  only checks sanity, not the scaling claim.

``REPRO_SMOKE=1`` (or ``pytest --smoke``) shrinks the grid for CI.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import bench_settings, is_smoke, record
from repro.distributed import Coordinator, SweepSpec, start_local_workers
from repro.evaluation.reporting import render_table
from repro.runtime import JsonlResultStore, ParallelExperimentRunner
from repro.runtime.workers import clear_worker_memos

WORKER_COUNTS = (1, 2, 4)
METHODS = ("GCON", "MLP")


def _result_tuples(results):
    return sorted((r.method, r.dataset, r.epsilon, r.repeat, r.micro_f1)
                  for r in results)


def _drain(spec, dist_dir, jobs):
    """Submit into a fresh queue and drain it with ``jobs`` worker processes."""
    coordinator = Coordinator(dist_dir)
    coordinator.submit(spec)
    start = time.perf_counter()
    workers = start_local_workers(dist_dir, jobs=jobs, poll_interval=0.05)
    for process in workers:
        process.join()
    elapsed = time.perf_counter() - start
    assert all(process.exitcode == 0 for process in workers), \
        [process.exitcode for process in workers]
    report = coordinator.merge()
    return elapsed, _result_tuples(JsonlResultStore(report.output).load())


def _run(settings, root):
    spec = SweepSpec.from_settings(settings, methods=METHODS)

    clear_worker_memos()
    start = time.perf_counter()
    engine_results = ParallelExperimentRunner(spec.cell_runner(),
                                              jobs=1).run(spec.expand())
    engine_seconds = time.perf_counter() - start

    timings = {}
    merged = {}
    for jobs in WORKER_COUNTS:
        timings[jobs], merged[jobs] = _drain(spec, root / f"queue-{jobs}", jobs)
    return {
        "spec": spec,
        "engine_seconds": engine_seconds,
        "engine_results": _result_tuples(engine_results),
        "timings": timings,
        "merged": merged,
    }


def test_distributed_worker_scaling(benchmark, tmp_path):
    settings = bench_settings(datasets=("cora_ml", "citeseer"),
                              epsilons=(0.5, 1.0, 2.0, 4.0), repeats=2)
    outcome = benchmark.pedantic(_run, args=(settings, tmp_path),
                                 rounds=1, iterations=1)

    spec = outcome["spec"]
    groups = len({(c.dataset, c.method, c.repeat) for c in spec.expand()})
    baseline = outcome["timings"][WORKER_COUNTS[0]]
    rows = [["single-process engine", f"{outcome['engine_seconds']:.2f}", "-", "-"]]
    for jobs in WORKER_COUNTS:
        speedup = baseline / max(outcome["timings"][jobs], 1e-9)
        rows.append([f"queue, {jobs} worker(s)", f"{outcome['timings'][jobs]:.2f}",
                     f"{speedup:.2f}x", f"{speedup / jobs:.2f}"])
    record("distributed_scaling",
           render_table(["configuration", "seconds", "speedup vs 1 worker",
                         "efficiency"],
                        rows, title=f"distributed queue drain, {groups} groups "
                                    f"({spec.describe()})"))

    # Correctness first: every worker count merges to the same numbers as
    # the single-process engine.  (The engine stamps no context without a
    # store, so the comparison covers the cell identity and the score.)
    for jobs in WORKER_COUNTS:
        assert outcome["merged"][jobs] == outcome["engine_results"]

    # Scaling: near-linear at the group level when the host has the cores.
    # The smoke grid has too few groups to amortise worker start-up, so it
    # only checks that fan-out is not pathologically slower.
    speedup2 = baseline / max(outcome["timings"][2], 1e-9)
    speedup4 = baseline / max(outcome["timings"][4], 1e-9)
    if is_smoke():
        assert speedup2 >= 0.3
    else:
        cores = os.cpu_count() or 1
        if cores >= 2:
            assert speedup2 >= 1.4, f"2-worker speedup {speedup2:.2f}x"
        if cores >= 4:
            assert speedup4 >= 2.0, f"4-worker speedup {speedup4:.2f}x"
