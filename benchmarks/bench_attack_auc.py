"""Extension benchmark: edge-inference attack AUC versus privacy budget.

The paper motivates edge-level DP with link-inference attacks (Section I).
This benchmark mounts the similarity-based link-stealing attack against the
released models and reports ROC-AUC: the non-private GCN leaks edge
membership (AUC well above 0.5), while GCON's privately-released model keeps
the attack near chance level.
"""

from __future__ import annotations

from benchmarks.conftest import bench_settings, record
from repro.evaluation.figures import attack_auc_vs_epsilon
from repro.evaluation.reporting import render_series

EPSILONS = (0.5, 1.0, 4.0)


def _run(settings):
    return attack_auc_vs_epsilon(settings, epsilons=EPSILONS, num_pairs=300)


def test_attack_auc_vs_epsilon(benchmark):
    settings = bench_settings(datasets=("cora_ml",))
    series = benchmark.pedantic(_run, args=(settings,), rounds=1, iterations=1)
    record("attack_auc_vs_epsilon",
           render_series(series, title=f"Link-stealing attack AUC (scale={settings.scale:g})"))

    methods = series["cora_ml"]
    gcn_auc = list(methods["GCN (non-DP)"].values())[0]
    gcon_worst = max(methods["GCON"].values())
    assert 0.0 <= gcon_worst <= 1.0
    # The non-private GCN must be at least as attackable as the DP model.
    assert gcn_auc >= gcon_worst - 0.1
