"""Ablation benchmark (ours): the design choices DESIGN.md calls out.

Not a figure of the paper, but a record of how GCON's accuracy depends on the
pieces the paper treats as tunable hyperparameters (Appendix Q):

* the strongly convex loss (MultiLabel Soft Margin vs pseudo-Huber),
* the budget allocator omega,
* the encoder output dimension d1,
* training-set expansion with pseudo-labels (n1 in {n0, n}).
"""

from __future__ import annotations

from benchmarks.conftest import bench_settings, record
from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.evaluation.reporting import render_table
from repro.graphs.datasets import load_dataset

EPSILON = 4.0


def _run(settings):
    graph = load_dataset("cora_ml", scale=settings.scale, seed=settings.seed)
    delta = 1.0 / max(graph.num_edges, 1)

    def fit(**overrides):
        params = dict(
            epsilon=EPSILON, delta=delta, alpha=0.8, propagation_steps=(2,),
            lambda_reg=settings.lambda_reg, encoder_dim=settings.encoder_dim,
            encoder_hidden=settings.encoder_hidden, encoder_epochs=settings.encoder_epochs,
            use_pseudo_labels=True,
        )
        params.update(overrides)
        model = GCON(GCONConfig(**params)).fit(graph, seed=settings.seed)
        return model.score()

    rows = [
        ["loss = soft_margin (default)", fit()],
        ["loss = pseudo_huber", fit(loss="pseudo_huber", huber_delta=0.2)],
        ["omega = 0.5", fit(omega=0.5)],
        ["omega = 0.9 (default)", fit(omega=0.9)],
        ["encoder_dim = 8", fit(encoder_dim=8)],
        ["encoder_dim = 32", fit(encoder_dim=32)],
        ["pseudo-labels off (n1 = n0)", fit(use_pseudo_labels=False)],
        ["augmented steps (0, 2)", fit(propagation_steps=(0, 2))],
    ]
    return rows


def test_ablation_design_choices(benchmark):
    settings = bench_settings()
    rows = benchmark.pedantic(_run, args=(settings,), rounds=1, iterations=1)
    record("ablation_design_choices",
           render_table(["configuration", "micro F1"], rows,
                        title=f"GCON ablations (eps={EPSILON}, scale={settings.scale:g})"))
    assert all(0.0 <= row[1] <= 1.0 for row in rows)
