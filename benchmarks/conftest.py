"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on the synthetic
dataset presets.  The default settings are scaled down so the whole harness
finishes in minutes on a laptop; set the environment variables

* ``REPRO_BENCH_SCALE``   (default 0.25)  -- graph down-scaling factor,
* ``REPRO_BENCH_REPEATS`` (default 1)     -- independent runs per setting,
* ``REPRO_BENCH_FULL=1``                  -- use the full grids of the paper
  (all four datasets, five privacy budgets, ten repeats); expect hours.

The regenerated series are printed to stdout (run pytest with ``-s`` or look
at the captured output) and also written to ``benchmarks/output/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.evaluation.figures import FigureSettings

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_settings(**overrides) -> FigureSettings:
    """Build FigureSettings from environment variables plus per-bench overrides."""
    full = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0" if full else "0.25"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "10" if full else "1"))
    defaults = dict(
        scale=scale,
        repeats=repeats,
        epochs=200 if full else 100,
        encoder_epochs=300 if full else 150,
        encoder_dim=16,
        encoder_hidden=64,
        lambda_reg=0.2,
        use_pseudo_labels=True,
    )
    if full:
        defaults["datasets"] = ("cora_ml", "citeseer", "pubmed", "actor")
        defaults["epsilons"] = (0.5, 1.0, 2.0, 3.0, 4.0)
    defaults.update(overrides)
    return FigureSettings(**defaults)


def record(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it under benchmarks/output/."""
    print(f"\n===== {name} =====\n{text}\n")
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR
