"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on the synthetic
dataset presets.  The default settings are scaled down so the whole harness
finishes in minutes on a laptop; set the environment variables

* ``REPRO_BENCH_SCALE``   (default 0.25)  -- graph down-scaling factor,
* ``REPRO_BENCH_REPEATS`` (default 1)     -- independent runs per setting,
* ``REPRO_BENCH_JOBS``    (default 1)     -- worker processes for the sweep
  engine behind the figure benchmarks,
* ``REPRO_BENCH_FULL=1``                  -- use the full grids of the paper
  (all four datasets, five privacy budgets, ten repeats); expect hours,
* ``REPRO_SMOKE=1``                       -- shrink everything (tiny graphs,
  few epochs, short grids) so the whole harness finishes in about a minute;
  this is what the CI smoke job runs.  ``pytest --smoke`` sets it too.

``REPRO_SMOKE`` wins over per-benchmark overrides, so even benchmarks that
request several datasets or budgets collapse to the smoke grid.  The
regenerated series are printed to stdout (run pytest with ``-s`` or look at
the captured output) and also written to ``benchmarks/output/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.evaluation.figures import FigureSettings

OUTPUT_DIR = Path(__file__).parent / "output"

SMOKE_SETTINGS = dict(
    scale=0.06,
    repeats=1,
    epochs=25,
    encoder_epochs=40,
    encoder_dim=8,
    encoder_hidden=16,
    datasets=("cora_ml",),
    epsilons=(0.5, 2.0),
)


def pytest_addoption(parser) -> None:
    parser.addoption("--smoke", action="store_true", default=False,
                     help="run the benchmarks in the reduced smoke configuration "
                          "(equivalent to REPRO_SMOKE=1)")


def pytest_configure(config) -> None:
    if config.getoption("--smoke", default=False):
        os.environ["REPRO_SMOKE"] = "1"


def is_smoke() -> bool:
    """True when the reduced CI smoke configuration is requested."""
    return os.environ.get("REPRO_SMOKE", "0") == "1"


def bench_settings(**overrides) -> FigureSettings:
    """Build FigureSettings from environment variables plus per-bench overrides."""
    full = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0" if full else "0.25"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "10" if full else "1"))
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    defaults = dict(
        scale=scale,
        repeats=repeats,
        epochs=200 if full else 100,
        encoder_epochs=300 if full else 150,
        encoder_dim=16,
        encoder_hidden=64,
        lambda_reg=0.2,
        use_pseudo_labels=True,
        jobs=jobs,
    )
    if full:
        defaults["datasets"] = ("cora_ml", "citeseer", "pubmed", "actor")
        defaults["epsilons"] = (0.5, 1.0, 2.0, 3.0, 4.0)
    defaults.update(overrides)
    if is_smoke():
        defaults.update(SMOKE_SETTINGS)
    return FigureSettings(**defaults)


def record(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it under benchmarks/output/."""
    print(f"\n===== {name} =====\n{text}\n")
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR
