"""Figure 4: effect of the restart probability alpha across privacy budgets (m1 = 2).

Sweeps alpha over {0.2, 0.4, 0.6, 0.8} and epsilon over the Figure-1 budgets.

Expected shape: small alpha (0.2) is the weakest configuration, especially
under tight budgets, because lower alpha means higher sensitivity (Lemma 2)
and therefore more injected noise; alpha >= 0.4 is uniformly more robust.
"""

from __future__ import annotations

import os

from benchmarks.conftest import bench_settings, record
from repro.evaluation.figures import figure4_restart_probability
from repro.evaluation.reporting import render_series

ALPHAS_FULL = (0.2, 0.4, 0.6, 0.8)
ALPHAS_QUICK = (0.2, 0.8)


def _grids():
    if os.environ.get("REPRO_BENCH_FULL", "0") == "1":
        return ALPHAS_FULL, (0.5, 1.0, 2.0, 3.0, 4.0), \
            bench_settings(datasets=("cora_ml", "citeseer", "pubmed"))
    return ALPHAS_QUICK, (0.5, 2.0, 4.0), bench_settings(datasets=("cora_ml",))


def _run(settings, alphas, epsilons):
    return figure4_restart_probability(settings, alphas=alphas, epsilons=epsilons,
                                       propagation_step=2)


def test_figure4_restart_probability(benchmark):
    alphas, epsilons, settings = _grids()
    series = benchmark.pedantic(_run, args=(settings, alphas, epsilons), rounds=1, iterations=1)
    record("figure4_restart_probability",
           render_series(series, title=f"Figure 4 (m1=2, scale={settings.scale:g})"))

    for curves in series.values():
        for values in curves.values():
            assert len(values) == len(epsilons)
            assert all(0.0 <= v <= 1.0 for v in values.values())
        # At the tightest budget, the high-alpha (low-sensitivity) configuration
        # should not be worse than the low-alpha one.
        tightest = min(epsilons)
        assert curves[f"alpha={max(alphas):g}"][tightest] \
            >= curves[f"alpha={min(alphas):g}"][tightest] - 0.1
