"""Scalability: GCON training time and accuracy versus graph size.

Not a figure of the paper, but a practical record of the claim that the whole
pipeline is laptop-scale: we grow the Cora-ML preset from 10% to 50% (100% in
full mode) of its original size and report wall-clock fit time together with
test accuracy.  Training cost is dominated by the public encoder and the
convex solve, both (near-)linear in the number of nodes, so the time curve
should grow roughly linearly while accuracy improves with size (more labelled
nodes means relatively less objective noise, Theorem 1).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import bench_settings, is_smoke, record
from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.evaluation.reporting import render_table
from repro.graphs.datasets import load_dataset

SCALES_SMOKE = (0.05, 0.1)
SCALES_QUICK = (0.1, 0.25, 0.5)
SCALES_FULL = (0.1, 0.25, 0.5, 1.0)
EPSILON = 2.0


def _run(settings, scales):
    rows = []
    for scale in scales:
        graph = load_dataset("cora_ml", scale=scale, seed=settings.seed)
        delta = 1.0 / max(graph.num_edges, 1)
        config = GCONConfig(
            epsilon=EPSILON, delta=delta, alpha=0.8, propagation_steps=(2,),
            lambda_reg=settings.lambda_reg, encoder_dim=settings.encoder_dim,
            encoder_epochs=settings.encoder_epochs, use_pseudo_labels=True,
        )
        start = time.perf_counter()
        model = GCON(config).fit(graph, seed=settings.seed)
        elapsed = time.perf_counter() - start
        rows.append([
            f"{scale:g}", graph.num_nodes, graph.num_edges,
            f"{elapsed:.2f}", f"{model.score():.4f}",
        ])
    return rows


def test_scalability(benchmark):
    full = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
    settings = bench_settings(datasets=("cora_ml",))
    if full:
        scales = SCALES_FULL
    elif is_smoke():
        scales = SCALES_SMOKE
    else:
        scales = SCALES_QUICK
    rows = benchmark.pedantic(_run, args=(settings, scales), rounds=1, iterations=1)
    record("scalability",
           render_table(["scale", "nodes", "edges", "fit seconds", "micro F1"], rows,
                        title=f"GCON scalability on the Cora-ML preset (eps={EPSILON})"))
    times = [float(row[3]) for row in rows]
    scores = [float(row[4]) for row in rows]
    assert all(t < 600 for t in times)
    # Accuracy at the largest scale should not be worse than at the smallest:
    # larger graphs mean more labelled nodes and relatively less noise.
    assert scores[-1] >= scores[0] - 0.05
