"""Figure 2: effect of the propagation step m1 under private inference (epsilon = 4).

Sweeps m1 over {1, 2, 5, 10, inf} for several restart probabilities alpha and
reports GCON's micro-F1 with the privacy-preserving inference rule (Eq. 16).

Expected shape: small alpha (0.2) degrades as m1 grows (sensitivity, hence
noise, increases per Lemma 2), while large alpha (0.6-0.8) stays flat or
improves slightly.
"""

from __future__ import annotations

import math
import os

from benchmarks.conftest import bench_settings, record
from repro.evaluation.figures import figure23_propagation_step
from repro.evaluation.reporting import render_series

STEPS_FULL = (1, 2, 5, 10, 12, 14, 16, 20, math.inf)
STEPS_QUICK = (1, 2, 5, 10, math.inf)
ALPHAS_FULL = (0.2, 0.4, 0.6, 0.8)
ALPHAS_QUICK = (0.2, 0.8)


def _grids():
    if os.environ.get("REPRO_BENCH_FULL", "0") == "1":
        return STEPS_FULL, ALPHAS_FULL, bench_settings(datasets=("cora_ml", "citeseer", "pubmed"))
    return STEPS_QUICK, ALPHAS_QUICK, bench_settings(datasets=("cora_ml",))


def _run(settings, steps, alphas):
    return figure23_propagation_step(settings, inference_mode="private", steps=steps,
                                     alphas=alphas, epsilon=4.0)


def test_figure2_propagation_step_private(benchmark):
    steps, alphas, settings = _grids()
    series = benchmark.pedantic(_run, args=(settings, steps, alphas), rounds=1, iterations=1)
    record("figure2_propagation_private",
           render_series(series, title=f"Figure 2 (private inference, eps=4, "
                                       f"scale={settings.scale:g})"))

    for dataset, curves in series.items():
        for label, values in curves.items():
            assert len(values) == len(steps)
            assert all(0.0 <= v <= 1.0 for v in values.values())
        # Larger alpha implies lower sensitivity; at the largest m1 the
        # high-alpha curve should not fall below the low-alpha one.
        largest = max(values.keys())
        low_alpha = curves[f"alpha={min(alphas):g}"][largest]
        high_alpha = curves[f"alpha={max(alphas):g}"][largest]
        assert high_alpha >= low_alpha - 0.1
