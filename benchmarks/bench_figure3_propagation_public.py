"""Figure 3: effect of the propagation step m1 with a public test graph (epsilon = 4).

Identical sweep to Figure 2 but evaluated with non-private inference (the
test graph's edges are public and full PPR/APPR propagation is used), the
setting of [46]-[48] referenced by the paper.

Expected shape: utility improves with m1 up to roughly 10 and then saturates,
and is at least as good as private inference at the same configuration.
"""

from __future__ import annotations

import math
import os

from benchmarks.conftest import bench_settings, record
from repro.evaluation.figures import figure23_propagation_step
from repro.evaluation.reporting import render_series

STEPS_FULL = (1, 2, 5, 10, 12, 14, 16, 20, math.inf)
STEPS_QUICK = (1, 2, 5, 10, math.inf)
ALPHAS_FULL = (0.2, 0.4, 0.6, 0.8)
ALPHAS_QUICK = (0.2, 0.8)


def _grids():
    if os.environ.get("REPRO_BENCH_FULL", "0") == "1":
        return STEPS_FULL, ALPHAS_FULL, bench_settings(datasets=("cora_ml", "citeseer", "pubmed"))
    return STEPS_QUICK, ALPHAS_QUICK, bench_settings(datasets=("cora_ml",))


def _run(settings, steps, alphas):
    return figure23_propagation_step(settings, inference_mode="public", steps=steps,
                                     alphas=alphas, epsilon=4.0)


def test_figure3_propagation_step_public(benchmark):
    steps, alphas, settings = _grids()
    series = benchmark.pedantic(_run, args=(settings, steps, alphas), rounds=1, iterations=1)
    record("figure3_propagation_public",
           render_series(series, title=f"Figure 3 (public inference, eps=4, "
                                       f"scale={settings.scale:g})"))

    for curves in series.values():
        for values in curves.values():
            assert len(values) == len(steps)
            assert all(0.0 <= v <= 1.0 for v in values.values())
