"""Serving-path throughput and latency: micro-batching versus per-request.

The serving subsystem's pitch is that coalescing queries into one stacked
``aggregated @ theta`` matmul per model amortises the per-call overhead that
dominates single-row inference.  This benchmark publishes one GCON release
into a temporary registry, warms the propagated-feature cache, and measures
the *data plane only* (no HTTP, no threads — deterministic on a 1-core CI
runner):

* **per-request**: N single-node queries, each its own matmul — the
  no-batching baseline;
* **micro-batched**: the same N queries coalesced into batches of B through
  the exact `MicroBatcher.run_once` path the server uses.

Two assertions always run: (1) every configuration returns scores bitwise
identical to offline ``GCON.decision_scores``; (2) on a warm cache,
micro-batching beats one-matmul-per-request throughput.  The second claim is
about call overhead, not parallelism, so it holds on a single core and is
asserted in smoke mode too.

``REPRO_SMOKE=1`` (or ``pytest --smoke``) shrinks the model and query count.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np

from benchmarks.conftest import bench_settings, is_smoke, record
from repro.core.model import GCON
from repro.evaluation.figures import default_gcon_config
from repro.evaluation.reporting import render_table
from repro.graphs.datasets import load_dataset
from repro.serving import (
    FleetMember,
    FleetRouter,
    FleetView,
    InferenceService,
    MicroBatcher,
    ModelRegistry,
    OverloadedError,
    SloController,
    serve_http,
    watch_models,
)

BATCH_SIZES = (4, 16, 64, 256)
REPETITIONS = 3


def _publish_model(settings, registry_root):
    graph = load_dataset(settings.datasets[0], scale=settings.scale,
                         seed=settings.seed)
    delta = 1.0 / max(graph.num_edges, 1)
    model = GCON(default_gcon_config(2.0, delta, settings))
    model.fit(graph, seed=settings.seed)
    registry = ModelRegistry(registry_root)
    registry.publish(model, "bench", inference_mode="private",
                     training={"dataset": settings.datasets[0],
                               "scale": settings.scale,
                               "graph_seed": settings.seed})
    return registry, graph, model


def _per_request_seconds(service, key, nodes) -> float:
    best = float("inf")
    for _ in range(REPETITIONS):
        start = time.perf_counter()
        for node in nodes:
            service.batcher.submit(key, [node])
            service.batcher.run_once()
        best = min(best, time.perf_counter() - start)
    return best


def _batched_seconds(service, key, nodes, batch_size) -> float:
    best = float("inf")
    for _ in range(REPETITIONS):
        start = time.perf_counter()
        for offset in range(0, len(nodes), batch_size):
            for node in nodes[offset:offset + batch_size]:
                service.batcher.submit(key, [node])
            service.batcher.run_once()
        best = min(best, time.perf_counter() - start)
    return best


def _run(settings, registry_root):
    registry, graph, model = _publish_model(settings, registry_root)
    service = InferenceService(registry, graph=graph)
    num_queries = 256 if is_smoke() else 2048
    rng = np.random.default_rng(settings.seed)
    nodes = rng.integers(0, graph.num_nodes, size=num_queries).tolist()

    offline = model.decision_scores(graph, mode="private")
    key, _session = service._session("bench@latest", None)  # warm the cache

    # Correctness: a served batch is bitwise identical to offline scores.
    probe = nodes[:32]
    assert np.array_equal(service.predict_scores("bench", probe), offline[probe])
    single = service.predict_scores("bench", [nodes[0]])
    assert np.array_equal(single, offline[[nodes[0]]])

    per_request = _per_request_seconds(service, key, nodes)
    batched = {size: _batched_seconds(service, key, nodes, size)
               for size in BATCH_SIZES}
    return {
        "num_queries": num_queries,
        "per_request_seconds": per_request,
        "batched_seconds": batched,
        "stats": service.stats(),
    }


def test_serving_microbatch_throughput(benchmark, tmp_path):
    settings = bench_settings(datasets=("cora_ml",))
    outcome = benchmark.pedantic(_run, args=(settings, tmp_path / "registry"),
                                 rounds=1, iterations=1)

    queries = outcome["num_queries"]
    per_request = outcome["per_request_seconds"]
    rows = [["per-request (batch=1)", f"{per_request * 1e3:.1f}",
             f"{queries / per_request:,.0f}", "-"]]
    for size, seconds in outcome["batched_seconds"].items():
        rows.append([f"micro-batch B={size}", f"{seconds * 1e3:.1f}",
                     f"{queries / seconds:,.0f}",
                     f"{per_request / seconds:.2f}x"])
    record("serving_microbatch",
           render_table(
               ["configuration", f"total ms ({queries} queries)",
                "queries/s", "speedup"],
               rows, title="warm-cache serving throughput vs micro-batch size"))

    # The acceptance claim: on a warm cache, micro-batching beats
    # one-matmul-per-request throughput.  This is call-overhead amortisation,
    # not parallelism, so no core-count gate — but only the best batched
    # configuration is pinned, with headroom for scheduler noise.
    best_batched = min(outcome["batched_seconds"].values())
    assert best_batched < per_request, (
        f"micro-batching ({best_batched:.4f}s) did not beat per-request "
        f"({per_request:.4f}s) on a warm cache")

    # The feature cache did its job: propagation ran once, not per query.
    cache = outcome["stats"]["feature_cache"]
    assert cache["feature_misses"] == 1


# --------------------------------------------------------------------------- #
# two-model contention: per-model queues kill head-of-line blocking
# --------------------------------------------------------------------------- #
def _publish_two_models(settings, registry_root):
    graph = load_dataset(settings.datasets[0], scale=settings.scale,
                         seed=settings.seed)
    delta = 1.0 / max(graph.num_edges, 1)
    registry = ModelRegistry(registry_root)
    training = {"dataset": settings.datasets[0], "scale": settings.scale,
                "graph_seed": settings.seed}
    models = {}
    for name, epsilon in (("alpha", 2.0), ("beta", 0.5)):
        model = GCON(default_gcon_config(epsilon, delta, settings))
        model.fit(graph, seed=settings.seed)
        registry.publish(model, name, inference_mode="private",
                         training=training)
        models[name] = model
    return registry, graph, models


def _measure_b_latencies(plane, beta_key, nodes, offline, spacing):
    """Singleton beta queries through ``plane``; per-query wall latency."""
    latencies = []
    for node in nodes:
        start = time.perf_counter()
        scores = plane.predict_scores(beta_key, [node], timeout=30.0)
        latencies.append(time.perf_counter() - start)
        assert np.array_equal(scores, offline[[node]]), \
            "served beta scores != offline decision_scores"
        time.sleep(spacing)
    return latencies


def _saturate(plane, alpha_key, hammer_nodes, stop):
    while not stop.is_set():
        plane.predict_scores(alpha_key, hammer_nodes, timeout=30.0)


def _contention_phase(plane, alpha_key, beta_key, nodes, offline, *,
                      spacing, hammer_nodes, hammer_threads=2):
    """Solo then contended beta latencies against one started data plane."""
    solo = _measure_b_latencies(plane, beta_key, nodes, offline, spacing)
    stop = threading.Event()
    hammers = [threading.Thread(target=_saturate,
                                args=(plane, alpha_key, hammer_nodes, stop),
                                daemon=True)
               for _ in range(hammer_threads)]
    for thread in hammers:
        thread.start()
    time.sleep(spacing * 5)  # let the alpha load actually build up
    try:
        contended = _measure_b_latencies(plane, beta_key, nodes, offline,
                                         spacing)
    finally:
        stop.set()
        for thread in hammers:
            thread.join()
    return solo, contended


def _run_contention(settings, registry_root):
    registry, graph, models = _publish_two_models(settings, registry_root)
    service = InferenceService(registry, graph=graph,
                               max_batch_size=64, max_latency=0.002)
    alpha_key, _ = service._session("alpha", None)
    beta_key, _ = service._session("beta", None)
    offline_beta = models["beta"].decision_scores(graph, mode="private")

    # "Model A is saturated" is emulated by inflating alpha's compute cost
    # (time.sleep releases the GIL, so the contrast survives a 1-core
    # runner): what matters is the *queueing* structure, and the real
    # stacked matmul still runs so every answer stays bitwise checked.
    alpha_delay = 0.015 if is_smoke() else 0.03
    num_queries = 20 if is_smoke() else 60
    spacing = 0.001
    real_compute = service._score_rows

    def contended_compute(model_key, nodes):
        if model_key == alpha_key:
            time.sleep(alpha_delay)
        return real_compute(model_key, nodes)

    rng = np.random.default_rng(settings.seed)
    nodes = rng.integers(0, graph.num_nodes, size=num_queries).tolist()
    hammer_nodes = rng.integers(0, graph.num_nodes, size=16).tolist()

    # New data plane: the service's own per-model router (sessions are warm,
    # so queues created from here on pick up the wrapped compute).
    service.batcher._compute = contended_compute
    with service.batcher as router:
        router_solo, router_contended = _contention_phase(
            router, alpha_key, beta_key, nodes, offline_beta,
            spacing=spacing, hammer_nodes=hammer_nodes)
    stats = service.stats()

    # Reference data plane: the PR 4 single shared queue, same compute —
    # beta's tickets share alpha's forming batch, deadline and dispatch.
    with MicroBatcher(contended_compute, max_batch_size=64,
                      max_latency=0.002) as legacy:
        legacy_solo, legacy_contended = _contention_phase(
            legacy, alpha_key, beta_key, nodes, offline_beta,
            spacing=spacing, hammer_nodes=hammer_nodes)

    def summary(latencies):
        return {"p50": float(np.percentile(latencies, 50)),
                "p99": float(np.percentile(latencies, 99))}

    return {
        "num_queries": num_queries,
        "alpha_delay": alpha_delay,
        "router": {"solo": summary(router_solo),
                   "contended": summary(router_contended)},
        "legacy": {"solo": summary(legacy_solo),
                   "contended": summary(legacy_contended)},
        "stats": stats,
    }


def test_two_model_contention_no_head_of_line_blocking(benchmark, tmp_path):
    settings = bench_settings(datasets=("cora_ml",))
    outcome = benchmark.pedantic(_run_contention,
                                 args=(settings, tmp_path / "registry"),
                                 rounds=1, iterations=1)

    rows = []
    for plane in ("router", "legacy"):
        for phase in ("solo", "contended"):
            entry = outcome[plane][phase]
            rows.append([f"{plane} / model B {phase}",
                         f"{entry['p50'] * 1e3:.2f}",
                         f"{entry['p99'] * 1e3:.2f}"])
    record("serving_contention",
           render_table(
               ["configuration", "p50 ms", "p99 ms"],
               rows,
               title=f"model-B latency under model-A saturation "
                     f"({outcome['num_queries']} queries, alpha matmul "
                     f"+{outcome['alpha_delay'] * 1e3:.0f}ms)"))

    router_solo = outcome["router"]["solo"]["p99"]
    router_contended = outcome["router"]["contended"]["p99"]
    legacy_contended = outcome["legacy"]["contended"]["p99"]

    # The head-of-line claim, structurally: on the shared queue, beta's p99
    # absorbs at least one alpha matmul; on per-model queues it does not.
    assert legacy_contended >= outcome["alpha_delay"], (
        f"legacy plane should show head-of-line blocking, got "
        f"{legacy_contended * 1e3:.2f}ms p99")
    assert router_contended < legacy_contended * 0.5, (
        f"per-model routing did not beat the shared queue: "
        f"{router_contended * 1e3:.2f}ms vs {legacy_contended * 1e3:.2f}ms p99")
    # And beta stays flat: contended p99 within generous noise of solo
    # (scheduler jitter on a loaded 1-core runner, never an alpha matmul).
    assert router_contended <= max(4 * router_solo,
                                   router_solo + 0.020), (
        f"model-B p99 moved under model-A load: solo "
        f"{router_solo * 1e3:.2f}ms, contended {router_contended * 1e3:.2f}ms")

    # /stats carries the per-model histograms the operator would read.
    labels = [label for label in outcome["stats"]["models"]
              if label.startswith("beta@")]
    assert labels, "per-model stats must name the beta model"
    latency = outcome["stats"]["models"][labels[0]]["latency_ms"]
    assert latency["count"] >= 2 * outcome["num_queries"]
    assert {"p50", "p95", "p99"} <= set(latency)


# --------------------------------------------------------------------------- #
# SLO step load: adaptive batching vs the static PR 5 configuration
# --------------------------------------------------------------------------- #
def _run_slo_phase(registry, graph, offline, nodes, *, target_p99,
                   base_latency, tick_every):
    """Sparse singleton traffic against a deadline-dominated configuration.

    With one client and a generous row budget, each singleton waits out the
    model's flush deadline — so the *configured* deadline IS the latency.
    The static plane keeps the operator's ``base_latency`` and violates the
    SLO on every query; the adaptive plane lets the AIMD controller tick on
    a fixed request cadence (deterministic — no controller thread) and
    collapse the deadline until the windows land under target.  Every reply
    is still bitwise checked against offline scores.
    """
    latencies = {"static": [], "adaptive": []}
    for plane in ("static", "adaptive"):
        service = InferenceService(registry, graph=graph,
                                   max_batch_size=256,
                                   max_latency=base_latency)
        controller = SloController(service.batcher, target_p99=target_p99,
                                   metrics=service.metrics)
        service.attach_slo(controller)
        with service.batcher:
            for index, node in enumerate(nodes):
                start = time.perf_counter()
                scores = service.predict_scores("bench", [node], timeout=30.0)
                latencies[plane].append(time.perf_counter() - start)
                assert np.array_equal(scores, offline[[node]]), \
                    f"{plane}: served scores != offline decision_scores"
                if plane == "adaptive" and (index + 1) % tick_every == 0:
                    controller.tick()
        if plane == "adaptive":
            slo_state = service.stats()["slo"]
        service.close()
    return latencies, slo_state


def _run_slo_step(settings, registry_root):
    registry, graph, model = _publish_model(settings, registry_root)
    offline = model.decision_scores(graph, mode="private")
    target_p99 = 0.030
    base_latency = 0.100        # the static flush deadline: 100ms >> target
    num_queries = 30 if is_smoke() else 72
    tick_every = 5 if is_smoke() else 6
    rng = np.random.default_rng(settings.seed)
    nodes = rng.integers(0, graph.num_nodes, size=num_queries).tolist()
    latencies, slo_state = _run_slo_phase(
        registry, graph, offline, nodes, target_p99=target_p99,
        base_latency=base_latency, tick_every=tick_every)
    return {
        "target_p99": target_p99,
        "base_latency": base_latency,
        "num_queries": num_queries,
        "warmup": 2 * tick_every,   # before the controller's first backoffs
        "latencies": latencies,
        "slo": slo_state,
    }


def test_slo_adaptive_batching_holds_p99_where_static_violates(benchmark,
                                                               tmp_path):
    settings = bench_settings(datasets=("cora_ml",))
    outcome = benchmark.pedantic(_run_slo_step,
                                 args=(settings, tmp_path / "registry"),
                                 rounds=1, iterations=1)

    target = outcome["target_p99"]
    warmup = outcome["warmup"]
    static = outcome["latencies"]["static"]
    adaptive = outcome["latencies"]["adaptive"][warmup:]  # steady state

    def goodput(latencies):
        """Queries answered within the SLO, per second of wall time."""
        return sum(1 for value in latencies if value <= target) / sum(latencies)

    rows = []
    for name, values in (("static (PR 5 config)", static),
                         (f"adaptive (after {warmup}-query warmup)", adaptive)):
        rows.append([name,
                     f"{np.percentile(values, 50) * 1e3:.1f}",
                     f"{np.percentile(values, 99) * 1e3:.1f}",
                     f"{len(values) / sum(values):,.1f}",
                     f"{goodput(values):,.1f}"])
    record("serving_slo_step",
           render_table(
               ["configuration", "p50 ms", "p99 ms", "queries/s",
                f"goodput/s (<= {target * 1e3:.0f}ms)"],
               rows,
               title=f"SLO step load: {outcome['num_queries']} singleton "
                     f"queries, {outcome['base_latency'] * 1e3:.0f}ms static "
                     f"deadline, {target * 1e3:.0f}ms p99 target"))

    static_p99 = float(np.percentile(static, 99))
    adaptive_p99 = float(np.percentile(adaptive, 99))
    # The static plane pins every query at its 100ms flush deadline — far
    # over the target on each one; zero of them count as goodput.
    assert static_p99 >= 2.5 * target, (
        f"static plane should violate the SLO, got {static_p99 * 1e3:.1f}ms")
    assert goodput(static) == 0.0
    # The adaptive plane backs its deadline off until windows meet the
    # target; AIMD keeps probing upward, so steady state oscillates just
    # around the target rather than far above it.
    assert adaptive_p99 <= 0.6 * static_p99, (
        f"adaptive p99 {adaptive_p99 * 1e3:.1f}ms did not improve on static "
        f"{static_p99 * 1e3:.1f}ms")
    assert goodput(adaptive) > 0.0, "no adaptive query ever met the SLO"
    # The controller's own audit trail agrees: it intervened, and a healthy
    # share of its observation windows met the target.
    (label, budget), = outcome["slo"]["models"].items()
    assert budget["backed_off"] >= 1, budget
    assert budget["windows_under_slo"] >= 1, budget
    assert budget["max_latency_seconds"] < outcome["base_latency"], budget


# --------------------------------------------------------------------------- #
# overload: bounded queues answer with 429s instead of unbounded latency
# --------------------------------------------------------------------------- #
def _run_overload(settings, registry_root):
    registry, graph, model = _publish_model(settings, registry_root)
    offline = model.decision_scores(graph, mode="private")
    max_queue_depth = 8
    burst = 48 if is_smoke() else 96
    flush_delay = 0.005
    service = InferenceService(registry, graph=graph, max_batch_size=4,
                               max_latency=0.0,
                               max_queue_depth=max_queue_depth)
    # Inflate the per-flush cost (sleep releases the GIL) so a back-to-back
    # burst outruns the drain rate; the real matmul still runs, so every
    # accepted request stays bitwise checked.
    real_compute = service._score_rows

    def slow_compute(model_key, rows):
        time.sleep(flush_delay)
        return real_compute(model_key, rows)

    service.batcher._compute = slow_compute
    service._session("bench@latest", None)  # warm before the clock starts
    rng = np.random.default_rng(settings.seed)
    nodes = rng.integers(0, graph.num_nodes, size=burst).tolist()
    accepted, shed, retry_hints = [], 0, []
    with service.batcher:
        start = time.perf_counter()
        for node in nodes:
            try:
                ticket, _record, _mode = service.submit_batch("bench", [node])
                accepted.append((node, ticket))
            except OverloadedError as error:
                shed += 1
                retry_hints.append(error.retry_after)
        submit_elapsed = time.perf_counter() - start
        for node, ticket in accepted:
            assert np.array_equal(ticket.result(30.0), offline[[node]]), \
                "accepted request served non-offline scores"
    stats = service.stats()
    service.close()
    return {
        "burst": burst,
        "max_queue_depth": max_queue_depth,
        "accepted": len(accepted),
        "shed": shed,
        "retry_hints": retry_hints,
        "submit_elapsed": submit_elapsed,
        "admission": stats["admission"],
    }


def test_overload_is_answered_with_shedding_not_queueing(benchmark, tmp_path):
    settings = bench_settings(datasets=("cora_ml",))
    outcome = benchmark.pedantic(_run_overload,
                                 args=(settings, tmp_path / "registry"),
                                 rounds=1, iterations=1)

    record("serving_overload",
           render_table(
               ["metric", "value"],
               [["burst size (back-to-back submits)", str(outcome["burst"])],
                ["queue depth cap", str(outcome["max_queue_depth"])],
                ["accepted", str(outcome["accepted"])],
                ["shed with 429", str(outcome["shed"])],
                ["submit phase ms",
                 f"{outcome['submit_elapsed'] * 1e3:.1f}"],
                ["mean Retry-After hint s",
                 f"{np.mean(outcome['retry_hints']):.3f}"
                 if outcome["retry_hints"] else "-"]],
               title="admission control under a burst 12x the depth cap"))

    assert outcome["accepted"] + outcome["shed"] == outcome["burst"]
    # The cap actually bit: most of the burst was shed, cheaply and fast —
    # the submit phase never waits out the backlog it refuses to join.
    assert outcome["shed"] > 0, "the depth cap never triggered"
    assert outcome["accepted"] >= outcome["max_queue_depth"]
    assert all(hint > 0 for hint in outcome["retry_hints"])
    assert outcome["admission"]["shed_total"] == outcome["shed"]
    assert outcome["admission"]["max_queue_depth"] == outcome["max_queue_depth"]


# --------------------------------------------------------------------------- #
# cold start: eager load vs memory-mapped bundles
# --------------------------------------------------------------------------- #
def _run_cold_start(settings, registry_root):
    registry, graph, model = _publish_model(settings, registry_root)
    offline = model.decision_scores(graph, mode="private")

    timings = {}
    loaded = {}
    for mode, mmap in (("eager", False), ("mmap", True)):
        best = float("inf")
        for _ in range(REPETITIONS):
            start = time.perf_counter()
            candidate, _record = registry.load("bench@latest", mmap=mmap)
            best = min(best, time.perf_counter() - start)
        timings[mode] = best
        loaded[mode] = candidate

    # The mapped model really is mapped, and scores are bitwise identical
    # across load modes and to the offline reference.
    assert isinstance(loaded["mmap"].theta_, np.memmap)
    assert not isinstance(loaded["eager"].theta_, np.memmap)
    scores = {mode: m.decision_scores(graph, mode="private")
              for mode, m in loaded.items()}
    assert np.array_equal(scores["eager"], offline)
    assert np.array_equal(scores["mmap"], offline)

    # And a service session built on the mapped bundle (the serving default)
    # serves the same bits.
    service = InferenceService(registry, graph=graph, mmap_bundles=True)
    probe = [0, 3, 9]
    assert np.array_equal(service.predict_scores("bench", probe),
                          offline[probe])
    service.close()
    return {"timings": timings,
            "archive_bytes": registry.resolve("bench@latest")
                                     .archive_path.stat().st_size}


def test_cold_start_mmap_vs_eager(benchmark, tmp_path):
    settings = bench_settings(datasets=("cora_ml",))
    outcome = benchmark.pedantic(_run_cold_start,
                                 args=(settings, tmp_path / "registry"),
                                 rounds=1, iterations=1)
    timings = outcome["timings"]
    record("serving_cold_start",
           render_table(
               ["load mode", "best-of-3 ms", "notes"],
               [["eager np.load", f"{timings['eager'] * 1e3:.2f}",
                 "copies every array byte up front"],
                ["memory-mapped", f"{timings['mmap'] * 1e3:.2f}",
                 "pages faulted in on first use"]],
               title=f"registry cold start "
                     f"({outcome['archive_bytes'] / 1024:.0f} KiB bundle); "
                     f"scores bitwise identical in both modes"))
    # No timing assertion: on small bundles and warm page caches the two are
    # close — the load-bearing claims (memmap type, bitwise equality) are
    # asserted inside the run.


# --------------------------------------------------------------------------- #
# tracing overhead: the traced request path vs --no-trace
# --------------------------------------------------------------------------- #
TRACE_OVERHEAD_BUDGET = 0.05   # the acceptance claim: <5% on p99


def _drive_http_singletons(port, nodes, offline, *, expect_trace):
    """Singleton predicts over HTTP; per-request wall latency, every answer
    bitwise checked against ``offline`` before its latency counts."""
    import urllib.request

    latencies = []
    for node in nodes:
        payload = json.dumps({"model": "bench", "nodes": [node]}).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/v1/predict", data=payload,
            headers={"Content-Type": "application/json"})
        start = time.perf_counter()
        with urllib.request.urlopen(request, timeout=10.0) as resp:
            body = json.loads(resp.read())
            header = resp.headers.get("X-Repro-Trace")
        latencies.append(time.perf_counter() - start)
        assert np.array_equal(np.asarray(body["scores"]), offline[[node]]), \
            "served scores != offline decision_scores"
        assert (header is not None) == expect_trace
    return latencies


def _run_trace_overhead(settings, registry_root):
    registry, graph, model = _publish_model(settings, registry_root)
    offline = model.decision_scores(graph, mode="private")
    num_queries = 60 if is_smoke() else 200
    rng = np.random.default_rng(settings.seed)
    nodes = rng.integers(0, graph.num_nodes, size=num_queries).tolist()

    latencies = {}
    traced_counters = None
    collector_stats = None
    for plane, traced, collect in (("untraced", False, False),
                                   ("traced", True, False),
                                   ("collector", True, True)):
        service = InferenceService(registry, graph=graph)
        service.prewarm("bench@latest")
        server = serve_http(service, port=0, trace=traced)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        collector = None
        if collect:
            from repro.obs.collector import TelemetryCollector
            from repro.obs.prometheus import render_server_metrics
            from repro.obs.tsdb import TelemetryStore

            collector = TelemetryCollector(
                TelemetryStore(),
                lambda: render_server_metrics(service, server=server,
                                              tracer=server.tracer),
                interval=0.1, replica="bench").start()
        try:
            port = server.server_address[1]
            _drive_http_singletons(port, nodes[:8], offline,
                                   expect_trace=traced)  # warm up
            latencies[plane] = _drive_http_singletons(
                port, nodes, offline, expect_trace=traced)
            if plane == "traced":
                traced_counters = server.tracer.counters()
            if collector is not None:
                collector_stats = collector.stats()
        finally:
            if collector is not None:
                collector.close()
            server.shutdown()
            server.server_close()
            service.close()
    return {"num_queries": num_queries, "latencies": latencies,
            "traced_counters": traced_counters,
            "collector_stats": collector_stats}


def test_tracing_overhead_within_budget(benchmark, tmp_path):
    settings = bench_settings(datasets=("cora_ml",))
    outcome = benchmark.pedantic(_run_trace_overhead,
                                 args=(settings, tmp_path / "registry"),
                                 rounds=1, iterations=1)

    stats = {plane: {"p50": float(np.percentile(values, 50)),
                     "p99": float(np.percentile(values, 99))}
             for plane, values in outcome["latencies"].items()}
    ratio = stats["traced"]["p99"] / stats["untraced"]["p99"]
    collector_ratio = stats["collector"]["p99"] / stats["untraced"]["p99"]
    record("serving_trace_overhead",
           render_table(
               ["configuration", "p50 ms", "p99 ms"],
               [["--no-trace", f"{stats['untraced']['p50'] * 1e3:.2f}",
                 f"{stats['untraced']['p99'] * 1e3:.2f}"],
                ["traced (default)", f"{stats['traced']['p50'] * 1e3:.2f}",
                 f"{stats['traced']['p99'] * 1e3:.2f}"],
                ["traced + collector", f"{stats['collector']['p50'] * 1e3:.2f}",
                 f"{stats['collector']['p99'] * 1e3:.2f}"]],
               title=f"tracing overhead over {outcome['num_queries']} HTTP "
                     f"singleton predicts: p99 ratio {ratio:.3f} traced, "
                     f"{collector_ratio:.3f} with the telemetry collector "
                     f"(budget {1 + TRACE_OVERHEAD_BUDGET:.2f})"))

    # Every traced request produced exactly one finished trace.
    counters = outcome["traced_counters"]
    assert counters["traces_finished"] >= outcome["num_queries"]
    assert counters["traces_active"] == 0
    # The acceptance budget is <5% on p99; a loaded 1-core CI runner adds
    # scheduler noise far above the span cost itself, so the *hard* gate is
    # loose (2x or +5ms absolute) and the recorded table carries the real
    # ratio against the 5% budget for the curious.
    assert stats["traced"]["p99"] <= max(
        2.0 * stats["untraced"]["p99"],
        stats["untraced"]["p99"] + 0.005), (
        f"tracing p99 overhead blew even the loose gate: "
        f"{stats['traced']['p99'] * 1e3:.2f}ms traced vs "
        f"{stats['untraced']['p99'] * 1e3:.2f}ms untraced (ratio {ratio:.2f})")
    # The telemetry collector rides on the same budget: it scrapes its own
    # exposition page in-process off the request path, so its plane is held
    # to the identical loose gate against the untraced baseline.
    collector_stats = outcome["collector_stats"]
    assert collector_stats is not None and collector_stats["scrapes"] >= 1, \
        collector_stats
    assert collector_stats["errors"] == 0, collector_stats
    assert stats["collector"]["p99"] <= max(
        2.0 * stats["untraced"]["p99"],
        stats["untraced"]["p99"] + 0.005), (
        f"collector p99 overhead blew the loose gate: "
        f"{stats['collector']['p99'] * 1e3:.2f}ms vs "
        f"{stats['untraced']['p99'] * 1e3:.2f}ms untraced "
        f"(ratio {collector_ratio:.2f})")


# --------------------------------------------------------------------------- #
# fleet failover: kill one of N replicas under load
# --------------------------------------------------------------------------- #
FLEET_TTL = 1.0


class _FleetReplica:
    """One in-process serving replica joined to a shared fleet directory."""

    def __init__(self, registry, graph, fleet_dir, rid):
        self.service = InferenceService(registry, graph=graph)
        self.service.prewarm("bench@latest")
        self.server = serve_http(self.service, port=0)
        self.port = self.server.server_address[1]
        self.member = FleetMember(fleet_dir, rid, "127.0.0.1", self.port,
                                  ttl=FLEET_TTL)
        self.member.join(self.service.loaded_digests())
        self.member.start()
        self.server.fleet = FleetRouter(self.member)
        self.watcher = watch_models(
            self.service, ["bench@latest"], interval=0.2,
            on_flip=lambda *_: self.member.advertise(
                self.service.loaded_digests()))
        self.watcher.start()
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()

    def kill(self):
        """SIGKILL stand-in: stop serving and heartbeating; release nothing,
        so the lease must *expire* out of the survivors' routing view."""
        self.watcher.close()
        self.member._stop.set()
        self.server.shutdown()
        self.server.server_close()
        self.service.close()

    def close(self):
        self.watcher.close()
        self.member.leave()
        self.server.shutdown()
        self.server.server_close()
        self.service.close()


class _FleetClient:
    """A load-balancing client: round-robins over the replicas it believes
    are alive, drops a backend on its first connection failure (the error is
    counted — that is the bounded in-flight loss) and retries elsewhere."""

    def __init__(self, ports):
        self.ports = list(ports)
        self.turn = 0
        self.errors = 0

    def predict(self, nodes):
        import urllib.error
        import urllib.request

        payload = json.dumps({"model": "bench", "nodes": nodes}).encode()
        while True:
            if not self.ports:
                raise RuntimeError("every replica is gone")
            port = self.ports[self.turn % len(self.ports)]
            self.turn += 1
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/predict", data=payload,
                headers={"Content-Type": "application/json"})
            start = time.perf_counter()
            try:
                with urllib.request.urlopen(request, timeout=10.0) as resp:
                    body = json.loads(resp.read())
                return time.perf_counter() - start, body
            except urllib.error.HTTPError:
                raise  # a served 4xx/5xx is a hard failure, not a dead socket
            except (urllib.error.URLError, OSError):
                self.errors += 1
                self.ports.remove(port)


def _drive(clients, offline, rng, num_nodes, requests_per_client):
    """All clients issue requests concurrently; every answer is checked
    bitwise against ``offline`` before its latency counts."""
    latencies = [[] for _ in clients]
    failures = []

    def _loop(index, client, node_lists):
        try:
            for nodes in node_lists:
                seconds, body = client.predict(nodes)
                if not np.array_equal(np.asarray(body["scores"]),
                                      offline[nodes]):
                    raise AssertionError(f"served scores diverged on {nodes}")
                latencies[index].append(seconds)
        except Exception as exc:  # noqa: BLE001 - surfaced to the main thread
            failures.append(exc)

    threads = []
    for index, client in enumerate(clients):
        node_lists = [rng.integers(0, offline.shape[0], size=3).tolist()
                      for _ in range(requests_per_client)]
        thread = threading.Thread(target=_loop,
                                  args=(index, client, node_lists))
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]
    return [seconds for per_client in latencies for seconds in per_client]


def _p99(latencies):
    return float(np.percentile(np.asarray(latencies), 99))


def _run_fleet_failover(settings, root):
    registry, graph, model = _publish_model(settings, root / "registry")
    offline = model.decision_scores(graph, mode="private")
    fleet_dir = root / "fleet"
    replicas = [_FleetReplica(registry, graph, fleet_dir, f"r{i}")
                for i in range(3)]
    digest = registry.resolve("bench@latest").digest
    view = FleetView(fleet_dir)
    victim = next(r for r in replicas
                  if r.member.replica_id == view.owner(digest).replica_id)
    survivors = [r for r in replicas if r is not victim]

    rng = np.random.default_rng(settings.seed)
    per_client = 12 if is_smoke() else 40
    clients = [_FleetClient([r.port for r in replicas]) for _ in range(3)]
    outcome = {}
    try:
        # Phase 1: steady state, all three replicas alive.
        steady = _drive(clients, offline, rng, graph.num_nodes, per_client)
        assert sum(c.errors for c in clients) == 0

        # Phase 2: SIGKILL the digest's owner mid-traffic.
        kill_at = time.monotonic()
        victim.kill()
        during = _drive(clients, offline, rng, graph.num_nodes, per_client)
        event_errors = sum(c.errors for c in clients)
        # Bounded loss: each client loses at most its one in-flight request
        # to the dead socket, then drops the backend and retries elsewhere.
        assert event_errors <= len(clients)

        # The dead lease must expire out of the routing view within one TTL
        # (plus scheduling margin), after which the survivors' ring owns
        # every key.
        while victim.member.replica_id in {
                r.replica_id for r in view.route(digest)}:
            if time.monotonic() - kill_at > 4.0 * FLEET_TTL:
                raise AssertionError("dead lease never left the routing view")
            time.sleep(0.05)
        absorb_seconds = time.monotonic() - kill_at

        # Phase 3: post-failover steady state over the two survivors.
        post = _drive(clients, offline, rng, graph.num_nodes, per_client)
        assert sum(c.errors for c in clients) == event_errors  # no new loss

        # Phase 4: flip @latest mid-run; zero 5xx, traffic follows the flip.
        other = GCON(default_gcon_config(0.5, 1.0 / max(graph.num_edges, 1),
                                         settings))
        other.fit(graph, seed=settings.seed + 1)
        registry.publish(other, "bench", inference_mode="private",
                         training={"dataset": settings.datasets[0],
                                   "scale": settings.scale,
                                   "graph_seed": settings.seed})
        offline_two = other.decision_scores(graph, mode="private")
        flip_deadline = time.monotonic() + 15.0
        while any(r.watcher.flips == 0 for r in survivors):
            if time.monotonic() > flip_deadline:
                raise AssertionError("registry watcher never saw the flip")
            time.sleep(0.05)
        flip = _drive(clients, offline_two, rng, graph.num_nodes, per_client)
        assert sum(c.errors for c in clients) == event_errors  # zero 5xx
    finally:
        for replica in replicas:
            try:
                replica.close()
            except Exception:  # noqa: BLE001 - the victim is already dead
                pass

    outcome.update(
        steady=steady, during=during, post=post, flip=flip,
        event_errors=event_errors, absorb_seconds=absorb_seconds,
        failovers=sum(r.server.fleet_stats["failover_local"]
                      for r in survivors),
        proxied=sum(r.server.fleet_stats["proxied"] for r in replicas))
    return outcome


def test_fleet_kill_one_of_three_under_load(benchmark, tmp_path):
    settings = bench_settings(datasets=("cora_ml",))
    outcome = benchmark.pedantic(_run_fleet_failover,
                                 args=(settings, tmp_path),
                                 rounds=1, iterations=1)

    rows = []
    for phase, label in (("steady", "steady state (3 replicas)"),
                         ("during", "kill window (dead lease still live)"),
                         ("post", "post-failover (2 replicas)"),
                         ("flip", "@latest flipped mid-run")):
        latencies = outcome[phase]
        rows.append([label, str(len(latencies)),
                     f"{np.median(latencies) * 1e3:.1f}",
                     f"{_p99(latencies) * 1e3:.1f}"])
    record("serving_fleet_failover",
           render_table(
               ["phase", "requests", "p50 ms", "p99 ms"], rows,
               title=f"kill-one-of-3 fleet failover "
                     f"(TTL {FLEET_TTL:.0f}s; dead lease absorbed in "
                     f"{outcome['absorb_seconds']:.2f}s; "
                     f"{outcome['event_errors']} dropped request(s); "
                     f"every answer bitwise equal to offline scores)"))

    # The acceptance claims: the dead replica's keys are absorbed within one
    # lease TTL (generous scheduling margin for a loaded CI runner), loss is
    # bounded to the clients' in-flight requests, and the post-failover p99
    # stays within 2x the steady state (floored to keep micro-latency noise
    # on a quiet laptop from flaking the 2x ratio).
    assert outcome["absorb_seconds"] <= 2.0 * FLEET_TTL
    assert outcome["event_errors"] <= 3
    steady_p99 = max(_p99(outcome["steady"]), 0.010)
    assert _p99(outcome["post"]) <= 2.0 * steady_p99, (
        f"post-failover p99 {_p99(outcome['post']):.4f}s exceeds 2x "
        f"steady-state {steady_p99:.4f}s")
