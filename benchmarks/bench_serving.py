"""Serving-path throughput and latency: micro-batching versus per-request.

The serving subsystem's pitch is that coalescing queries into one stacked
``aggregated @ theta`` matmul per model amortises the per-call overhead that
dominates single-row inference.  This benchmark publishes one GCON release
into a temporary registry, warms the propagated-feature cache, and measures
the *data plane only* (no HTTP, no threads — deterministic on a 1-core CI
runner):

* **per-request**: N single-node queries, each its own matmul — the
  no-batching baseline;
* **micro-batched**: the same N queries coalesced into batches of B through
  the exact `MicroBatcher.run_once` path the server uses.

Two assertions always run: (1) every configuration returns scores bitwise
identical to offline ``GCON.decision_scores``; (2) on a warm cache,
micro-batching beats one-matmul-per-request throughput.  The second claim is
about call overhead, not parallelism, so it holds on a single core and is
asserted in smoke mode too.

``REPRO_SMOKE=1`` (or ``pytest --smoke``) shrinks the model and query count.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from benchmarks.conftest import bench_settings, is_smoke, record
from repro.core.model import GCON
from repro.evaluation.figures import default_gcon_config
from repro.evaluation.reporting import render_table
from repro.graphs.datasets import load_dataset
from repro.serving import InferenceService, MicroBatcher, ModelRegistry

BATCH_SIZES = (4, 16, 64, 256)
REPETITIONS = 3


def _publish_model(settings, registry_root):
    graph = load_dataset(settings.datasets[0], scale=settings.scale,
                         seed=settings.seed)
    delta = 1.0 / max(graph.num_edges, 1)
    model = GCON(default_gcon_config(2.0, delta, settings))
    model.fit(graph, seed=settings.seed)
    registry = ModelRegistry(registry_root)
    registry.publish(model, "bench", inference_mode="private",
                     training={"dataset": settings.datasets[0],
                               "scale": settings.scale,
                               "graph_seed": settings.seed})
    return registry, graph, model


def _per_request_seconds(service, key, nodes) -> float:
    best = float("inf")
    for _ in range(REPETITIONS):
        start = time.perf_counter()
        for node in nodes:
            service.batcher.submit(key, [node])
            service.batcher.run_once()
        best = min(best, time.perf_counter() - start)
    return best


def _batched_seconds(service, key, nodes, batch_size) -> float:
    best = float("inf")
    for _ in range(REPETITIONS):
        start = time.perf_counter()
        for offset in range(0, len(nodes), batch_size):
            for node in nodes[offset:offset + batch_size]:
                service.batcher.submit(key, [node])
            service.batcher.run_once()
        best = min(best, time.perf_counter() - start)
    return best


def _run(settings, registry_root):
    registry, graph, model = _publish_model(settings, registry_root)
    service = InferenceService(registry, graph=graph)
    num_queries = 256 if is_smoke() else 2048
    rng = np.random.default_rng(settings.seed)
    nodes = rng.integers(0, graph.num_nodes, size=num_queries).tolist()

    offline = model.decision_scores(graph, mode="private")
    key, _session = service._session("bench@latest", None)  # warm the cache

    # Correctness: a served batch is bitwise identical to offline scores.
    probe = nodes[:32]
    assert np.array_equal(service.predict_scores("bench", probe), offline[probe])
    single = service.predict_scores("bench", [nodes[0]])
    assert np.array_equal(single, offline[[nodes[0]]])

    per_request = _per_request_seconds(service, key, nodes)
    batched = {size: _batched_seconds(service, key, nodes, size)
               for size in BATCH_SIZES}
    return {
        "num_queries": num_queries,
        "per_request_seconds": per_request,
        "batched_seconds": batched,
        "stats": service.stats(),
    }


def test_serving_microbatch_throughput(benchmark, tmp_path):
    settings = bench_settings(datasets=("cora_ml",))
    outcome = benchmark.pedantic(_run, args=(settings, tmp_path / "registry"),
                                 rounds=1, iterations=1)

    queries = outcome["num_queries"]
    per_request = outcome["per_request_seconds"]
    rows = [["per-request (batch=1)", f"{per_request * 1e3:.1f}",
             f"{queries / per_request:,.0f}", "-"]]
    for size, seconds in outcome["batched_seconds"].items():
        rows.append([f"micro-batch B={size}", f"{seconds * 1e3:.1f}",
                     f"{queries / seconds:,.0f}",
                     f"{per_request / seconds:.2f}x"])
    record("serving_microbatch",
           render_table(
               ["configuration", f"total ms ({queries} queries)",
                "queries/s", "speedup"],
               rows, title="warm-cache serving throughput vs micro-batch size"))

    # The acceptance claim: on a warm cache, micro-batching beats
    # one-matmul-per-request throughput.  This is call-overhead amortisation,
    # not parallelism, so no core-count gate — but only the best batched
    # configuration is pinned, with headroom for scheduler noise.
    best_batched = min(outcome["batched_seconds"].values())
    assert best_batched < per_request, (
        f"micro-batching ({best_batched:.4f}s) did not beat per-request "
        f"({per_request:.4f}s) on a warm cache")

    # The feature cache did its job: propagation ran once, not per query.
    cache = outcome["stats"]["feature_cache"]
    assert cache["feature_misses"] == 1


# --------------------------------------------------------------------------- #
# two-model contention: per-model queues kill head-of-line blocking
# --------------------------------------------------------------------------- #
def _publish_two_models(settings, registry_root):
    graph = load_dataset(settings.datasets[0], scale=settings.scale,
                         seed=settings.seed)
    delta = 1.0 / max(graph.num_edges, 1)
    registry = ModelRegistry(registry_root)
    training = {"dataset": settings.datasets[0], "scale": settings.scale,
                "graph_seed": settings.seed}
    models = {}
    for name, epsilon in (("alpha", 2.0), ("beta", 0.5)):
        model = GCON(default_gcon_config(epsilon, delta, settings))
        model.fit(graph, seed=settings.seed)
        registry.publish(model, name, inference_mode="private",
                         training=training)
        models[name] = model
    return registry, graph, models


def _measure_b_latencies(plane, beta_key, nodes, offline, spacing):
    """Singleton beta queries through ``plane``; per-query wall latency."""
    latencies = []
    for node in nodes:
        start = time.perf_counter()
        scores = plane.predict_scores(beta_key, [node], timeout=30.0)
        latencies.append(time.perf_counter() - start)
        assert np.array_equal(scores, offline[[node]]), \
            "served beta scores != offline decision_scores"
        time.sleep(spacing)
    return latencies


def _saturate(plane, alpha_key, hammer_nodes, stop):
    while not stop.is_set():
        plane.predict_scores(alpha_key, hammer_nodes, timeout=30.0)


def _contention_phase(plane, alpha_key, beta_key, nodes, offline, *,
                      spacing, hammer_nodes, hammer_threads=2):
    """Solo then contended beta latencies against one started data plane."""
    solo = _measure_b_latencies(plane, beta_key, nodes, offline, spacing)
    stop = threading.Event()
    hammers = [threading.Thread(target=_saturate,
                                args=(plane, alpha_key, hammer_nodes, stop),
                                daemon=True)
               for _ in range(hammer_threads)]
    for thread in hammers:
        thread.start()
    time.sleep(spacing * 5)  # let the alpha load actually build up
    try:
        contended = _measure_b_latencies(plane, beta_key, nodes, offline,
                                         spacing)
    finally:
        stop.set()
        for thread in hammers:
            thread.join()
    return solo, contended


def _run_contention(settings, registry_root):
    registry, graph, models = _publish_two_models(settings, registry_root)
    service = InferenceService(registry, graph=graph,
                               max_batch_size=64, max_latency=0.002)
    alpha_key, _ = service._session("alpha", None)
    beta_key, _ = service._session("beta", None)
    offline_beta = models["beta"].decision_scores(graph, mode="private")

    # "Model A is saturated" is emulated by inflating alpha's compute cost
    # (time.sleep releases the GIL, so the contrast survives a 1-core
    # runner): what matters is the *queueing* structure, and the real
    # stacked matmul still runs so every answer stays bitwise checked.
    alpha_delay = 0.015 if is_smoke() else 0.03
    num_queries = 20 if is_smoke() else 60
    spacing = 0.001
    real_compute = service._score_rows

    def contended_compute(model_key, nodes):
        if model_key == alpha_key:
            time.sleep(alpha_delay)
        return real_compute(model_key, nodes)

    rng = np.random.default_rng(settings.seed)
    nodes = rng.integers(0, graph.num_nodes, size=num_queries).tolist()
    hammer_nodes = rng.integers(0, graph.num_nodes, size=16).tolist()

    # New data plane: the service's own per-model router (sessions are warm,
    # so queues created from here on pick up the wrapped compute).
    service.batcher._compute = contended_compute
    with service.batcher as router:
        router_solo, router_contended = _contention_phase(
            router, alpha_key, beta_key, nodes, offline_beta,
            spacing=spacing, hammer_nodes=hammer_nodes)
    stats = service.stats()

    # Reference data plane: the PR 4 single shared queue, same compute —
    # beta's tickets share alpha's forming batch, deadline and dispatch.
    with MicroBatcher(contended_compute, max_batch_size=64,
                      max_latency=0.002) as legacy:
        legacy_solo, legacy_contended = _contention_phase(
            legacy, alpha_key, beta_key, nodes, offline_beta,
            spacing=spacing, hammer_nodes=hammer_nodes)

    def summary(latencies):
        return {"p50": float(np.percentile(latencies, 50)),
                "p99": float(np.percentile(latencies, 99))}

    return {
        "num_queries": num_queries,
        "alpha_delay": alpha_delay,
        "router": {"solo": summary(router_solo),
                   "contended": summary(router_contended)},
        "legacy": {"solo": summary(legacy_solo),
                   "contended": summary(legacy_contended)},
        "stats": stats,
    }


def test_two_model_contention_no_head_of_line_blocking(benchmark, tmp_path):
    settings = bench_settings(datasets=("cora_ml",))
    outcome = benchmark.pedantic(_run_contention,
                                 args=(settings, tmp_path / "registry"),
                                 rounds=1, iterations=1)

    rows = []
    for plane in ("router", "legacy"):
        for phase in ("solo", "contended"):
            entry = outcome[plane][phase]
            rows.append([f"{plane} / model B {phase}",
                         f"{entry['p50'] * 1e3:.2f}",
                         f"{entry['p99'] * 1e3:.2f}"])
    record("serving_contention",
           render_table(
               ["configuration", "p50 ms", "p99 ms"],
               rows,
               title=f"model-B latency under model-A saturation "
                     f"({outcome['num_queries']} queries, alpha matmul "
                     f"+{outcome['alpha_delay'] * 1e3:.0f}ms)"))

    router_solo = outcome["router"]["solo"]["p99"]
    router_contended = outcome["router"]["contended"]["p99"]
    legacy_contended = outcome["legacy"]["contended"]["p99"]

    # The head-of-line claim, structurally: on the shared queue, beta's p99
    # absorbs at least one alpha matmul; on per-model queues it does not.
    assert legacy_contended >= outcome["alpha_delay"], (
        f"legacy plane should show head-of-line blocking, got "
        f"{legacy_contended * 1e3:.2f}ms p99")
    assert router_contended < legacy_contended * 0.5, (
        f"per-model routing did not beat the shared queue: "
        f"{router_contended * 1e3:.2f}ms vs {legacy_contended * 1e3:.2f}ms p99")
    # And beta stays flat: contended p99 within generous noise of solo
    # (scheduler jitter on a loaded 1-core runner, never an alpha matmul).
    assert router_contended <= max(4 * router_solo,
                                   router_solo + 0.020), (
        f"model-B p99 moved under model-A load: solo "
        f"{router_solo * 1e3:.2f}ms, contended {router_contended * 1e3:.2f}ms")

    # /stats carries the per-model histograms the operator would read.
    labels = [label for label in outcome["stats"]["models"]
              if label.startswith("beta@")]
    assert labels, "per-model stats must name the beta model"
    latency = outcome["stats"]["models"][labels[0]]["latency_ms"]
    assert latency["count"] >= 2 * outcome["num_queries"]
    assert {"p50", "p95", "p99"} <= set(latency)
