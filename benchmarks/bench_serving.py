"""Serving-path throughput and latency: micro-batching versus per-request.

The serving subsystem's pitch is that coalescing queries into one stacked
``aggregated @ theta`` matmul per model amortises the per-call overhead that
dominates single-row inference.  This benchmark publishes one GCON release
into a temporary registry, warms the propagated-feature cache, and measures
the *data plane only* (no HTTP, no threads — deterministic on a 1-core CI
runner):

* **per-request**: N single-node queries, each its own matmul — the
  no-batching baseline;
* **micro-batched**: the same N queries coalesced into batches of B through
  the exact `MicroBatcher.run_once` path the server uses.

Two assertions always run: (1) every configuration returns scores bitwise
identical to offline ``GCON.decision_scores``; (2) on a warm cache,
micro-batching beats one-matmul-per-request throughput.  The second claim is
about call overhead, not parallelism, so it holds on a single core and is
asserted in smoke mode too.

``REPRO_SMOKE=1`` (or ``pytest --smoke``) shrinks the model and query count.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import bench_settings, is_smoke, record
from repro.core.model import GCON
from repro.evaluation.figures import default_gcon_config
from repro.evaluation.reporting import render_table
from repro.graphs.datasets import load_dataset
from repro.serving import InferenceService, ModelRegistry

BATCH_SIZES = (4, 16, 64, 256)
REPETITIONS = 3


def _publish_model(settings, registry_root):
    graph = load_dataset(settings.datasets[0], scale=settings.scale,
                         seed=settings.seed)
    delta = 1.0 / max(graph.num_edges, 1)
    model = GCON(default_gcon_config(2.0, delta, settings))
    model.fit(graph, seed=settings.seed)
    registry = ModelRegistry(registry_root)
    registry.publish(model, "bench", inference_mode="private",
                     training={"dataset": settings.datasets[0],
                               "scale": settings.scale,
                               "graph_seed": settings.seed})
    return registry, graph, model


def _per_request_seconds(service, key, nodes) -> float:
    best = float("inf")
    for _ in range(REPETITIONS):
        start = time.perf_counter()
        for node in nodes:
            service.batcher.submit(key, [node])
            service.batcher.run_once()
        best = min(best, time.perf_counter() - start)
    return best


def _batched_seconds(service, key, nodes, batch_size) -> float:
    best = float("inf")
    for _ in range(REPETITIONS):
        start = time.perf_counter()
        for offset in range(0, len(nodes), batch_size):
            for node in nodes[offset:offset + batch_size]:
                service.batcher.submit(key, [node])
            service.batcher.run_once()
        best = min(best, time.perf_counter() - start)
    return best


def _run(settings, registry_root):
    registry, graph, model = _publish_model(settings, registry_root)
    service = InferenceService(registry, graph=graph)
    num_queries = 256 if is_smoke() else 2048
    rng = np.random.default_rng(settings.seed)
    nodes = rng.integers(0, graph.num_nodes, size=num_queries).tolist()

    offline = model.decision_scores(graph, mode="private")
    key, _session = service._session("bench@latest", None)  # warm the cache

    # Correctness: a served batch is bitwise identical to offline scores.
    probe = nodes[:32]
    assert np.array_equal(service.predict_scores("bench", probe), offline[probe])
    single = service.predict_scores("bench", [nodes[0]])
    assert np.array_equal(single, offline[[nodes[0]]])

    per_request = _per_request_seconds(service, key, nodes)
    batched = {size: _batched_seconds(service, key, nodes, size)
               for size in BATCH_SIZES}
    return {
        "num_queries": num_queries,
        "per_request_seconds": per_request,
        "batched_seconds": batched,
        "stats": service.stats(),
    }


def test_serving_microbatch_throughput(benchmark, tmp_path):
    settings = bench_settings(datasets=("cora_ml",))
    outcome = benchmark.pedantic(_run, args=(settings, tmp_path / "registry"),
                                 rounds=1, iterations=1)

    queries = outcome["num_queries"]
    per_request = outcome["per_request_seconds"]
    rows = [["per-request (batch=1)", f"{per_request * 1e3:.1f}",
             f"{queries / per_request:,.0f}", "-"]]
    for size, seconds in outcome["batched_seconds"].items():
        rows.append([f"micro-batch B={size}", f"{seconds * 1e3:.1f}",
                     f"{queries / seconds:,.0f}",
                     f"{per_request / seconds:.2f}x"])
    record("serving_microbatch",
           render_table(
               ["configuration", f"total ms ({queries} queries)",
                "queries/s", "speedup"],
               rows, title="warm-cache serving throughput vs micro-batch size"))

    # The acceptance claim: on a warm cache, micro-batching beats
    # one-matmul-per-request throughput.  This is call-overhead amortisation,
    # not parallelism, so no core-count gate — but only the best batched
    # configuration is pinned, with headroom for scheduler noise.
    best_batched = min(outcome["batched_seconds"].values())
    assert best_batched < per_request, (
        f"micro-batching ({best_batched:.4f}s) did not beat per-request "
        f"({per_request:.4f}s) on a warm cache")

    # The feature cache did its job: propagation ran once, not per query.
    cache = outcome["stats"]["feature_cache"]
    assert cache["feature_misses"] == 1
