"""Incremental re-propagation versus full recompute after an edge delta.

The versioned-graph subsystem's pitch: after a small edge-delta batch, only
the rows within the propagation radius of the touched endpoints need to be
recomputed — every other row of the aggregated feature matrix is reused
bitwise from the previous epoch.  This benchmark applies one sampled delta
to a dataset graph and times

* **full**: :func:`repro.core.inference.inference_features` from scratch on
  the new graph — what every epoch advance used to cost;
* **incremental**: :func:`repro.core.propagation.incremental_inference_features`
  seeded with the delta endpoints — what an epoch advance costs now.

Two assertions always run: (1) in *every* configuration the incremental
result is bitwise identical to the full recompute — correctness is never
traded for speed; (2) in the private (single-hop) configuration, where the
touched set is exactly the delta endpoints, the incremental path wins.
Public finite-step configurations are reported with their touched-row
counts; their advantage shrinks as the BFS halo approaches the whole graph.

``REPRO_SMOKE=1`` (or ``pytest --smoke``) shrinks the graph; CI runs that.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import bench_settings, record
from repro.core.inference import inference_features
from repro.core.propagation import Propagator, incremental_inference_features
from repro.evaluation.reporting import render_table
from repro.graphs.datasets import load_dataset
from repro.serving import GraphStore

ALPHA = 0.8
INFERENCE_ALPHA = 0.6
DELTA_EDGES = (2, 1)  # inserts, deletes — a realistic small live batch
CONFIGURATIONS = (
    ("private m=[0,2,4]", "private", [0, 2, 4]),
    ("public  m=[2]", "public", [2]),
    ("public  m=[4]", "public", [4]),
)


def _timed(fn, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _run(settings):
    graph = load_dataset(settings.datasets[0], scale=settings.scale,
                         seed=settings.seed)
    rng = np.random.default_rng(settings.seed)
    encoded = rng.standard_normal((graph.num_nodes, 16))
    encoded /= np.maximum(np.linalg.norm(encoded, axis=1, keepdims=True),
                          1e-12)

    store = GraphStore(graph)
    delta = store.sample_delta(*DELTA_EDGES, seed=settings.seed)
    entry = store.apply(delta)
    _epoch, new_graph = store.current()
    endpoints = entry["endpoints"]
    repeats = max(settings.repeats, 3)

    rows = []
    for label, mode, steps in CONFIGURATIONS:
        inference_alpha = INFERENCE_ALPHA if mode == "private" else None
        old = inference_features(Propagator(graph.adjacency, ALPHA), encoded,
                                 steps, mode=mode,
                                 inference_alpha=inference_alpha)
        propagator = Propagator(new_graph.adjacency, ALPHA)
        full, full_seconds = _timed(
            lambda: inference_features(propagator, encoded, steps, mode=mode,
                                       inference_alpha=inference_alpha),
            repeats)
        (incremental, touched), incremental_seconds = _timed(
            lambda: incremental_inference_features(
                propagator, encoded, old, endpoints, steps, mode=mode,
                inference_alpha=inference_alpha),
            repeats)
        assert np.array_equal(incremental, full), (
            f"incremental != full recompute in {label}")
        rows.append({
            "label": label, "mode": mode,
            "touched": int(touched.size), "nodes": graph.num_nodes,
            "full_seconds": full_seconds,
            "incremental_seconds": incremental_seconds,
        })
    return {"nodes": graph.num_nodes, "edges": new_graph.num_edges,
            "delta": delta.size, "rows": rows}


def test_graph_update_incremental_vs_full(benchmark):
    settings = bench_settings(datasets=("cora_ml",))
    outcome = benchmark.pedantic(_run, args=(settings,),
                                 rounds=1, iterations=1)

    table = [[row["label"], f"{row['touched']}/{row['nodes']}",
              f"{row['full_seconds'] * 1e3:.2f}",
              f"{row['incremental_seconds'] * 1e3:.2f}",
              f"{row['full_seconds'] / row['incremental_seconds']:.2f}x"]
             for row in outcome["rows"]]
    record("graph_update_incremental",
           render_table(
               ["configuration", "rows recomputed", "full ms",
                "incremental ms", "speedup"],
               table,
               title=f"epoch advance on {outcome['nodes']} nodes / "
                     f"{outcome['edges']} edges "
                     f"({outcome['delta']}-edge delta)"))

    # The pinned claim: with a small touched set (private single-hop — the
    # delta endpoints only), incremental re-propagation beats the full
    # recompute it is bitwise-equal to.  Timing is only meaningful once the
    # full matmul costs more than the row-slicing overhead, so the smoke
    # grid (a few hundred nodes, sub-millisecond either way) checks
    # correctness and the touched-set bound but not the race.
    private = next(row for row in outcome["rows"]
                   if row["mode"] == "private")
    assert private["touched"] < private["nodes"]
    if outcome["nodes"] < 500:
        return
    assert private["incremental_seconds"] < private["full_seconds"], (
        f"incremental ({private['incremental_seconds']:.4f}s) did not beat "
        f"full recompute ({private['full_seconds']:.4f}s) with "
        f"{private['touched']}/{private['nodes']} rows touched")
