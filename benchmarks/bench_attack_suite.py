"""Extension: the full He-et-al. similarity attack suite against every method.

``bench_attack_auc`` tracks a single similarity metric against GCON and the
non-private GCN across privacy budgets; this benchmark instead lets the
attacker pick the *strongest* of the eight similarity metrics (the realistic
threat model) and runs it against every method of Figure 1 at one privacy
budget.

Expected shape: the non-private GCN is clearly attackable (AUC well above
0.5); every edge-DP method pushes the best-metric AUC towards chance, and the
graph-free MLP sits at chance by construction.
"""

from __future__ import annotations

from benchmarks.conftest import bench_settings, record
from repro.attacks import sample_edge_candidates
from repro.attacks.similarity import strongest_attack_auc
from repro.evaluation.figures import build_method_registry
from repro.evaluation.reporting import render_table
from repro.graphs.datasets import load_dataset

EPSILON = 1.0
NUM_PAIRS = 300


def _decision_scores(estimator, graph):
    try:
        return estimator.decision_scores(graph, mode="private")
    except TypeError:
        return estimator.decision_scores(graph)


def _run(settings):
    graph = load_dataset("cora_ml", scale=settings.scale, seed=settings.seed)
    delta = 1.0 / max(graph.num_edges, 1)
    pairs, labels = sample_edge_candidates(graph, num_pairs=NUM_PAIRS, rng=settings.seed)
    registry = build_method_registry(settings)
    rows = []
    for name, factory in registry.items():
        estimator = factory(EPSILON, delta, settings.seed)
        estimator.fit(graph, seed=settings.seed)
        metric, auc = strongest_attack_auc(_decision_scores(estimator, graph), pairs, labels)
        utility = estimator.score(graph)
        rows.append([name, metric, f"{auc:.4f}", f"{utility:.4f}"])
    return rows


def test_attack_suite(benchmark):
    settings = bench_settings(datasets=("cora_ml",))
    rows = benchmark.pedantic(_run, args=(settings,), rounds=1, iterations=1)
    record("attack_suite",
           render_table(["method", "best metric", "attack AUC", "test micro F1"], rows,
                        title=f"Strongest link-stealing attack at eps={EPSILON} "
                              f"(scale={settings.scale:g}, {NUM_PAIRS} pairs)"))
    aucs = {row[0]: float(row[2]) for row in rows}
    # The non-private GCN must be the most attackable model.
    assert aucs["GCN (non-DP)"] >= max(v for k, v in aucs.items() if k != "GCN (non-DP)") - 0.05
    # GCON's private-inference outputs must leak less than the non-private GCN.
    assert aucs["GCON"] <= aucs["GCN (non-DP)"]
