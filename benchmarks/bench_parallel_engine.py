"""The parallel sweep engine versus the legacy serial runner.

An epsilon sweep is the paper's canonical workload (Figure 1 is one), and the
legacy serial runner recomputed the entire GCON pipeline -- public encoder,
propagation, calibration, solve -- for every ``(epsilon, repeat)`` cell even
though only the calibration and the solve depend on epsilon.  The runtime
engine (``repro.runtime``) fixes that twice over:

* the ``PropagationCache`` memoizes the normalised transition, the PPR LU
  factorisation and the propagated features per graph, and
* cells sharing a ``(method, dataset, repeat)`` group share their seed, so a
  worker reuses the whole epsilon-independent preparation across the sweep,
* groups fan out over ``--jobs`` worker processes.

This benchmark runs the same GCON epsilon sweep both ways, checks that the
engine's numbers do not depend on the schedule (``jobs=1`` versus ``jobs=4``
bitwise), and records the wall-clock speedup, which must be at least 2x in
the default configuration (and typically lands far above it: the sweep has
|epsilons| times less preparation work plus whatever multi-core fan-out the
host offers).
"""

from __future__ import annotations

import time

from benchmarks.conftest import bench_settings, is_smoke, record
from repro.core.propagation import propagation_cache
from repro.evaluation.figures import build_method_registry
from repro.evaluation.reporting import render_table
from repro.evaluation.runner import ExperimentRunner, aggregate_results
from repro.graphs.datasets import load_dataset
from repro.runtime.cells import expand_cells
from repro.runtime.engine import ParallelExperimentRunner
from repro.runtime.workers import FigureCellRunner, clear_worker_memos

JOBS = 4
REPEATS = 2


def _legacy_serial(settings):
    """The pre-engine behaviour: serial nested loops, no caching of any kind."""
    registry = build_method_registry(settings)
    runner = ExperimentRunner(repeats=settings.repeats, seed=settings.seed)
    runner.register("GCON", registry["GCON"])
    graphs = {
        name: load_dataset(name, scale=settings.scale, seed=settings.seed)
        for name in settings.datasets
    }
    with propagation_cache(None):
        return runner.run(graphs, list(settings.epsilons))


def _engine(settings, jobs):
    cells = expand_cells(["GCON"], settings.datasets, settings.epsilons,
                         settings.repeats, seed=settings.seed)
    clear_worker_memos()
    engine = ParallelExperimentRunner(FigureCellRunner(settings=settings), jobs=jobs)
    return engine.run(cells)


def _run(settings):
    start = time.perf_counter()
    legacy = _legacy_serial(settings)
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = _engine(settings, jobs=JOBS)
    parallel_seconds = time.perf_counter() - start

    serial = _engine(settings, jobs=1)
    return {
        "legacy": legacy,
        "parallel": parallel,
        "serial": serial,
        "legacy_seconds": legacy_seconds,
        "parallel_seconds": parallel_seconds,
    }


def test_parallel_engine_speedup(benchmark):
    settings = bench_settings(datasets=("cora_ml",), repeats=REPEATS)
    outcome = benchmark.pedantic(_run, args=(settings,), rounds=1, iterations=1)

    cells = len(settings.datasets) * len(settings.epsilons) * settings.repeats
    speedup = outcome["legacy_seconds"] / max(outcome["parallel_seconds"], 1e-9)
    rows = [
        ["legacy serial (no cache)", f"{outcome['legacy_seconds']:.2f}", "1.00x"],
        [f"engine --jobs {JOBS} (cached)", f"{outcome['parallel_seconds']:.2f}",
         f"{speedup:.2f}x"],
    ]
    record("parallel_engine",
           render_table(["configuration", "seconds", "speedup"], rows,
                        title=f"GCON epsilon sweep, {cells} cells "
                              f"(scale={settings.scale:g}, repeats={settings.repeats})"))

    # The engine's numbers are schedule-independent: jobs=4 == jobs=1 bitwise.
    serial_agg = aggregate_results(outcome["serial"])
    parallel_agg = aggregate_results(outcome["parallel"])
    assert parallel_agg == serial_agg
    for result in outcome["legacy"] + outcome["parallel"]:
        assert 0.0 <= result.micro_f1 <= 1.0

    # The headline claim: >= 2x wall-clock on the default 4-worker sweep.  The
    # smoke grid has too few epsilon cells to amortise anything, so there we
    # only require the engine not to be slower.
    if is_smoke():
        assert speedup >= 0.8
    else:
        assert speedup >= 2.0
