"""Lemma 2: closed-form sensitivity bounds versus empirical row differences.

Not a figure of the paper, but the quantitative backbone of Theorem 1: for a
grid of restart probabilities alpha and propagation steps m we sample
edge-neighbouring graph pairs, measure the empirical metric
``psi(Z_m) = sum_i ||z'_i - z_i||_2`` (Definition 3) and compare it with the
closed-form bound ``Psi(Z_m) = 2(1-alpha)/alpha (1 - (1-alpha)^m)``.

Expected shape: the bound always holds; it grows as alpha shrinks and as m
grows; the empirical values follow the same ordering (the bound is loose on
sparse graphs because it assumes worst-case degrees, but the monotone trends
match Lemma 2).
"""

from __future__ import annotations

import math
import os

from benchmarks.conftest import bench_settings, record
from repro.core.theory import empirical_aggregate_sensitivity
from repro.evaluation.reporting import render_table
from repro.graphs.datasets import load_dataset

ALPHAS = (0.2, 0.4, 0.6, 0.8)
STEPS_QUICK = (1, 2, 5, math.inf)
STEPS_FULL = (1, 2, 5, 10, 20, math.inf)


def _run(settings, steps, num_pairs):
    graph = load_dataset("cora_ml", scale=settings.scale, seed=settings.seed)
    rows = []
    violations = 0
    for alpha in ALPHAS:
        for m in steps:
            check = empirical_aggregate_sensitivity(
                graph, alpha=alpha, steps=m, num_pairs=num_pairs, kind="either",
                rng=settings.seed,
            )
            violations += 0 if check.holds else 1
            rows.append([
                f"{alpha:g}",
                "inf" if math.isinf(m) else str(int(m)),
                f"{check.theoretical_bound:.4f}",
                f"{check.empirical_max:.4f}",
                f"{check.empirical_mean:.4f}",
                "yes" if check.holds else "NO",
            ])
    return rows, violations


def test_sensitivity_bounds(benchmark):
    full = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
    settings = bench_settings(datasets=("cora_ml",))
    steps = STEPS_FULL if full else STEPS_QUICK
    num_pairs = 20 if full else 6
    rows, violations = benchmark.pedantic(_run, args=(settings, steps, num_pairs),
                                          rounds=1, iterations=1)
    record("sensitivity_bounds",
           render_table(["alpha", "m", "Psi bound", "psi max", "psi mean", "holds"],
                        rows,
                        title=f"Lemma 2 bound vs empirical psi (scale={settings.scale:g}, "
                              f"{num_pairs} neighbouring pairs per cell)"))
    # The closed-form bound must never be violated.
    assert violations == 0
    # The bound is monotone: for fixed m, smaller alpha gives a larger bound.
    bounds = {(row[0], row[1]): float(row[2]) for row in rows}
    for m in ("1", "2"):
        assert bounds[("0.2", m)] > bounds[("0.8", m)]
