"""The vectorised epsilon-sweep solver versus the PR 1 per-cell engine.

The PR 1 engine already amortises the epsilon-independent preparation across
an epsilon axis (per-process memo), but it still runs one cold convex solve
and one full inference pass per cell.  The sweep-solver fast path
(:class:`~repro.core.sweep.SweepSolver`, dispatched through the engine's
group protocol) removes both costs: the budgets are solved against the shared
feature matrix with warm starts, and every model is scored through one shared
inference feature matrix.

This benchmark runs the same 8-epsilon GCON sweep through both paths with the
preparation memo pre-warmed — the preparation is identical work on both
sides, so warming it isolates exactly the per-cell work the fast path
vectorises — and asserts

* the fast path's numbers equal the per-cell reference path's, and
* a >= 2x wall-clock speedup (the acceptance bar; typically it lands ~3-5x).

A third, informational configuration resumes from a content-addressed
:class:`~repro.core.persistence.PreparationStore`: a fresh worker process
(cleared memos) skips encoder training and propagation entirely by loading
the preparation bundle from disk.
"""

from __future__ import annotations

import time

from benchmarks.conftest import bench_settings, is_smoke, record
from repro.evaluation.reporting import render_table
from repro.runtime.cells import expand_cells
from repro.runtime.engine import ParallelExperimentRunner
from repro.runtime.workers import FigureCellRunner, clear_worker_memos

EPSILONS = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0)
REPEATS = 2
TIMING_ROUNDS = 3


def _engine_run(runner, cells):
    return ParallelExperimentRunner(runner).run(cells)


def _timed_best_of(runner, cells, rounds=TIMING_ROUNDS):
    """Best-of-N wall clock with the preparation memo warm (first run warms it)."""
    results = _engine_run(runner, cells)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        results = _engine_run(runner, cells)
        best = min(best, time.perf_counter() - start)
    return results, best


def _run(settings, cells, prep_cache_dir):
    clear_worker_memos()
    per_cell, per_cell_seconds = _timed_best_of(
        FigureCellRunner(settings=settings, fast_sweep=False), cells)

    clear_worker_memos()
    fast, fast_seconds = _timed_best_of(FigureCellRunner(settings=settings), cells)

    # Informational: populate the on-disk preparation store, then measure a
    # *cold* worker (fresh memos) resuming a sweep purely from disk bundles.
    cache = str(prep_cache_dir)
    clear_worker_memos()
    _engine_run(FigureCellRunner(settings=settings, preparation_cache=cache), cells)
    clear_worker_memos()
    start = time.perf_counter()
    resumed = _engine_run(
        FigureCellRunner(settings=settings, preparation_cache=cache), cells)
    resumed_seconds = time.perf_counter() - start

    return {
        "per_cell": per_cell,
        "fast": fast,
        "resumed": resumed,
        "per_cell_seconds": per_cell_seconds,
        "fast_seconds": fast_seconds,
        "resumed_seconds": resumed_seconds,
    }


def test_sweep_solver_speedup(benchmark, tmp_path):
    # gtol=1e-8: the equality assertion below compares micro-F1 at 1e-10
    # (argmax-identical); a tight solver tolerance on BOTH paths keeps the
    # warm-start-vs-cold parameter gap far below any argmax decision margin,
    # so the comparison stays deterministic across BLAS builds.
    settings = bench_settings(datasets=("cora_ml",), repeats=REPEATS,
                              epsilons=EPSILONS, extra_gcon={"gtol": 1e-8})
    cells = expand_cells(["GCON"], settings.datasets, settings.epsilons,
                         settings.repeats, seed=settings.seed)
    outcome = benchmark.pedantic(_run, args=(settings, cells, tmp_path / "prep"),
                                 rounds=1, iterations=1)

    speedup = outcome["per_cell_seconds"] / max(outcome["fast_seconds"], 1e-9)
    rows = [
        ["PR 1 per-cell engine", f"{outcome['per_cell_seconds']:.3f}", "1.00x"],
        ["sweep solver (warm starts)", f"{outcome['fast_seconds']:.3f}",
         f"{speedup:.2f}x"],
        ["cold worker + preparation store",
         f"{outcome['resumed_seconds']:.3f}", "(informational)"],
    ]
    record("sweep_solver",
           render_table(["configuration", "seconds", "speedup"], rows,
                        title=f"GCON epsilon sweep, {len(cells)} cells "
                              f"(scale={settings.scale:g}, "
                              f"epsilons={len(settings.epsilons)}, "
                              f"repeats={settings.repeats})"))

    # The fast path must reproduce the serial reference numbers exactly.
    for reference, got in zip(outcome["per_cell"], outcome["fast"]):
        assert (reference.method, reference.dataset, reference.epsilon,
                reference.repeat) == (got.method, got.dataset, got.epsilon, got.repeat)
        assert abs(reference.micro_f1 - got.micro_f1) <= 1e-10
    for reference, got in zip(outcome["per_cell"], outcome["resumed"]):
        assert abs(reference.micro_f1 - got.micro_f1) <= 1e-10

    # The headline claim: >= 2x over the PR 1 engine on the 8-epsilon sweep.
    # The smoke grid collapses to 2 epsilons of sub-second work, where the
    # ratio is dominated by scheduler noise on shared CI runners — there the
    # timing is reported above but not asserted on (the equality checks still
    # gate correctness).
    if not is_smoke():
        assert speedup >= 2.0
