"""Table II: statistics of the four benchmark datasets (synthetic presets).

Regenerates the node/edge/feature/class counts and homophily ratios of the
generated graphs next to the paper's reference values.
"""

from __future__ import annotations

from benchmarks.conftest import bench_settings, record
from repro.evaluation.figures import table2_dataset_statistics
from repro.evaluation.reporting import render_table


def _run(settings):
    return table2_dataset_statistics(settings)


def test_table2_dataset_statistics(benchmark):
    settings = bench_settings(datasets=("cora_ml", "citeseer", "pubmed", "actor"))
    result = benchmark.pedantic(_run, args=(settings,), rounds=1, iterations=1)

    headers = ["dataset", "nodes", "edges", "features", "classes", "homophily",
               "paper nodes", "paper edges", "paper homophily"]
    rows = []
    for stats in result["generated"]:
        reference = result["reference"][stats["name"]]
        rows.append([
            stats["name"], stats["nodes"], stats["edges"], stats["features"],
            stats["classes"], stats["homophily"],
            reference["nodes"], reference["edges"], reference["homophily"],
        ])
    record("table2_dataset_statistics",
           render_table(headers, rows, title=f"Table II (scale={settings.scale:g})"))

    generated_names = {stats["name"] for stats in result["generated"]}
    assert generated_names == set(settings.datasets)
    for stats in result["generated"]:
        reference = result["reference"][stats["name"]]
        # Homophily of the generated graph tracks the paper's Table II value.
        assert abs(stats["homophily"] - reference["homophily"]) < 0.15
