"""Figure 1: micro-F1 versus privacy budget for GCON and the seven competitors.

The paper's headline experiment: GCON, DP-SGD, DPGCN, LPGNet, GAP, ProGAP,
MLP and the non-private GCN on each dataset across epsilon in
{0.5, 1, 2, 3, 4}.  By default this benchmark runs a scaled-down grid (one
homophilous and one heterophilous dataset, three budgets); set
``REPRO_BENCH_FULL=1`` for the paper's full grid.

Expected shape (see EXPERIMENTS.md): the non-private GCN is the upper bound,
adjacency perturbation (DPGCN) and DP-SGD trail far behind at every budget,
GAP/ProGAP sit in between, and GCON improves monotonically with epsilon,
approaching the non-private GCN at epsilon = 4.
"""

from __future__ import annotations

import os

from benchmarks.conftest import bench_settings, record
from repro.evaluation.figures import figure1_accuracy_vs_epsilon
from repro.evaluation.reporting import render_series


def _default_settings():
    if os.environ.get("REPRO_BENCH_FULL", "0") == "1":
        return bench_settings()
    return bench_settings(datasets=("cora_ml", "actor"), epsilons=(0.5, 1.0, 2.0, 4.0))


def _run(settings):
    return figure1_accuracy_vs_epsilon(settings)


def test_figure1_accuracy_vs_epsilon(benchmark):
    settings = _default_settings()
    series = benchmark.pedantic(_run, args=(settings,), rounds=1, iterations=1)
    record("figure1_accuracy_vs_epsilon",
           render_series(series, title=f"Figure 1 (scale={settings.scale:g}, "
                                       f"repeats={settings.repeats})"))

    homophilous = {"cora_ml", "citeseer", "pubmed"}
    for dataset, methods in series.items():
        assert set(methods) == {
            "GCON", "DP-SGD", "DPGCN", "LPGNet", "GAP", "ProGAP", "MLP", "GCN (non-DP)",
        }
        for values in methods.values():
            assert all(0.0 <= v <= 1.0 for v in values.values())
        epsilons = sorted(methods["GCON"])
        if dataset in homophilous:
            # The robust part of Figure 1's shape at reduced scale: the
            # non-private GCN upper-bounds the adjacency-perturbation baseline
            # at the loosest budget.  (GCON's own curve is checked only for
            # validity here because a single repeat at reduced n1 is noisy;
            # the full-scale shape is recorded in EXPERIMENTS.md.)
            assert methods["GCN (non-DP)"][max(epsilons)] \
                >= methods["DPGCN"][max(epsilons)] - 0.05
