"""Thin setup.py shim: all metadata lives in pyproject.toml.

Kept so that tooling invoking ``python setup.py`` or legacy editable installs
keeps working; ``pip install -e .`` resolves the src layout, dependencies and
the ``repro`` / ``gcon-repro`` console scripts from pyproject.toml.
"""

from setuptools import setup

setup()
